#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/hash.h"
#include "common/string_util.h"
#include "llm/deadline.h"
#include "llm/prompt.h"
#include "obs/trace.h"
#include "text/tokenizer.h"

namespace llmdm::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  double rank = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}
}  // namespace

Server::Server(std::shared_ptr<llm::LlmModel> model, const Options& options,
               std::shared_ptr<llm::LlmModel> hedge_model)
    : model_(std::move(model)),
      hedge_model_(hedge_model != nullptr ? std::move(hedge_model) : model_),
      options_(options),
      slot_free_vms_(std::max<size_t>(1, options.virtual_concurrency), 0.0) {
  response_sink_ = options_.response_sink;
  if (options_.registry != nullptr) {
    registry_ = options_.registry;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  metrics_.submitted = registry_->GetCounter("llmdm_serve_submitted_total");
  metrics_.admitted = registry_->GetCounter("llmdm_serve_admitted_total");
  metrics_.shed = registry_->GetCounter("llmdm_serve_shed_total");
  metrics_.coalesced = registry_->GetCounter("llmdm_serve_coalesced_total");
  metrics_.cache_probe_hits =
      registry_->GetCounter("llmdm_serve_cache_probe_hits_total");
  metrics_.completed = registry_->GetCounter("llmdm_serve_completed_total");
  metrics_.failed = registry_->GetCounter("llmdm_serve_failed_total");
  metrics_.deadline_missed =
      registry_->GetCounter("llmdm_serve_deadline_missed_total");
  metrics_.hedges_launched =
      registry_->GetCounter("llmdm_serve_hedges_launched_total");
  metrics_.hedge_wins = registry_->GetCounter("llmdm_serve_hedge_wins_total");
  metrics_.hedge_cancelled_cost_micros =
      registry_->GetCounter("llmdm_serve_hedge_cancelled_cost_micros_total");
  metrics_.coalesce_saved_micros =
      registry_->GetCounter("llmdm_serve_coalesce_saved_micros_total");
  metrics_.maintenance_runs =
      registry_->GetCounter("llmdm_serve_maintenance_runs_total");
  metrics_.batch_closed_size =
      registry_->GetCounter("llmdm_batch_closed_total", {{"cause", "size"}});
  metrics_.batch_closed_window =
      registry_->GetCounter("llmdm_batch_closed_total", {{"cause", "window"}});
  metrics_.batch_closed_drain =
      registry_->GetCounter("llmdm_batch_closed_total", {{"cause", "drain"}});
  metrics_.batch_requests =
      registry_->GetCounter("llmdm_batch_requests_total");
  metrics_.batch_prefix_cached_tokens =
      registry_->GetCounter("llmdm_batch_prefix_cached_tokens_total");
  metrics_.batch_prefix_saved_micros =
      registry_->GetCounter("llmdm_batch_prefix_saved_micros_total");
  metrics_.max_queue_len = registry_->GetGauge("llmdm_serve_max_queue_len");
  next_maintenance_vms_ = options_.maintenance_interval_vms;
  metrics_.queue_wait_vms = registry_->GetHistogram(
      "llmdm_serve_queue_wait_vms", {}, obs::Histogram::LatencyBoundsVms());
  metrics_.latency_vms = registry_->GetHistogram(
      "llmdm_serve_latency_vms", {}, obs::Histogram::LatencyBoundsVms());
  // Occupancy buckets stop at max_batch's default scale; the +Inf bucket
  // catches configurations beyond it.
  metrics_.batch_occupancy = registry_->GetHistogram(
      "llmdm_batch_occupancy", {}, {1.0, 2.0, 4.0, 8.0, 16.0, 32.0});

  if (options_.qos.enabled()) {
    // Guarantee a catch-all tenant so a request with an unknown (or empty)
    // id degrades to a metered default share instead of crashing admission
    // or silently riding free.
    QosOptions qos = options_.qos;
    bool has_default = false;
    for (const TenantConfig& t : qos.tenants) {
      if (t.id == "default") has_default = true;
    }
    if (!has_default) {
      TenantConfig fallback;
      fallback.id = "default";
      qos.tenants.push_back(fallback);
    }
    qos_scheduler_ = std::make_unique<WeightedFairScheduler>(
        qos, std::max<size_t>(1, options_.virtual_concurrency));
    double total_weight = 0.0;
    for (size_t i = 0; i < qos_scheduler_->num_tenants(); ++i) {
      total_weight += qos_scheduler_->tenant_config(i).weight;
    }
    for (size_t i = 0; i < qos_scheduler_->num_tenants(); ++i) {
      const TenantConfig& cfg = qos_scheduler_->tenant_config(i);
      auto ts = std::make_unique<TenantState>(cfg.quota_tokens_per_vs,
                                              cfg.quota_burst_tokens);
      ts->index = i;
      ts->queue_limit =
          cfg.queue_limit > 0
              ? cfg.queue_limit
              : std::max<size_t>(
                    2, static_cast<size_t>(std::llround(
                           static_cast<double>(options_.queue_depth) *
                           cfg.weight / total_weight)));
      const obs::Labels labels = {{"tenant", cfg.id}};
      ts->submitted =
          registry_->GetCounter("llmdm_serve_tenant_submitted_total", labels);
      ts->admitted =
          registry_->GetCounter("llmdm_serve_tenant_admitted_total", labels);
      ts->coalesced =
          registry_->GetCounter("llmdm_serve_tenant_coalesced_total", labels);
      ts->cache_probe_hits = registry_->GetCounter(
          "llmdm_serve_tenant_cache_probe_hits_total", labels);
      ts->shed_quota = registry_->GetCounter(
          "llmdm_serve_tenant_shed_total",
          {{"tenant", cfg.id}, {"cause", "quota"}});
      ts->shed_queue = registry_->GetCounter(
          "llmdm_serve_tenant_shed_total",
          {{"tenant", cfg.id}, {"cause", "queue"}});
      ts->completed =
          registry_->GetCounter("llmdm_serve_tenant_completed_total", labels);
      ts->failed =
          registry_->GetCounter("llmdm_serve_tenant_failed_total", labels);
      ts->deadline_missed = registry_->GetCounter(
          "llmdm_serve_tenant_deadline_missed_total", labels);
      ts->spend_micros = registry_->GetCounter(
          "llmdm_serve_tenant_spend_micros_total", labels);
      ts->latency_vms =
          registry_->GetHistogram("llmdm_serve_tenant_latency_vms", labels,
                                  obs::Histogram::LatencyBoundsVms());
      tenant_by_id_[cfg.id] = ts.get();
      if (cfg.id == "default") default_tenant_ = ts.get();
      tenants_.push_back(std::move(ts));
    }
  }

  size_t n = std::max<size_t>(1, options_.worker_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

double Server::EstimateTokens(const Request& request) const {
  // The same information a real admission controller has before the call:
  // exact input token count, configured output-length guess. This is also
  // the unit tenant quotas are charged in.
  llm::Prompt prompt = llm::MakePrompt(request.skill, request.input);
  return static_cast<double>(prompt.CountInputTokens() +
                             options_.est_output_tokens);
}

double Server::EstimateServiceVms(const Request& request) const {
  return model_->spec().latency_ms_per_1k_tokens * EstimateTokens(request) /
         1000.0;
}

void Server::Submit(const Request& request) {
  std::lock_guard<std::mutex> lock(admission_mu_);
  if (draining_) return;  // late submissions after Drain() are dropped
  metrics_.submitted->Add(1);

  // Virtual-clock maintenance: fire once per crossed interval boundary (a
  // long arrival gap catches up, one run per boundary), before this
  // request's own admission — so the decision sequence is identical for
  // every run of the same workload.
  if (options_.maintenance_interval_vms > 0 && options_.maintenance_hook) {
    while (request.arrival_vms >= next_maintenance_vms_) {
      options_.maintenance_hook();
      metrics_.maintenance_runs->Add(1);
      next_maintenance_vms_ += options_.maintenance_interval_vms;
    }
  }

  // Continuous batching: this arrival is the only thing that advances the
  // virtual clock, so it is also the event that observes (and closes) an
  // open batch whose window deadline has passed — before its own admission,
  // so batch membership is fixed in arrival order.
  MaybeCloseBatch(request.arrival_vms);

  if (qos_scheduler_ != nullptr) {
    SubmitQos(request);
    return;
  }

  // Retire virtual work that has started by this arrival; what remains is
  // the waiting queue the new request would join.
  while (!pending_starts_.empty() &&
         pending_starts_.top() <= request.arrival_vms) {
    pending_starts_.pop();
  }
  double queue_len = static_cast<double>(pending_starts_.size());
  metrics_.max_queue_len->SetMax(static_cast<int64_t>(queue_len));

  // Single-flight: an identical call still in flight (by the virtual queue
  // model — the leader's estimated finish is after this arrival) absorbs
  // the request. The follower takes no slot, joins no queue, and cannot be
  // shed: it adds no load. Decided here, in arrival order, so coalescing is
  // deterministic across runs and worker counts.
  uint64_t flight_key = 0;
  if (options_.single_flight) {
    flight_key = common::Fnv1a(request.input, common::Fnv1a(request.skill));
    auto it = inflight_.find(flight_key);
    if (it != inflight_.end() &&
        request.arrival_vms < it->second->est_finish_vms) {
      metrics_.admitted->Add(1);
      metrics_.coalesced->Add(1);
      Work work;
      work.request = request;
      work.group = it->second;
      work.coalesced_follower = true;
      EnqueueWork(std::move(work));
      return;
    }
  }

  double earliest_free = kInf;
  size_t slot = 0;
  for (size_t i = 0; i < slot_free_vms_.size(); ++i) {
    if (slot_free_vms_[i] < earliest_free) {
      earliest_free = slot_free_vms_[i];
      slot = i;
    }
  }
  double est_start = std::max(request.arrival_vms, earliest_free);
  double est_service = EstimateServiceVms(request);
  double queue_wait = est_start - request.arrival_vms;

  bool shed = false;
  ShedCause shed_cause = ShedCause::kNone;
  std::string shed_reason;
  if (options_.shed_policy != ShedPolicy::kNone) {
    double depth = static_cast<double>(options_.queue_depth);
    double limit = depth;
    switch (request.priority) {
      case Priority::kBatch:
        limit = depth * options_.batch_queue_fraction;
        break;
      case Priority::kNormal:
        break;
      case Priority::kInteractive:
        limit = depth * (1.0 + options_.interactive_reserve_fraction);
        break;
    }
    if (queue_len >= limit) {
      shed = true;
      shed_cause = ShedCause::kQueue;
      shed_reason = common::StrFormat(
          "queue full (%zu waiting, limit %.0f)", pending_starts_.size(),
          limit);
    } else if (options_.shed_policy == ShedPolicy::kDeadlineAware &&
               request.deadline_ms > 0.0 && queue_wait >= request.deadline_ms) {
      shed = true;
      shed_cause = ShedCause::kDeadline;
      shed_reason = common::StrFormat(
          "estimated wait %.0fms exceeds %.0fms deadline", queue_wait,
          request.deadline_ms);
    }
  }

  if (shed) {
    metrics_.shed->Add(1);
    Response r;
    r.id = request.id;
    r.tenant = request.tenant;
    r.shed = true;
    r.shed_cause = shed_cause;
    r.status = common::Status::ResourceExhausted("shed: " + shed_reason);
    r.retry_after_vms = std::max(0.0, earliest_free - request.arrival_vms);
    PushResponse(std::move(r));
    return;
  }

  metrics_.admitted->Add(1);
  slot_free_vms_[slot] = est_start + est_service;
  pending_starts_.push(est_start);
  est_services_.insert(
      std::upper_bound(est_services_.begin(), est_services_.end(), est_service),
      est_service);

  Work work;
  work.request = request;
  work.est_start_vms = est_start;
  work.est_service_vms = est_service;
  work.queue_wait_vms = queue_wait;
  work.hedge_trigger_vms = Percentile(est_services_, options_.hedge_percentile);
  if (options_.single_flight) {
    // This request leads a new flight; later identical arrivals inside
    // [arrival, est_finish) will ride it. Replacing any expired group for
    // the key keeps the map at one entry per distinct (skill, input).
    auto group = std::make_shared<FlightGroup>();
    group->leader_id = request.id;
    group->est_finish_vms = est_start + est_service;
    inflight_[flight_key] = group;
    work.group = group;
  }
  EnqueueWork(std::move(work));
}

void Server::SubmitBatch(const std::vector<Request>& batch) {
  if (batch.empty()) return;
  if (!options_.batch_probe) {
    for (const Request& request : batch) Submit(request);
    return;
  }

  // Probe the whole batch once, on the submitting thread, before any
  // admission decision: hit/miss outcomes are fixed in arrival order, so
  // the downstream admission sequence (and every virtual-clock decision it
  // makes) is identical across runs and worker counts. This is also where
  // the batching pays off — the probe can embed and score the whole batch
  // through the vector kernels in one pass instead of per request.
  std::vector<const Request*> ptrs;
  ptrs.reserve(batch.size());
  for (const Request& request : batch) ptrs.push_back(&request);
  const std::vector<BatchProbeOutcome> outcomes = options_.batch_probe(ptrs);

  for (size_t i = 0; i < batch.size(); ++i) {
    const Request& request = batch[i];
    if (i >= outcomes.size() || !outcomes[i].hit) {
      Submit(request);
      continue;
    }

    // Cache hit: answer on the spot. The request is submitted+admitted for
    // accounting but never enters the virtual queue — it takes no slot,
    // adds no load, and costs nothing. Maintenance boundaries still fire
    // here (before the "admission"), exactly as in Submit(), so a workload
    // keeps the same maintenance schedule whether its requests hit or miss.
    TenantState* tenant_state = nullptr;
    bool quota_shed = false;
    double quota_retry_vms = 0.0;
    double quota_level = 0.0;
    double est_tokens = 0.0;
    {
      std::lock_guard<std::mutex> lock(admission_mu_);
      if (draining_) continue;
      metrics_.submitted->Add(1);
      if (options_.maintenance_interval_vms > 0 && options_.maintenance_hook) {
        while (request.arrival_vms >= next_maintenance_vms_) {
          options_.maintenance_hook();
          metrics_.maintenance_runs->Add(1);
          next_maintenance_vms_ += options_.maintenance_interval_vms;
        }
      }
      MaybeCloseBatch(request.arrival_vms);
      if (qos_scheduler_ != nullptr) {
        // The hit shares the full QoS admission contract with Submit():
        // play the dispatcher up to this arrival (bucket refill and queue
        // state must reflect everything that virtually started first), then
        // charge the tenant's token bucket the same admission estimate a
        // miss would pay. A hit is still a consumed admission — answering
        // it free of quota would let a cache-hot tenant burst unmetered
        // past its rate, and would make SubmitBatch and an equivalent
        // Submit() loop disagree on every tenant ledger.
        DispatchReadyQos(request.arrival_vms);
        tenant_state = ResolveTenant(request.tenant);
        tenant_state->submitted->Add(1);
        est_tokens = EstimateTokens(request);
        if (!tenant_state->bucket.TryTake(request.arrival_vms, est_tokens,
                                          &quota_retry_vms)) {
          quota_shed = true;
          quota_level = tenant_state->bucket.level();
          metrics_.shed->Add(1);
          tenant_state->shed_quota->Add(1);
        } else {
          metrics_.admitted->Add(1);
          metrics_.cache_probe_hits->Add(1);
          tenant_state->admitted->Add(1);
          tenant_state->cache_probe_hits->Add(1);
        }
      } else {
        metrics_.admitted->Add(1);
        metrics_.cache_probe_hits->Add(1);
      }
    }

    if (quota_shed) {
      // Refused exactly like a Submit()-path quota shed, cached answer or
      // not: the hint comes from this tenant's own bucket.
      Response r;
      r.id = request.id;
      r.tenant = request.tenant;
      r.shed = true;
      r.shed_cause = ShedCause::kQuota;
      r.status = common::Status::ResourceExhausted(common::StrFormat(
          "shed: tenant quota exhausted (%.0f tokens needed, %.0f available)",
          est_tokens, quota_level));
      r.retry_after_vms = quota_retry_vms;
      PushResponse(std::move(r));
      continue;
    }

    Response response;
    response.id = request.id;
    response.tenant = request.tenant;
    response.status = common::Status::Ok();
    response.text = outcomes[i].response;
    response.model = outcomes[i].model;
    response.cost = common::Money::Zero();
    response.queue_wait_vms = 0.0;
    // One virtual ms of service: a probe hit is near-instant next to a
    // model call but not free, and a nonzero latency keeps the response
    // inside every deadline/percentile computation downstream.
    response.service_vms = 1.0;
    response.latency_vms = 1.0;
    clock_.AdvanceTo(request.arrival_vms + response.latency_vms);
    PushResponse(std::move(response), tenant_state);
  }
}

Server::TenantState* Server::ResolveTenant(const TenantId& id) {
  auto it = tenant_by_id_.find(id);
  return it != tenant_by_id_.end() ? it->second : default_tenant_;
}

void Server::SubmitQos(const Request& request) {
  const double now = request.arrival_vms;
  // Play the fair dispatcher up to this arrival first: queue lengths and
  // bucket levels must reflect everything that virtually started before
  // this request showed up.
  DispatchReadyQos(now);

  TenantState* ts = ResolveTenant(request.tenant);
  ts->submitted->Add(1);
  metrics_.max_queue_len->SetMax(
      static_cast<int64_t>(qos_scheduler_->TotalQueued()));

  // Single-flight rides are free: they add no load, so they bypass quota
  // and queue-share checks. Flights register at dispatch time (the leader
  // is already in the worker queue), so the FIFO no-deadlock argument from
  // the legacy path carries over unchanged.
  uint64_t flight_key = 0;
  if (options_.single_flight) {
    flight_key = common::Fnv1a(request.input, common::Fnv1a(request.skill));
    auto it = inflight_.find(flight_key);
    if (it != inflight_.end() && now < it->second->est_finish_vms) {
      metrics_.admitted->Add(1);
      metrics_.coalesced->Add(1);
      ts->admitted->Add(1);
      ts->coalesced->Add(1);
      Work work;
      work.request = request;
      work.group = it->second;
      work.coalesced_follower = true;
      work.tenant_state = ts;
      EnqueueWork(std::move(work));
      return;
    }
  }

  const double est_tokens = EstimateTokens(request);
  const double est_service =
      model_->spec().latency_ms_per_1k_tokens * est_tokens / 1000.0;

  // Queue share first — a full tenant queue refuses before any quota is
  // spent, so a shed request never burns rate budget it got nothing for.
  if (qos_scheduler_->QueueLen(ts->index) >= ts->queue_limit) {
    metrics_.shed->Add(1);
    ts->shed_queue->Add(1);
    Response r;
    r.id = request.id;
    r.tenant = request.tenant;
    r.shed = true;
    r.shed_cause = ShedCause::kQueue;
    r.status = common::Status::ResourceExhausted(common::StrFormat(
        "shed: tenant queue share full (%zu waiting, limit %zu)",
        qos_scheduler_->QueueLen(ts->index), ts->queue_limit));
    r.retry_after_vms =
        std::max(0.0, qos_scheduler_->EarliestSlotFreeVms() - now);
    PushResponse(std::move(r));
    return;
  }

  // Quota: the refusal hint comes from this tenant's own bucket — retrying
  // before it has refilled is guaranteed to be refused again, regardless of
  // how empty the global queue is.
  double quota_retry_vms = 0.0;
  if (!ts->bucket.TryTake(now, est_tokens, &quota_retry_vms)) {
    metrics_.shed->Add(1);
    ts->shed_quota->Add(1);
    Response r;
    r.id = request.id;
    r.tenant = request.tenant;
    r.shed = true;
    r.shed_cause = ShedCause::kQuota;
    r.status = common::Status::ResourceExhausted(common::StrFormat(
        "shed: tenant quota exhausted (%.0f tokens needed, %.0f available)",
        est_tokens, ts->bucket.level()));
    r.retry_after_vms = quota_retry_vms;
    PushResponse(std::move(r));
    return;
  }

  metrics_.admitted->Add(1);
  ts->admitted->Add(1);
  pending_qos_.emplace(request.id, PendingQos{request, est_service, ts});
  WeightedFairScheduler::Entry entry;
  entry.id = request.id;
  entry.arrival_vms = now;
  entry.cost_tokens = est_tokens;
  entry.service_vms = est_service;
  qos_scheduler_->Enqueue(ts->index, entry);
  // A free slot at `now` starts the request immediately.
  DispatchReadyQos(now);
}

void Server::DispatchReadyQos(double now_vms) {
  std::vector<WeightedFairScheduler::Dispatch> dispatched;
  qos_scheduler_->AdvanceTo(now_vms, &dispatched);
  for (const WeightedFairScheduler::Dispatch& d : dispatched) {
    auto it = pending_qos_.find(d.id);
    PendingQos pending = std::move(it->second);
    pending_qos_.erase(it);

    Work work;
    work.request = std::move(pending.request);
    work.est_start_vms = d.start_vms;
    work.est_service_vms = pending.est_service_vms;
    work.queue_wait_vms = d.start_vms - work.request.arrival_vms;
    est_services_.insert(
        std::upper_bound(est_services_.begin(), est_services_.end(),
                         pending.est_service_vms),
        pending.est_service_vms);
    work.hedge_trigger_vms =
        Percentile(est_services_, options_.hedge_percentile);
    work.tenant_state = pending.tenant_state;
    if (options_.single_flight) {
      uint64_t key = common::Fnv1a(work.request.input,
                                   common::Fnv1a(work.request.skill));
      auto group = std::make_shared<FlightGroup>();
      group->leader_id = work.request.id;
      group->est_finish_vms = d.start_vms + pending.est_service_vms;
      inflight_[key] = group;
      work.group = group;
    }
    EnqueueWork(std::move(work));
  }
}

void Server::EnqueueWork(Work work) {
  if (!options_.batching) {
    {
      std::lock_guard<std::mutex> wl(work_mu_);
      work_queue_.push_back(std::move(work));
    }
    work_cv_.notify_one();
    return;
  }
  if (work.coalesced_follower) {
    // A follower whose leader is parked in the open batch must not reach a
    // worker before the batch does: it would block its worker on a flight
    // nobody is executing yet (with one worker, a deadlock). Park it with
    // the batch; FlushOpenBatch releases it right after the batch entry,
    // restoring the leader-before-follower FIFO order.
    if (open_batch_ != nullptr) {
      for (const Work& member : open_batch_->members) {
        if (member.group != nullptr && member.group == work.group) {
          open_batch_->followers.push_back(std::move(work));
          return;
        }
      }
    }
    {
      std::lock_guard<std::mutex> wl(work_mu_);
      work_queue_.push_back(std::move(work));
    }
    work_cv_.notify_one();
    return;
  }
  if (open_batch_ == nullptr) {
    open_batch_ = std::make_unique<OpenBatch>();
    open_batch_->close_vms =
        work.request.arrival_vms + options_.batch_window_vms;
  }
  open_batch_->members.push_back(std::move(work));
  if (open_batch_->members.size() >= std::max<size_t>(1, options_.max_batch)) {
    FlushOpenBatch("size");
  }
}

void Server::MaybeCloseBatch(double now_vms) {
  if (open_batch_ != nullptr && now_vms >= open_batch_->close_vms) {
    FlushOpenBatch("window");
  }
}

void Server::FlushOpenBatch(const char* cause) {
  if (open_batch_ == nullptr) return;
  std::unique_ptr<OpenBatch> batch = std::move(open_batch_);
  if (std::strcmp(cause, "size") == 0) {
    metrics_.batch_closed_size->Add(1);
  } else if (std::strcmp(cause, "window") == 0) {
    metrics_.batch_closed_window->Add(1);
  } else {
    metrics_.batch_closed_drain->Add(1);
  }
  metrics_.batch_requests->Add(batch->members.size());
  metrics_.batch_occupancy->Observe(
      static_cast<double>(batch->members.size()));
  Work carrier;
  carrier.batch = std::make_shared<std::vector<Work>>(
      std::move(batch->members));
  {
    std::lock_guard<std::mutex> wl(work_mu_);
    work_queue_.push_back(std::move(carrier));
    for (Work& follower : batch->followers) {
      work_queue_.push_back(std::move(follower));
    }
  }
  work_cv_.notify_all();
}

void Server::WorkerLoop() {
  for (;;) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock,
                    [this] { return stopping_ || !work_queue_.empty(); });
      if (work_queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      work = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    Execute(work);
  }
}

void Server::Execute(const Work& work) {
  if (work.batch != nullptr) {
    ExecuteBatch(*work.batch);
    return;
  }
  if (work.coalesced_follower) {
    ExecuteCoalesced(work);
    return;
  }
  const Request& req = work.request;
  Response r;
  r.id = req.id;
  r.tenant = req.tenant;
  r.queue_wait_vms = work.queue_wait_vms;

  // Span times are anchored in the request's virtual-time frame (arrival,
  // estimated start, estimated start + service), so the tree is as
  // deterministic as the workload itself.
  std::shared_ptr<obs::TraceContext> trace;
  if (options_.tracing) {
    trace = std::make_shared<obs::TraceContext>("request", req.arrival_vms);
    trace->SetAttr(nullptr, "id", std::to_string(req.id));
    trace->SetAttr(nullptr, "skill", req.skill);
    if (!req.tenant.empty()) trace->SetAttr(nullptr, "tenant", req.tenant);
    obs::Span* queue_span =
        trace->StartSpan("queue", req.arrival_vms, nullptr);
    trace->EndSpan(queue_span, work.est_start_vms);
  }

  // Under kNone/kQueueFull a request can be admitted into a wait longer
  // than its whole budget; it dies in the queue without costing a call.
  if (req.deadline_ms > 0.0 && work.queue_wait_vms >= req.deadline_ms) {
    r.status = common::Status::Timeout(common::StrFormat(
        "deadline %.0fms expired after %.0fms in queue", req.deadline_ms,
        work.queue_wait_vms));
    r.deadline_missed = true;
    r.latency_vms = work.queue_wait_vms;
    if (trace != nullptr) {
      trace->SetAttr(nullptr, "outcome", "queue_deadline");
      trace->EndSpan(nullptr, work.est_start_vms);
      r.trace = trace;
    }
    clock_.AdvanceTo(work.est_start_vms);
    ResolveFlight(work.group, r, work.est_start_vms);
    PushResponse(std::move(r), work.tenant_state);
    return;
  }

  llm::Prompt prompt = llm::MakePrompt(req.skill, req.input);
  // Per-request salt: two requests with identical text are still
  // independent draws, and reruns of the same id reproduce exactly.
  prompt.sample_salt = req.id * 1000003ull + 7;
  prompt.tenant_id = req.tenant;
  std::shared_ptr<llm::Deadline> deadline;
  if (req.deadline_ms > 0.0) {
    deadline =
        std::make_shared<llm::Deadline>(req.deadline_ms - work.queue_wait_vms);
    prompt.deadline = deadline;
  }

  obs::Span* attempt_span = nullptr;
  if (trace != nullptr) {
    attempt_span = trace->StartSpan("attempt", work.est_start_vms, nullptr);
    prompt.trace = trace;
    prompt.trace_parent = attempt_span;
  }
  llm::UsageMeter primary_meter;
  auto primary = model_->CompleteMetered(prompt, &primary_meter);
  double primary_finish =
      primary.ok() ? primary->latency_ms : options_.failed_attempt_penalty_ms;
  if (attempt_span != nullptr) {
    trace->SetAttr(attempt_span, "result", primary.ok() ? "ok" : "error");
    trace->EndSpan(attempt_span, work.est_start_vms + primary_finish);
  }
  FinishExecute(work, std::move(r), trace, prompt, std::move(primary),
                primary_finish, primary_meter);
}

void Server::FinishExecute(const Work& work, Response r,
                           const std::shared_ptr<obs::TraceContext>& trace,
                           const llm::Prompt& prompt,
                           common::Result<llm::Completion> primary,
                           double primary_finish,
                           llm::UsageMeter& primary_meter) {
  const Request& req = work.request;
  bool hedge = options_.hedging &&
               (!primary.ok() || primary_finish > work.hedge_trigger_vms);
  if (!hedge) {
    meter_.MergeFrom(primary_meter);
    if (primary.ok()) BookPrefixReuse(*primary);
    r.service_vms = primary_finish;
    r.latency_vms = work.queue_wait_vms + r.service_vms;
    if (primary.ok()) {
      r.status = common::Status::Ok();
      r.text = primary->text;
      r.model = primary->model;
      r.cost = primary->cost;
    } else {
      r.status = primary.status();
    }
    r.deadline_missed =
        req.deadline_ms > 0.0 && r.latency_vms > req.deadline_ms;
    if (trace != nullptr) {
      trace->SetAttr(nullptr, "outcome", primary.ok() ? "ok" : "error");
      trace->EndSpan(nullptr, work.est_start_vms + r.service_vms);
      r.trace = trace;
    }
    clock_.AdvanceTo(work.est_start_vms + r.service_vms);
    ResolveFlight(work.group, r, work.est_start_vms + r.service_vms);
    PushResponse(std::move(r), work.tenant_state);
    return;
  }

  // Hedge: in virtual time the second attempt launched when the primary
  // crossed the trigger (or failed, whichever came first) and the two
  // raced; the earliest virtual finish wins and the loser is cancelled —
  // too late to recover its spend, which is the price of tail-cutting.
  double hedge_start = std::min(work.hedge_trigger_vms, primary_finish);
  llm::Prompt hedge_prompt = prompt;
  hedge_prompt.sample_salt = prompt.sample_salt + 1;
  obs::Span* hedge_span = nullptr;
  if (trace != nullptr) {
    hedge_span =
        trace->StartSpan("hedge", work.est_start_vms + hedge_start, nullptr);
    hedge_prompt.trace = trace;
    hedge_prompt.trace_parent = hedge_span;
  }
  llm::UsageMeter hedge_meter;
  auto hedged = hedge_model_->CompleteMetered(hedge_prompt, &hedge_meter);
  double hedge_finish = hedged.ok()
                            ? hedge_start + hedged->latency_ms
                            : hedge_start + options_.failed_attempt_penalty_ms;
  if (hedge_span != nullptr) {
    trace->SetAttr(hedge_span, "result", hedged.ok() ? "ok" : "error");
    trace->EndSpan(hedge_span, work.est_start_vms + hedge_finish);
  }

  double p_score = primary.ok() ? primary_finish : kInf;
  double h_score = hedged.ok() ? hedge_finish : kInf;
  r.hedged = true;
  r.hedge_won = h_score < p_score;
  bool any_ok = primary.ok() || hedged.ok();
  const auto& winner = r.hedge_won ? hedged : primary;
  const llm::UsageMeter& winner_meter = r.hedge_won ? hedge_meter : primary_meter;
  const llm::UsageMeter& loser_meter = r.hedge_won ? primary_meter : hedge_meter;

  meter_.MergeFrom(winner_meter);
  if (!r.hedge_won && primary.ok()) BookPrefixReuse(*primary);
  if (any_ok) {
    r.status = common::Status::Ok();
    r.text = winner->text;
    r.model = winner->model;
    r.cost = winner->cost;
    r.service_vms = std::min(p_score, h_score);
  } else {
    r.status = primary.status();
    r.service_vms = std::max(primary_finish, hedge_finish);
  }
  r.latency_vms = work.queue_wait_vms + r.service_vms;
  r.deadline_missed = req.deadline_ms > 0.0 && r.latency_vms > req.deadline_ms;
  metrics_.hedges_launched->Add(1);
  if (r.hedge_won) metrics_.hedge_wins->Add(1);
  metrics_.hedge_cancelled_cost_micros->Add(
      static_cast<uint64_t>(loser_meter.cost().micros()));
  if (trace != nullptr) {
    trace->SetAttr(nullptr, "outcome", any_ok ? "ok" : "error");
    trace->SetAttr(nullptr, "hedge_won", r.hedge_won ? "true" : "false");
    trace->EndSpan(nullptr, work.est_start_vms + r.service_vms);
    r.trace = trace;
  }
  clock_.AdvanceTo(work.est_start_vms + r.service_vms);
  ResolveFlight(work.group, r, work.est_start_vms + r.service_vms);
  PushResponse(std::move(r), work.tenant_state);
}

void Server::BookPrefixReuse(const llm::Completion& completion) {
  if (completion.prefix_cached_tokens == 0) return;
  auto price = [](common::Money per_1k, size_t tokens) {
    return common::Money::FromMicros(per_1k.micros() *
                                     static_cast<int64_t>(tokens) / 1000);
  };
  common::Money saved =
      price(model_->spec().input_price_per_1k, completion.input_tokens) +
      price(model_->spec().output_price_per_1k, completion.output_tokens) -
      completion.cost;
  metrics_.batch_prefix_cached_tokens->Add(completion.prefix_cached_tokens);
  metrics_.batch_prefix_saved_micros->Add(
      static_cast<uint64_t>(saved.micros()));
}

void Server::ExecuteBatch(const std::vector<Work>& members) {
  // Per-member admission-time setup first, so queue-deadline deaths drop
  // out before the model sees the batch — a dead request never ran prefill,
  // so it must not seed the prefix trie for later members either.
  struct Member {
    const Work* work = nullptr;
    Response r;
    std::shared_ptr<obs::TraceContext> trace;
    obs::Span* attempt_span = nullptr;
    llm::Prompt prompt;
  };
  std::vector<Member> live;
  live.reserve(members.size());
  for (const Work& work : members) {
    const Request& req = work.request;
    Response r;
    r.id = req.id;
    r.tenant = req.tenant;
    r.queue_wait_vms = work.queue_wait_vms;

    std::shared_ptr<obs::TraceContext> trace;
    if (options_.tracing) {
      trace = std::make_shared<obs::TraceContext>("request", req.arrival_vms);
      trace->SetAttr(nullptr, "id", std::to_string(req.id));
      trace->SetAttr(nullptr, "skill", req.skill);
      if (!req.tenant.empty()) trace->SetAttr(nullptr, "tenant", req.tenant);
      obs::Span* queue_span =
          trace->StartSpan("queue", req.arrival_vms, nullptr);
      trace->EndSpan(queue_span, work.est_start_vms);
    }

    if (req.deadline_ms > 0.0 && work.queue_wait_vms >= req.deadline_ms) {
      r.status = common::Status::Timeout(common::StrFormat(
          "deadline %.0fms expired after %.0fms in queue", req.deadline_ms,
          work.queue_wait_vms));
      r.deadline_missed = true;
      r.latency_vms = work.queue_wait_vms;
      if (trace != nullptr) {
        trace->SetAttr(nullptr, "outcome", "queue_deadline");
        trace->EndSpan(nullptr, work.est_start_vms);
        r.trace = trace;
      }
      clock_.AdvanceTo(work.est_start_vms);
      ResolveFlight(work.group, r, work.est_start_vms);
      PushResponse(std::move(r), work.tenant_state);
      continue;
    }

    Member m;
    m.work = &work;
    m.r = std::move(r);
    m.trace = std::move(trace);
    m.prompt = llm::MakePrompt(req.skill, req.input);
    m.prompt.sample_salt = req.id * 1000003ull + 7;
    m.prompt.tenant_id = req.tenant;
    if (req.deadline_ms > 0.0) {
      m.prompt.deadline = std::make_shared<llm::Deadline>(req.deadline_ms -
                                                          work.queue_wait_vms);
    }
    if (m.trace != nullptr) {
      m.attempt_span =
          m.trace->StartSpan("attempt", work.est_start_vms, nullptr);
      m.prompt.trace = m.trace;
      m.prompt.trace_parent = m.attempt_span;
    }
    live.push_back(std::move(m));
  }

  // One model invocation for the whole batch: the endpoint prices each
  // member's shared prompt prefix at the cached tier (SimulatedLlm), or
  // degrades to per-call behaviour (base LlmModel).
  std::vector<llm::Prompt> prompts;
  prompts.reserve(live.size());
  for (const Member& m : live) prompts.push_back(m.prompt);
  std::vector<common::Result<llm::Completion>> results =
      model_->CompleteBatch(prompts);
  meter_.RecordBatchClose(model_->spec().name, live.size());

  auto price = [](common::Money per_1k, size_t tokens) {
    return common::Money::FromMicros(per_1k.micros() *
                                     static_cast<int64_t>(tokens) / 1000);
  };
  for (size_t i = 0; i < live.size(); ++i) {
    Member& m = live[i];
    common::Result<llm::Completion> primary =
        i < results.size()
            ? std::move(results[i])
            : common::Result<llm::Completion>(
                  common::Status::Internal("batch result missing"));
    double primary_finish = primary.ok() ? primary->latency_ms
                                         : options_.failed_attempt_penalty_ms;
    if (m.attempt_span != nullptr) {
      m.trace->SetAttr(m.attempt_span, "result", primary.ok() ? "ok" : "error");
      m.trace->EndSpan(m.attempt_span, m.work->est_start_vms + primary_finish);
    }
    // Batched calls come back unmetered (see LlmModel::CompleteBatch): meter
    // this member into its own scratch ledger, prefix discount itemized, so
    // the winner-commit hedge accounting in FinishExecute stays per request.
    llm::UsageMeter primary_meter;
    if (primary.ok()) {
      primary_meter.Record(primary->model, primary->input_tokens,
                           primary->output_tokens, primary->cost,
                           primary->latency_ms);
      if (primary->prefix_cached_tokens > 0) {
        // Exact by construction: re-pricing the same token counts at list
        // makes discounted cost + saved == the unbatched call's cost. Goes
        // into the scratch meter only — the registry counters are bumped at
        // commit time (BookPrefixReuse), so ledger and counters agree even
        // when a hedge steals this member's win.
        common::Money undiscounted =
            price(model_->spec().input_price_per_1k, primary->input_tokens) +
            price(model_->spec().output_price_per_1k, primary->output_tokens);
        common::Money saved = undiscounted - primary->cost;
        primary_meter.RecordPrefixReuse(
            primary->model, primary->prefix_cached_tokens, saved);
      }
    }
    FinishExecute(*m.work, std::move(m.r), m.trace, m.prompt,
                  std::move(primary), primary_finish, primary_meter);
  }
}

void Server::ResolveFlight(const std::shared_ptr<FlightGroup>& group,
                           const Response& response, double finish_vms) {
  if (group == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(group->mu);
    group->done = true;
    group->status = response.status;
    group->text = response.text;
    group->model = response.model;
    group->finish_vms = finish_vms;
  }
  group->cv.notify_all();
}

void Server::ExecuteCoalesced(const Work& work) {
  const Request& req = work.request;
  FlightGroup& group = *work.group;

  // FIFO dispatch put the leader's work ahead of this one, so some worker
  // is already executing (or has executed) it; this wait always terminates.
  common::Status status;
  std::string text, model;
  double finish_vms = 0.0;
  {
    std::unique_lock<std::mutex> lock(group.mu);
    group.cv.wait(lock, [&] { return group.done; });
    status = group.status;
    text = group.text;
    model = group.model;
    finish_vms = group.finish_vms;
  }

  Response r;
  r.id = req.id;
  r.coalesced = true;
  r.status = status;
  if (status.ok()) {
    r.text = std::move(text);
    r.model = model + "+coalesced";
    r.cost = common::Money::Zero();
  }
  // In virtual time the follower arrived mid-flight and finished when the
  // leader did; it never queued, so its whole latency is that overlap.
  r.service_vms = std::max(0.0, finish_vms - req.arrival_vms);
  r.latency_vms = r.service_vms;
  r.deadline_missed = req.deadline_ms > 0.0 && r.latency_vms > req.deadline_ms;

  // Itemize the avoided call in the meter. The input side mirrors what
  // admission knew (input tokens at the primary model's *effective* input
  // price — under batching the avoided call would have been an exact
  // duplicate of the leader's prompt in a batch, so its whole input would
  // have billed at the cached tier, not list); the output side prices the
  // answer the follower got for free — the leader's actual text, so the
  // credit is exact and deterministic, not a guess.
  llm::Prompt prompt = llm::MakePrompt(req.skill, req.input);
  const common::Money effective_input_price =
      options_.batching &&
              model_->spec().cached_input_price_per_1k.micros() > 0
          ? model_->spec().cached_input_price_per_1k
          : model_->spec().input_price_per_1k;
  common::Money saved = common::Money::FromMicros(
      effective_input_price.micros() *
      static_cast<int64_t>(prompt.CountInputTokens()) / 1000);
  if (status.ok()) {
    saved += common::Money::FromMicros(
        model_->spec().output_price_per_1k.micros() *
        static_cast<int64_t>(text::CountTokens(r.text)) / 1000);
  }
  metrics_.coalesce_saved_micros->Add(static_cast<uint64_t>(saved.micros()));
  meter_.RecordCoalesced(status.ok() ? model : model_->spec().name, saved);

  if (options_.tracing) {
    auto trace =
        std::make_shared<obs::TraceContext>("request", req.arrival_vms);
    trace->SetAttr(nullptr, "id", std::to_string(req.id));
    trace->SetAttr(nullptr, "skill", req.skill);
    trace->SetAttr(nullptr, "outcome", "coalesced");
    obs::Span* wait = trace->StartSpan("coalesce_wait", req.arrival_vms,
                                       nullptr);
    trace->EndSpan(wait, finish_vms);
    trace->EndSpan(nullptr, std::max(req.arrival_vms, finish_vms));
    r.trace = trace;
  }

  clock_.AdvanceTo(finish_vms);
  PushResponse(std::move(r), work.tenant_state);
}

void Server::PushResponse(Response response, TenantState* tenant_state) {
  if (!response.shed) {
    if (response.status.ok()) {
      metrics_.completed->Add(1);
    } else {
      metrics_.failed->Add(1);
    }
    if (response.deadline_missed) metrics_.deadline_missed->Add(1);
    metrics_.queue_wait_vms->Observe(response.queue_wait_vms);
    metrics_.latency_vms->Observe(response.latency_vms);
    if (tenant_state != nullptr) {
      // Completion-side tenant ledger: commutative adds from worker
      // threads, exactly like the global counters above.
      if (response.status.ok()) {
        tenant_state->completed->Add(1);
      } else {
        tenant_state->failed->Add(1);
      }
      if (response.deadline_missed) tenant_state->deadline_missed->Add(1);
      tenant_state->spend_micros->Add(
          static_cast<uint64_t>(response.cost.micros()));
      tenant_state->latency_vms->Observe(response.latency_vms);
    }
  }
  std::lock_guard<std::mutex> lock(results_mu_);
  if (response_sink_) response_sink_(response);
  if (options_.retain_responses) responses_.push_back(std::move(response));
}

void Server::set_response_sink(std::function<void(const Response&)> sink) {
  std::lock_guard<std::mutex> lock(results_mu_);
  response_sink_ = std::move(sink);
}

std::vector<Response> Server::Drain() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    draining_ = true;
    // Flush every parked QoS request to the workers before stopping them:
    // advancing the virtual dispatcher to +infinity plays out the fair
    // schedule for all remaining queued work.
    if (qos_scheduler_ != nullptr) {
      DispatchReadyQos(std::numeric_limits<double>::infinity());
    }
    // Whatever is still accumulating goes out as the final (possibly
    // partial) batch — after the QoS flush above, so late-dispatched work
    // rides it instead of being stranded.
    FlushOpenBatch("drain");
  }
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(results_mu_);
  std::sort(responses_.begin(), responses_.end(),
            [](const Response& a, const Response& b) { return a.id < b.id; });
  return responses_;
}

ServerStats Server::stats() const {
  // A view over the registry counters: the legacy struct and a registry
  // export always agree by construction. Percentiles still come from the
  // retained responses (histograms only keep bucketed counts).
  ServerStats s;
  s.submitted = metrics_.submitted->value();
  s.admitted = metrics_.admitted->value();
  s.shed = metrics_.shed->value();
  s.coalesced = metrics_.coalesced->value();
  s.cache_probe_hits = metrics_.cache_probe_hits->value();
  s.batches_closed = metrics_.batch_closed_size->value() +
                     metrics_.batch_closed_window->value() +
                     metrics_.batch_closed_drain->value();
  s.batched_requests = metrics_.batch_requests->value();
  s.prefix_cached_tokens = metrics_.batch_prefix_cached_tokens->value();
  s.prefix_saved = common::Money::FromMicros(
      static_cast<int64_t>(metrics_.batch_prefix_saved_micros->value()));
  s.max_queue_len = static_cast<double>(metrics_.max_queue_len->value());
  s.hedges_launched = metrics_.hedges_launched->value();
  s.hedge_wins = metrics_.hedge_wins->value();
  s.hedge_cancelled_cost = common::Money::FromMicros(
      static_cast<int64_t>(metrics_.hedge_cancelled_cost_micros->value()));
  s.completed = metrics_.completed->value();
  s.failed = metrics_.failed->value();
  s.deadline_missed = metrics_.deadline_missed->value();
  std::lock_guard<std::mutex> lock(results_mu_);
  std::vector<double> latencies;
  size_t good = 0;
  for (const Response& r : responses_) {
    if (r.shed) continue;
    latencies.push_back(r.latency_vms);
    if (r.status.ok() && !r.deadline_missed) ++good;
  }
  std::sort(latencies.begin(), latencies.end());
  s.p50_latency_vms = Percentile(latencies, 0.5);
  s.p99_latency_vms = Percentile(latencies, 0.99);
  double span_vs = clock_.NowMs() / 1000.0;
  s.goodput_per_vs = span_vs > 0.0 ? static_cast<double>(good) / span_vs : 0.0;
  return s;
}

std::vector<TenantStats> Server::tenant_stats() const {
  std::vector<TenantStats> out;
  if (qos_scheduler_ == nullptr) return out;
  out.resize(tenants_.size());
  for (const auto& ts : tenants_) {
    TenantStats& t = out[ts->index];
    t.tenant = qos_scheduler_->tenant_config(ts->index).id;
    t.submitted = ts->submitted->value();
    t.admitted = ts->admitted->value();
    t.coalesced = ts->coalesced->value();
    t.cache_probe_hits = ts->cache_probe_hits->value();
    t.shed_quota = ts->shed_quota->value();
    t.shed_queue = ts->shed_queue->value();
    t.completed = ts->completed->value();
    t.failed = ts->failed->value();
    t.deadline_missed = ts->deadline_missed->value();
    t.spend =
        common::Money::FromMicros(static_cast<int64_t>(ts->spend_micros->value()));
  }
  // SLO attainment and percentiles come from the retained responses, like
  // ServerStats: good = completed OK within deadline, over everything the
  // tenant submitted (sheds count against attainment — a refused request is
  // a missed SLO from the tenant's point of view).
  std::vector<std::vector<double>> latencies(out.size());
  std::vector<size_t> good(out.size(), 0);
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    for (const Response& r : responses_) {
      auto it = tenant_by_id_.find(r.tenant);
      TenantState* ts = it != tenant_by_id_.end() ? it->second : default_tenant_;
      if (ts == nullptr) continue;
      if (r.shed) continue;
      latencies[ts->index].push_back(r.latency_vms);
      if (r.status.ok() && !r.deadline_missed) ++good[ts->index];
    }
  }
  for (size_t i = 0; i < out.size(); ++i) {
    std::sort(latencies[i].begin(), latencies[i].end());
    out[i].p99_latency_vms = Percentile(latencies[i], 0.99);
    out[i].slo_attainment =
        out[i].submitted > 0
            ? static_cast<double>(good[i]) / static_cast<double>(out[i].submitted)
            : 1.0;
  }
  return out;
}

}  // namespace llmdm::serve
