#include "serve/qos.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/string_util.h"
#include "serve/server.h"

namespace llmdm::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Weight floor: every configured tenant owns a real share (see
// TenantConfig::weight).
constexpr double kMinWeight = 0.01;
}  // namespace

TokenBucket::TokenBucket(double tokens_per_vs, double burst_tokens) {
  if (tokens_per_vs > 0.0) {
    rate_per_vms_ = tokens_per_vs / 1000.0;
    burst_ = burst_tokens > 0.0 ? burst_tokens : tokens_per_vs;
    level_ = burst_;  // a fresh tenant may spend its full burst immediately
  }
}

bool TokenBucket::TryTake(double now_vms, double cost,
                          double* retry_after_vms) {
  if (rate_per_vms_ <= 0.0) return true;
  if (now_vms > last_refill_vms_) {
    level_ = std::min(burst_, level_ + (now_vms - last_refill_vms_) *
                                           rate_per_vms_);
    last_refill_vms_ = now_vms;
  }
  if (level_ >= cost) {
    level_ -= cost;
    return true;
  }
  if (retry_after_vms != nullptr) {
    // Time until the bucket holds `cost` tokens. A cost above the burst
    // capacity can never be taken; report the time to full instead of an
    // infinity that would read as "retry never".
    double target = std::min(cost, burst_);
    *retry_after_vms = (target - level_) / rate_per_vms_;
  }
  return false;
}

WeightedFairScheduler::WeightedFairScheduler(const QosOptions& options,
                                             size_t num_slots)
    : slot_free_vms_(std::max<size_t>(1, num_slots), 0.0),
      quantum_tokens_(std::max(1.0, options.quantum_tokens)),
      aging_threshold_vms_(options.aging_threshold_vms) {
  tenants_.reserve(options.tenants.size());
  for (const TenantConfig& config : options.tenants) {
    TenantQueue q;
    q.config = config;
    q.config.weight = std::max(kMinWeight, config.weight);
    tenants_.push_back(std::move(q));
  }
}

size_t WeightedFairScheduler::TenantIndex(const TenantId& id) const {
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].config.id == id) return i;
  }
  return kNpos;
}

void WeightedFairScheduler::Enqueue(size_t tenant_idx, const Entry& entry) {
  tenants_[tenant_idx].fifo.push_back(entry);
  ++total_queued_;
}

size_t WeightedFairScheduler::QueueLen(size_t tenant_idx) const {
  return tenants_[tenant_idx].fifo.size();
}

double WeightedFairScheduler::EarliestSlotFreeVms() const {
  double earliest = kInf;
  for (double t : slot_free_vms_) earliest = std::min(earliest, t);
  return earliest;
}

size_t WeightedFairScheduler::PickTenant(double u) {
  // Aging escape hatch: a head that has waited past the threshold runs now,
  // oldest first (ties broken by tenant index, so the choice is total).
  size_t aged = kNpos;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    const TenantQueue& q = tenants_[i];
    if (q.fifo.empty() || q.fifo.front().arrival_vms > u) continue;
    if (u - q.fifo.front().arrival_vms < aging_threshold_vms_) continue;
    if (aged == kNpos ||
        q.fifo.front().arrival_vms < tenants_[aged].fifo.front().arrival_vms) {
      aged = i;
    }
  }
  if (aged != kNpos) return aged;

  // Classic DRR. A queue is credited quantum * weight once per *visit* of
  // the cursor (fresh_visit_), then serves heads while the deficit lasts;
  // when the deficit no longer covers the head, the cursor moves on. Each
  // full ring cycle credits every runnable tenant once, so the loop
  // terminates in at most ceil(max_cost / (quantum * min_weight)) cycles.
  for (;;) {
    TenantQueue& q = tenants_[rr_];
    bool runnable = !q.fifo.empty() && q.fifo.front().arrival_vms <= u;
    if (runnable) {
      if (fresh_visit_) {
        q.deficit += quantum_tokens_ * q.config.weight;
        fresh_visit_ = false;
      }
      if (q.deficit >= q.fifo.front().cost_tokens) return rr_;
    }
    rr_ = (rr_ + 1) % tenants_.size();
    fresh_visit_ = true;
  }
}

void WeightedFairScheduler::AdvanceTo(double now_vms,
                                      std::vector<Dispatch>* out) {
  while (total_queued_ > 0) {
    // Earliest moment a slot and some queued work are both ready.
    size_t slot = 0;
    for (size_t i = 1; i < slot_free_vms_.size(); ++i) {
      if (slot_free_vms_[i] < slot_free_vms_[slot]) slot = i;
    }
    double earliest_arrival = kInf;
    for (const TenantQueue& q : tenants_) {
      if (!q.fifo.empty()) {
        earliest_arrival =
            std::min(earliest_arrival, q.fifo.front().arrival_vms);
      }
    }
    double u = std::max(slot_free_vms_[slot], earliest_arrival);
    if (u > now_vms) break;

    size_t t = PickTenant(u);
    TenantQueue& q = tenants_[t];
    Entry entry = q.fifo.front();
    q.fifo.pop_front();
    --total_queued_;
    q.deficit -= entry.cost_tokens;  // aged dispatches may go negative
    if (q.fifo.empty()) q.deficit = 0.0;

    slot_free_vms_[slot] = u + entry.service_vms;
    out->push_back(Dispatch{entry.id, t, u});
  }
}

double JainFairnessIndex(const std::vector<double>& values) {
  double sum = 0.0, sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (values.empty() || sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

std::vector<Request> GeneratePopulation(const PopulationOptions& options) {
  common::Rng rng(options.seed);
  const size_t n_tenants = std::max<size_t>(1, options.tenants);
  const double amplitude =
      std::clamp(options.diurnal_amplitude, 0.0, 0.95);

  std::vector<Request> requests;
  requests.reserve(options.requests +
                   options.hot_tenants *
                       (options.requests == 0
                            ? 0
                            : static_cast<size_t>(options.burst_size)));

  auto make_request = [&](size_t tenant, double arrival) {
    Request req;
    req.tenant = common::StrFormat("t%02zu", tenant);
    req.arrival_vms = arrival;
    req.deadline_ms = options.deadline_ms;
    // Queries repeat within a tenant (inputs_per_tenant distinct texts) but
    // never across tenants — tenant isolation must not be confused with
    // cache/coalescing effects.
    size_t variant =
        options.inputs_per_tenant == 0
            ? 0
            : rng.NextBelow(options.inputs_per_tenant);
    req.input = common::StrFormat("tenant %02zu query %zu about data systems",
                                  tenant, variant);
    return req;
  };

  // Base traffic: exponential gaps modulated by the diurnal curve, tenant
  // picked per request from the zipf popularity distribution.
  double t = 0.0;
  for (size_t i = 0; i < options.requests; ++i) {
    double modulation = 1.0;
    if (options.diurnal_period_vms > 0.0 && amplitude > 0.0) {
      modulation = 1.0 + amplitude * std::sin(2.0 * M_PI * t /
                                              options.diurnal_period_vms);
    }
    t += rng.Exponential(1.0) * options.mean_gap_vms / modulation;
    requests.push_back(make_request(rng.Zipf(n_tenants, options.zipf_s), t));
  }
  const double horizon = t;

  // Bursts: each hot tenant fires a tight cluster on a fixed cadence, with a
  // seeded phase so hot tenants do not all burst in lockstep.
  for (size_t h = 0; h < std::min(options.hot_tenants, n_tenants); ++h) {
    if (options.burst_every_vms <= 0.0 || options.burst_size == 0) break;
    double phase = rng.Uniform(0.0, options.burst_every_vms);
    for (double start = phase; start < horizon;
         start += options.burst_every_vms) {
      for (size_t b = 0; b < options.burst_size; ++b) {
        requests.push_back(
            make_request(h, start + static_cast<double>(b) *
                                        options.burst_gap_vms));
      }
    }
  }

  // One stream, in arrival order, ids assigned densely. stable_sort keeps
  // the generation order of equal arrivals, so the stream is fully
  // deterministic.
  std::stable_sort(requests.begin(), requests.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival_vms < b.arrival_vms;
                   });
  for (size_t i = 0; i < requests.size(); ++i) requests[i].id = i;
  return requests;
}

}  // namespace llmdm::serve
