#ifndef LLMDM_SQL_EXECUTOR_H_
#define LLMDM_SQL_EXECUTOR_H_

#include <string>

#include "common/result.h"
#include "data/table.h"
#include "sql/ast.h"
#include "sql/catalog.h"

namespace llmdm::sql {

/// Result of executing one statement: a result set for SELECT, an affected-
/// row count for DML, nothing for DDL/transaction control.
struct ExecResult {
  data::Table table;        // SELECT output (empty schema otherwise)
  int64_t affected_rows = 0;
  bool has_rows = false;    // true iff `table` is meaningful
};

/// Materializing SQL executor over a Catalog. Supports the dialect produced
/// by sql::ParseStatement: SELECT with inner/left/cross joins, WHERE,
/// GROUP BY / HAVING, aggregates (COUNT/SUM/AVG/MIN/MAX [DISTINCT]),
/// ORDER BY (expressions, aliases or ordinals), LIMIT, DISTINCT, UNION /
/// UNION ALL / INTERSECT / EXCEPT, scalar/IN/EXISTS sub-queries (correlated
/// sub-queries resolve free columns through the enclosing scopes), CASE,
/// scalar functions; plus CREATE/DROP TABLE, INSERT (VALUES and SELECT),
/// UPDATE and DELETE. NULL follows SQL three-valued logic.
class Executor {
 public:
  explicit Executor(Catalog* catalog) : catalog_(catalog) {}

  /// Executes a parsed statement. Transaction-control statements are the
  /// Database facade's job and are rejected here.
  common::Result<ExecResult> Execute(const Statement& stmt);

  /// Executes a SELECT and returns the result table.
  common::Result<data::Table> ExecuteSelect(const SelectStmt& select);

 private:
  Catalog* catalog_;
};

}  // namespace llmdm::sql

#endif  // LLMDM_SQL_EXECUTOR_H_
