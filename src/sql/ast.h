#ifndef LLMDM_SQL_AST_H_
#define LLMDM_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "data/schema.h"
#include "data/value.h"

namespace llmdm::sql {

struct SelectStmt;

/// Expression node kinds. One struct with a kind tag keeps the parser and
/// evaluator compact; fields are interpreted per kind (documented below).
enum class ExprKind {
  kLiteral,          // literal_
  kColumnRef,        // qualifier_ (may be empty) + name_
  kStar,             // `*` in COUNT(*) or SELECT *
  kUnary,            // op_ in {NOT, -}; args_[0]
  kBinary,           // op_; args_[0], args_[1]
  kFunction,         // op_ = function name; args_
  kAggregate,        // op_ in {COUNT, SUM, AVG, MIN, MAX}; args_[0]; distinct_
  kInList,           // args_[0] IN (args_[1..]); negated_
  kInSubquery,       // args_[0] IN (subquery_); negated_
  kExists,           // EXISTS (subquery_); negated_
  kScalarSubquery,   // (subquery_) used as a value
  kBetween,          // args_[0] BETWEEN args_[1] AND args_[2]; negated_
  kIsNull,           // args_[0] IS [NOT] NULL; negated_
  kLike,             // args_[0] LIKE args_[1]; negated_
  kCase,             // CASE WHEN a1 THEN a2 [WHEN ...] [ELSE an] END (pairs)
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  data::Value literal;          // kLiteral
  std::string qualifier;        // kColumnRef: optional table alias
  std::string name;             // kColumnRef: column name
  std::string op;               // operator / function / aggregate name
  std::vector<ExprPtr> args;
  std::unique_ptr<SelectStmt> subquery;
  bool negated = false;         // NOT IN / NOT LIKE / IS NOT NULL / NOT BETWEEN
  bool distinct = false;        // COUNT(DISTINCT x)
  bool has_else = false;        // kCase: last arg is the ELSE branch

  /// Unparses back to SQL text (parenthesized conservatively). Guaranteed to
  /// re-parse to an equivalent tree; used by the SQL generator and the
  /// decomposition optimizer.
  std::string ToString() const;

  /// Deep copy.
  ExprPtr Clone() const;
};

// --- Convenience constructors -------------------------------------------

ExprPtr MakeLiteral(data::Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string name);
ExprPtr MakeStar();
ExprPtr MakeUnary(std::string op, ExprPtr operand);
ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args);
ExprPtr MakeAggregate(std::string name, ExprPtr arg, bool distinct);

// --- FROM clause ----------------------------------------------------------

enum class JoinType { kInner, kLeft, kCross };

struct TableRef;
using TableRefPtr = std::unique_ptr<TableRef>;

struct TableRef {
  enum class Kind { kBase, kSubquery, kJoin };
  Kind kind = Kind::kBase;

  // kBase
  std::string table_name;
  // kBase / kSubquery
  std::string alias;
  std::unique_ptr<SelectStmt> subquery;
  // kJoin
  JoinType join_type = JoinType::kInner;
  TableRefPtr left;
  TableRefPtr right;
  ExprPtr on;

  std::string ToString() const;
  TableRefPtr Clone() const;
};

// --- SELECT ----------------------------------------------------------------

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty if none

  SelectItem Clone() const;
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;

  OrderItem Clone() const;
};

enum class SetOp { kNone, kUnion, kUnionAll, kIntersect, kExcept };

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRefPtr> from;  // comma-separated factors (implicit cross)
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit

  SetOp set_op = SetOp::kNone;
  std::unique_ptr<SelectStmt> set_rhs;

  std::string ToString() const;
  std::unique_ptr<SelectStmt> Clone() const;
};

// --- Other statements -------------------------------------------------------

struct CreateTableStmt {
  std::string table_name;
  std::vector<data::Column> columns;
  std::string ToString() const;
};

struct DropTableStmt {
  std::string table_name;
  bool if_exists = false;
  std::string ToString() const;
};

struct InsertStmt {
  std::string table_name;
  std::vector<std::string> columns;         // empty = all, in schema order
  std::vector<std::vector<ExprPtr>> rows;   // VALUES rows
  std::unique_ptr<SelectStmt> select;       // INSERT ... SELECT alternative
  std::string ToString() const;
};

struct UpdateStmt {
  std::string table_name;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
  std::string ToString() const;
};

struct DeleteStmt {
  std::string table_name;
  ExprPtr where;
  std::string ToString() const;
};

enum class StatementKind {
  kSelect,
  kCreateTable,
  kDropTable,
  kInsert,
  kUpdate,
  kDelete,
  kBegin,
  kCommit,
  kRollback,
};

struct Statement {
  StatementKind kind;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<DropTableStmt> drop_table;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;

  std::string ToString() const;
};

}  // namespace llmdm::sql

#endif  // LLMDM_SQL_AST_H_
