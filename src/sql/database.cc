#include "sql/database.h"

#include "sql/parser.h"

namespace llmdm::sql {

common::Result<ExecResult> Database::ExecuteParsed(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kBegin: {
      if (snapshot_.has_value()) {
        return common::Status::FailedPrecondition(
            "nested transactions are not supported");
      }
      snapshot_ = catalog_;
      return ExecResult{};
    }
    case StatementKind::kCommit: {
      if (!snapshot_.has_value()) {
        return common::Status::FailedPrecondition("COMMIT outside transaction");
      }
      snapshot_.reset();
      return ExecResult{};
    }
    case StatementKind::kRollback: {
      if (!snapshot_.has_value()) {
        return common::Status::FailedPrecondition(
            "ROLLBACK outside transaction");
      }
      catalog_ = std::move(*snapshot_);
      snapshot_.reset();
      return ExecResult{};
    }
    default: {
      Executor executor(&catalog_);
      auto result = executor.Execute(stmt);
      if (!result.ok() && snapshot_.has_value()) {
        // Statement failure aborts the transaction.
        catalog_ = std::move(*snapshot_);
        snapshot_.reset();
      }
      return result;
    }
  }
}

common::Result<ExecResult> Database::Execute(std::string_view sql) {
  LLMDM_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return ExecuteParsed(stmt);
}

common::Result<ExecResult> Database::ExecuteScript(std::string_view sql) {
  LLMDM_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseScript(sql));
  ExecResult last;
  for (const Statement& stmt : stmts) {
    LLMDM_ASSIGN_OR_RETURN(ExecResult r, ExecuteParsed(stmt));
    if (r.has_rows) last = std::move(r);
  }
  return last;
}

common::Result<int64_t> Database::ExecuteAtomically(
    const std::vector<std::string>& statements) {
  if (snapshot_.has_value()) {
    return common::Status::FailedPrecondition(
        "already inside a transaction");
  }
  snapshot_ = catalog_;
  int64_t affected = 0;
  for (const std::string& sql : statements) {
    auto parsed = ParseStatement(sql);
    if (!parsed.ok()) {
      catalog_ = std::move(*snapshot_);
      snapshot_.reset();
      return parsed.status();
    }
    Executor executor(&catalog_);
    auto result = executor.Execute(*parsed);
    if (!result.ok()) {
      catalog_ = std::move(*snapshot_);
      snapshot_.reset();
      return result.status();
    }
    affected += result->affected_rows;
  }
  snapshot_.reset();
  return affected;
}

common::Result<data::Table> Database::Query(std::string_view sql) {
  LLMDM_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> select, ParseSelect(sql));
  Executor executor(&catalog_);
  return executor.ExecuteSelect(*select);
}

}  // namespace llmdm::sql
