#include "sql/lexer.h"

#include <array>
#include <cctype>

#include "common/string_util.h"

namespace llmdm::sql {
namespace {

constexpr std::array kKeywords = {
    "SELECT",    "FROM",     "WHERE",   "GROUP",    "BY",       "HAVING",
    "ORDER",     "LIMIT",    "ASC",     "DESC",     "AS",       "ON",
    "JOIN",      "INNER",    "LEFT",    "RIGHT",    "OUTER",    "CROSS",
    "AND",       "OR",       "NOT",     "IN",       "IS",       "NULL",
    "LIKE",      "BETWEEN",  "EXISTS",  "DISTINCT", "UNION",    "ALL",
    "INTERSECT", "EXCEPT",   "INSERT",  "INTO",     "VALUES",   "UPDATE",
    "SET",       "DELETE",   "CREATE",  "TABLE",    "DROP",     "PRIMARY",
    "KEY",       "INT",      "INTEGER", "DOUBLE",   "REAL",     "FLOAT",
    "TEXT",      "VARCHAR",  "BOOL",    "BOOLEAN",  "DATE",     "TRUE",
    "FALSE",     "BEGIN",    "COMMIT",  "ROLLBACK", "TRANSACTION",
    "COUNT",     "SUM",      "AVG",     "MIN",      "MAX",      "CASE",
    "WHEN",      "THEN",     "ELSE",    "END",      "IF",
};

}  // namespace

bool IsReservedKeyword(std::string_view upper_word) {
  for (std::string_view kw : kKeywords) {
    if (kw == upper_word) return true;
  }
  return false;
}

common::Result<std::vector<Token>> Lex(std::string_view sql) {
  std::vector<Token> out;
  size_t i = 0;
  auto error = [&](const std::string& what) {
    return common::Status::InvalidArgument(
        common::StrFormat("SQL lex error at offset %zu: %s", i, what.c_str()));
  };
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '_'))
        ++i;
      std::string word(sql.substr(start, i - start));
      std::string upper = common::ToUpper(word);
      if (IsReservedKeyword(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = word;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '.')) {
        if (sql[i] == '.') {
          // A second dot ends the number (e.g. "1..2" is malformed; caught
          // by the parser).
          if (is_float) break;
          is_float = true;
        }
        ++i;
      }
      std::string num(sql.substr(start, i - start));
      if (is_float) {
        tok.type = TokenType::kFloat;
        if (!common::ParseDouble(num, &tok.float_value)) {
          return error("bad numeric literal " + num);
        }
      } else {
        tok.type = TokenType::kInteger;
        if (!common::ParseInt64(num, &tok.int_value)) {
          return error("bad integer literal " + num);
        }
      }
      tok.text = std::move(num);
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          value.push_back(sql[i]);
          ++i;
        }
      }
      if (!closed) return error("unterminated string literal");
      tok.type = TokenType::kString;
      tok.text = std::move(value);
    } else {
      switch (c) {
        case ',':
          tok.type = TokenType::kComma;
          tok.text = ",";
          ++i;
          break;
        case '.':
          tok.type = TokenType::kDot;
          tok.text = ".";
          ++i;
          break;
        case '(':
          tok.type = TokenType::kLParen;
          tok.text = "(";
          ++i;
          break;
        case ')':
          tok.type = TokenType::kRParen;
          tok.text = ")";
          ++i;
          break;
        case ';':
          tok.type = TokenType::kSemicolon;
          tok.text = ";";
          ++i;
          break;
        case '=':
          tok.type = TokenType::kOperator;
          tok.text = "=";
          ++i;
          break;
        case '<':
          tok.type = TokenType::kOperator;
          if (i + 1 < sql.size() && sql[i + 1] == '=') {
            tok.text = "<=";
            i += 2;
          } else if (i + 1 < sql.size() && sql[i + 1] == '>') {
            tok.text = "<>";
            i += 2;
          } else {
            tok.text = "<";
            ++i;
          }
          break;
        case '>':
          tok.type = TokenType::kOperator;
          if (i + 1 < sql.size() && sql[i + 1] == '=') {
            tok.text = ">=";
            i += 2;
          } else {
            tok.text = ">";
            ++i;
          }
          break;
        case '!':
          if (i + 1 < sql.size() && sql[i + 1] == '=') {
            tok.type = TokenType::kOperator;
            tok.text = "<>";  // normalize != to <>
            i += 2;
          } else {
            return error("unexpected '!'");
          }
          break;
        case '+':
        case '-':
        case '*':
        case '/':
        case '%':
          tok.type = TokenType::kOperator;
          tok.text = std::string(1, c);
          ++i;
          break;
        default:
          return error(common::StrFormat("unexpected character '%c'", c));
      }
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = sql.size();
  out.push_back(end);
  return out;
}

}  // namespace llmdm::sql
