#ifndef LLMDM_SQL_PARSER_H_
#define LLMDM_SQL_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace llmdm::sql {

/// Parses one SQL statement (a trailing semicolon is allowed).
common::Result<Statement> ParseStatement(std::string_view sql);

/// Parses a semicolon-separated script into statements.
common::Result<std::vector<Statement>> ParseScript(std::string_view sql);

/// Parses a SELECT only (convenience for code that manipulates query ASTs).
common::Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view sql);

}  // namespace llmdm::sql

#endif  // LLMDM_SQL_PARSER_H_
