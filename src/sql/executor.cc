#include "sql/executor.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>

#include "common/string_util.h"

namespace llmdm::sql {
namespace {

using common::Result;
using common::Status;
using data::ColumnType;
using data::Row;
using data::Value;

// A column of an intermediate relation, carrying its source qualifier
// (table alias) for name resolution.
struct BoundColumn {
  std::string qualifier;  // lower-cased alias/table name; may be empty
  std::string name;       // original column spelling
};

struct Relation {
  std::vector<BoundColumn> columns;
  std::vector<Row> rows;
};

// Expression evaluation context. `aggregates` is non-null only inside a
// grouped query, mapping aggregate expression text -> the group's value.
// `parent` chains to the enclosing query's context for correlated
// sub-queries.
struct EvalContext {
  const Relation* relation = nullptr;
  const Row* row = nullptr;
  const std::map<std::string, Value>* aggregates = nullptr;
  const EvalContext* parent = nullptr;
};

bool NameEquals(const std::string& a, const std::string& b) {
  return common::ToLower(a) == common::ToLower(b);
}

// SQL LIKE with % (any run) and _ (any one char), case-sensitive.
bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer algorithm with backtracking on '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

// Three-valued boolean: true / false / unknown(NULL).
enum class Tri { kFalse, kTrue, kNull };

Tri ValueToTri(const Value& v) {
  if (v.is_null()) return Tri::kNull;
  return v.AsBool() ? Tri::kTrue : Tri::kFalse;
}

bool RowLess(const Row& a, const Row& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

struct RowLessCmp {
  bool operator()(const Row& a, const Row& b) const { return RowLess(a, b); }
};

class Evaluator {
 public:
  explicit Evaluator(Catalog* catalog) : catalog_(catalog) {}

  Result<Relation> ExecSelect(const SelectStmt& select,
                              const EvalContext* outer);

  Result<Value> Eval(const Expr& expr, const EvalContext& ctx);

 private:
  Result<Relation> ExecSelectCore(const SelectStmt& select,
                                  const EvalContext* outer);
  Result<Relation> ApplySetOp(SetOp op, Relation lhs, Relation rhs);
  Result<Relation> BuildTableRef(const TableRef& ref, const EvalContext* outer);
  Result<Relation> BuildFromClause(const SelectStmt& select,
                                   const EvalContext* outer);

  Result<Value> EvalColumnRef(const Expr& expr, const EvalContext& ctx);
  Result<Value> EvalBinary(const Expr& expr, const EvalContext& ctx);
  Result<Value> EvalFunction(const Expr& expr, const EvalContext& ctx);
  Result<Tri> EvalPredicate(const Expr& expr, const EvalContext& ctx);

  // Collects aggregate nodes (not descending into sub-queries).
  static void CollectAggregates(const Expr& expr,
                                std::vector<const Expr*>* out);

  Result<std::map<std::string, Value>> ComputeAggregates(
      const std::vector<const Expr*>& aggs, const Relation& src,
      const std::vector<size_t>& row_indices, const EvalContext* outer);

  Catalog* catalog_;
};

// ---- scalar evaluation -------------------------------------------------------

Result<Value> Evaluator::EvalColumnRef(const Expr& expr,
                                       const EvalContext& ctx) {
  for (const EvalContext* c = &ctx; c != nullptr; c = c->parent) {
    if (c->relation == nullptr || c->row == nullptr) continue;
    int found = -1;
    int matches = 0;
    for (size_t i = 0; i < c->relation->columns.size(); ++i) {
      const BoundColumn& col = c->relation->columns[i];
      if (!NameEquals(col.name, expr.name)) continue;
      if (!expr.qualifier.empty() &&
          !NameEquals(col.qualifier, expr.qualifier))
        continue;
      found = static_cast<int>(i);
      ++matches;
    }
    if (matches > 1) {
      return Status::InvalidArgument("ambiguous column reference: " +
                                     expr.ToString());
    }
    if (matches == 1) return (*c->row)[static_cast<size_t>(found)];
  }
  return Status::NotFound("unknown column: " + expr.ToString());
}

Result<Value> Evaluator::EvalBinary(const Expr& expr, const EvalContext& ctx) {
  const std::string& op = expr.op;
  // Logical connectives need lazy NULL handling.
  if (op == "AND" || op == "OR") {
    LLMDM_ASSIGN_OR_RETURN(Value lv, Eval(*expr.args[0], ctx));
    Tri l = lv.is_null() ? Tri::kNull
                         : (lv.is_bool() ? ValueToTri(lv) : Tri::kNull);
    if (!lv.is_null() && !lv.is_bool()) {
      return Status::InvalidArgument("AND/OR requires boolean operands");
    }
    if (op == "AND" && l == Tri::kFalse) return Value::Bool(false);
    if (op == "OR" && l == Tri::kTrue) return Value::Bool(true);
    LLMDM_ASSIGN_OR_RETURN(Value rv, Eval(*expr.args[1], ctx));
    if (!rv.is_null() && !rv.is_bool()) {
      return Status::InvalidArgument("AND/OR requires boolean operands");
    }
    Tri r = ValueToTri(rv);
    if (op == "AND") {
      if (r == Tri::kFalse) return Value::Bool(false);
      if (l == Tri::kNull || r == Tri::kNull) return Value::Null();
      return Value::Bool(true);
    }
    if (r == Tri::kTrue) return Value::Bool(true);
    if (l == Tri::kNull || r == Tri::kNull) return Value::Null();
    return Value::Bool(false);
  }

  LLMDM_ASSIGN_OR_RETURN(Value l, Eval(*expr.args[0], ctx));
  LLMDM_ASSIGN_OR_RETURN(Value r, Eval(*expr.args[1], ctx));
  if (l.is_null() || r.is_null()) return Value::Null();

  // Comparisons.
  if (op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
      op == ">=") {
    int cmp = 0;
    if (l.is_numeric() && r.is_numeric()) {
      double a = l.AsDouble(), b = r.AsDouble();
      cmp = (a < b) ? -1 : (a > b ? 1 : 0);
    } else if (l.is_text() && r.is_text()) {
      cmp = l.AsText().compare(r.AsText());
      cmp = (cmp < 0) ? -1 : (cmp > 0 ? 1 : 0);
    } else if (l.is_date() && r.is_date()) {
      cmp = (l.AsDate() < r.AsDate()) ? -1 : (r.AsDate() < l.AsDate() ? 1 : 0);
    } else if (l.is_bool() && r.is_bool()) {
      cmp = static_cast<int>(l.AsBool()) - static_cast<int>(r.AsBool());
    } else {
      return Status::InvalidArgument(common::StrFormat(
          "type mismatch in comparison: %s vs %s",
          std::string(data::ColumnTypeName(l.type())).c_str(),
          std::string(data::ColumnTypeName(r.type())).c_str()));
    }
    bool res = false;
    if (op == "=") res = cmp == 0;
    else if (op == "<>") res = cmp != 0;
    else if (op == "<") res = cmp < 0;
    else if (op == "<=") res = cmp <= 0;
    else if (op == ">") res = cmp > 0;
    else res = cmp >= 0;
    return Value::Bool(res);
  }

  // Arithmetic.
  if (op == "+" || op == "-" || op == "*" || op == "/" || op == "%") {
    if (!l.is_numeric() || !r.is_numeric()) {
      return Status::InvalidArgument("arithmetic requires numeric operands");
    }
    if (op == "/") {
      double denom = r.AsDouble();
      if (denom == 0.0) return Value::Null();  // SQL-style quiet divide-by-0
      return Value::Real(l.AsDouble() / denom);
    }
    if (op == "%") {
      if (!l.is_int() || !r.is_int()) {
        return Status::InvalidArgument("% requires integer operands");
      }
      if (r.AsInt() == 0) return Value::Null();
      return Value::Int(l.AsInt() % r.AsInt());
    }
    if (l.is_int() && r.is_int()) {
      int64_t a = l.AsInt(), b = r.AsInt();
      if (op == "+") return Value::Int(a + b);
      if (op == "-") return Value::Int(a - b);
      return Value::Int(a * b);
    }
    double a = l.AsDouble(), b = r.AsDouble();
    if (op == "+") return Value::Real(a + b);
    if (op == "-") return Value::Real(a - b);
    return Value::Real(a * b);
  }

  return Status::Unimplemented("unknown binary operator " + op);
}

Result<Value> Evaluator::EvalFunction(const Expr& expr,
                                      const EvalContext& ctx) {
  const std::string& fn = expr.op;
  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (const auto& a : expr.args) {
    LLMDM_ASSIGN_OR_RETURN(Value v, Eval(*a, ctx));
    args.push_back(std::move(v));
  }
  auto arity = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument(common::StrFormat(
          "%s expects %zu argument(s), got %zu", fn.c_str(), n, args.size()));
    }
    return Status::Ok();
  };
  if (fn == "COALESCE") {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (fn == "CONCAT") {
    std::string out;
    for (const Value& v : args) {
      if (!v.is_null()) out += v.ToString();
    }
    return Value::Text(std::move(out));
  }
  // Remaining functions are NULL-propagating.
  for (const Value& v : args) {
    if (v.is_null()) return Value::Null();
  }
  if (fn == "UPPER") {
    LLMDM_RETURN_IF_ERROR(arity(1));
    if (!args[0].is_text()) return Status::InvalidArgument("UPPER needs text");
    return Value::Text(common::ToUpper(args[0].AsText()));
  }
  if (fn == "LOWER") {
    LLMDM_RETURN_IF_ERROR(arity(1));
    if (!args[0].is_text()) return Status::InvalidArgument("LOWER needs text");
    return Value::Text(common::ToLower(args[0].AsText()));
  }
  if (fn == "LENGTH") {
    LLMDM_RETURN_IF_ERROR(arity(1));
    if (!args[0].is_text())
      return Status::InvalidArgument("LENGTH needs text");
    return Value::Int(static_cast<int64_t>(args[0].AsText().size()));
  }
  if (fn == "TRIM") {
    LLMDM_RETURN_IF_ERROR(arity(1));
    if (!args[0].is_text()) return Status::InvalidArgument("TRIM needs text");
    return Value::Text(std::string(common::Trim(args[0].AsText())));
  }
  if (fn == "ABS") {
    LLMDM_RETURN_IF_ERROR(arity(1));
    if (args[0].is_int()) return Value::Int(std::abs(args[0].AsInt()));
    if (args[0].is_double()) return Value::Real(std::abs(args[0].AsDouble()));
    return Status::InvalidArgument("ABS needs a number");
  }
  if (fn == "ROUND") {
    if (args.size() == 1) args.push_back(Value::Int(0));
    LLMDM_RETURN_IF_ERROR(arity(2));
    if (!args[0].is_numeric() || !args[1].is_int()) {
      return Status::InvalidArgument("ROUND(x, d) needs number, int");
    }
    double scale = std::pow(10.0, static_cast<double>(args[1].AsInt()));
    return Value::Real(std::round(args[0].AsDouble() * scale) / scale);
  }
  if (fn == "SUBSTR" || fn == "SUBSTRING") {
    if (args.size() != 2 && args.size() != 3) {
      return Status::InvalidArgument("SUBSTR(s, start [, len])");
    }
    if (!args[0].is_text() || !args[1].is_int()) {
      return Status::InvalidArgument("SUBSTR needs (text, int [, int])");
    }
    const std::string& s = args[0].AsText();
    int64_t start = args[1].AsInt();  // 1-based, SQL convention
    if (start < 1) start = 1;
    size_t from = static_cast<size_t>(start - 1);
    if (from >= s.size()) return Value::Text("");
    size_t len = s.size() - from;
    if (args.size() == 3) {
      if (!args[2].is_int())
        return Status::InvalidArgument("SUBSTR length must be int");
      int64_t want = args[2].AsInt();
      if (want < 0) want = 0;
      len = std::min(len, static_cast<size_t>(want));
    }
    return Value::Text(s.substr(from, len));
  }
  if (fn == "YEAR" || fn == "MONTH" || fn == "DAY") {
    LLMDM_RETURN_IF_ERROR(arity(1));
    if (!args[0].is_date())
      return Status::InvalidArgument(fn + " needs a date");
    const data::Date& d = args[0].AsDate();
    if (fn == "YEAR") return Value::Int(d.year);
    if (fn == "MONTH") return Value::Int(d.month);
    return Value::Int(d.day);
  }
  if (fn == "MOD") {
    LLMDM_RETURN_IF_ERROR(arity(2));
    if (!args[0].is_int() || !args[1].is_int() || args[1].AsInt() == 0) {
      return Status::InvalidArgument("MOD needs two ints, divisor nonzero");
    }
    return Value::Int(args[0].AsInt() % args[1].AsInt());
  }
  return Status::Unimplemented("unknown function " + fn);
}

Result<Value> Evaluator::Eval(const Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef:
      return EvalColumnRef(expr, ctx);
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is not a scalar expression");
    case ExprKind::kUnary: {
      LLMDM_ASSIGN_OR_RETURN(Value v, Eval(*expr.args[0], ctx));
      if (expr.op == "NOT") {
        if (v.is_null()) return Value::Null();
        if (!v.is_bool())
          return Status::InvalidArgument("NOT requires a boolean");
        return Value::Bool(!v.AsBool());
      }
      // unary minus
      if (v.is_null()) return Value::Null();
      if (v.is_int()) return Value::Int(-v.AsInt());
      if (v.is_double()) return Value::Real(-v.AsDouble());
      return Status::InvalidArgument("unary '-' requires a number");
    }
    case ExprKind::kBinary:
      return EvalBinary(expr, ctx);
    case ExprKind::kFunction:
      return EvalFunction(expr, ctx);
    case ExprKind::kAggregate: {
      if (ctx.aggregates != nullptr) {
        auto it = ctx.aggregates->find(expr.ToString());
        if (it != ctx.aggregates->end()) return it->second;
      }
      if (ctx.parent != nullptr) {
        // A correlated sub-query can reference the outer group's aggregate.
        EvalContext probe = ctx;
        return Eval(expr, *probe.parent);
      }
      return Status::InvalidArgument(
          "aggregate used outside of an aggregating query: " +
          expr.ToString());
    }
    case ExprKind::kInList: {
      LLMDM_ASSIGN_OR_RETURN(Value needle, Eval(*expr.args[0], ctx));
      if (needle.is_null()) return Value::Null();
      bool saw_null = false;
      for (size_t i = 1; i < expr.args.size(); ++i) {
        LLMDM_ASSIGN_OR_RETURN(Value item, Eval(*expr.args[i], ctx));
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (item == needle) return Value::Bool(!expr.negated);
      }
      if (saw_null) return Value::Null();
      return Value::Bool(expr.negated);
    }
    case ExprKind::kInSubquery: {
      LLMDM_ASSIGN_OR_RETURN(Value needle, Eval(*expr.args[0], ctx));
      if (needle.is_null()) return Value::Null();
      LLMDM_ASSIGN_OR_RETURN(Relation rel, ExecSelect(*expr.subquery, &ctx));
      if (rel.columns.size() != 1) {
        return Status::InvalidArgument(
            "IN sub-query must return exactly one column");
      }
      bool saw_null = false;
      for (const Row& r : rel.rows) {
        if (r[0].is_null()) {
          saw_null = true;
          continue;
        }
        if (r[0] == needle) return Value::Bool(!expr.negated);
      }
      if (saw_null) return Value::Null();
      return Value::Bool(expr.negated);
    }
    case ExprKind::kExists: {
      LLMDM_ASSIGN_OR_RETURN(Relation rel, ExecSelect(*expr.subquery, &ctx));
      bool exists = !rel.rows.empty();
      return Value::Bool(expr.negated ? !exists : exists);
    }
    case ExprKind::kScalarSubquery: {
      LLMDM_ASSIGN_OR_RETURN(Relation rel, ExecSelect(*expr.subquery, &ctx));
      if (rel.columns.size() != 1) {
        return Status::InvalidArgument(
            "scalar sub-query must return exactly one column");
      }
      if (rel.rows.empty()) return Value::Null();
      if (rel.rows.size() > 1) {
        return Status::InvalidArgument(
            "scalar sub-query returned more than one row");
      }
      return rel.rows[0][0];
    }
    case ExprKind::kBetween: {
      LLMDM_ASSIGN_OR_RETURN(Value v, Eval(*expr.args[0], ctx));
      LLMDM_ASSIGN_OR_RETURN(Value lo, Eval(*expr.args[1], ctx));
      LLMDM_ASSIGN_OR_RETURN(Value hi, Eval(*expr.args[2], ctx));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      bool in_range = !(v < lo) && !(hi < v);
      return Value::Bool(expr.negated ? !in_range : in_range);
    }
    case ExprKind::kIsNull: {
      LLMDM_ASSIGN_OR_RETURN(Value v, Eval(*expr.args[0], ctx));
      bool is_null = v.is_null();
      return Value::Bool(expr.negated ? !is_null : is_null);
    }
    case ExprKind::kLike: {
      LLMDM_ASSIGN_OR_RETURN(Value v, Eval(*expr.args[0], ctx));
      LLMDM_ASSIGN_OR_RETURN(Value p, Eval(*expr.args[1], ctx));
      if (v.is_null() || p.is_null()) return Value::Null();
      if (!v.is_text() || !p.is_text()) {
        return Status::InvalidArgument("LIKE requires text operands");
      }
      bool match = LikeMatch(v.AsText(), p.AsText());
      return Value::Bool(expr.negated ? !match : match);
    }
    case ExprKind::kCase: {
      size_t n = expr.args.size();
      size_t pairs = expr.has_else ? (n - 1) / 2 : n / 2;
      for (size_t i = 0; i < pairs; ++i) {
        LLMDM_ASSIGN_OR_RETURN(Value cond, Eval(*expr.args[2 * i], ctx));
        if (!cond.is_null() && cond.is_bool() && cond.AsBool()) {
          return Eval(*expr.args[2 * i + 1], ctx);
        }
      }
      if (expr.has_else) return Eval(*expr.args[n - 1], ctx);
      return Value::Null();
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<Tri> Evaluator::EvalPredicate(const Expr& expr, const EvalContext& ctx) {
  LLMDM_ASSIGN_OR_RETURN(Value v, Eval(expr, ctx));
  if (v.is_null()) return Tri::kNull;
  if (!v.is_bool()) {
    return Status::InvalidArgument("predicate did not evaluate to a boolean");
  }
  return v.AsBool() ? Tri::kTrue : Tri::kFalse;
}

// ---- FROM construction -------------------------------------------------------

Result<Relation> Evaluator::BuildTableRef(const TableRef& ref,
                                          const EvalContext* outer) {
  switch (ref.kind) {
    case TableRef::Kind::kBase: {
      LLMDM_ASSIGN_OR_RETURN(const data::Table* table,
                             catalog_->GetTable(ref.table_name));
      Relation rel;
      std::string qual =
          common::ToLower(ref.alias.empty() ? ref.table_name : ref.alias);
      for (const auto& col : table->schema().columns()) {
        rel.columns.push_back(BoundColumn{qual, col.name});
      }
      rel.rows = table->rows();
      return rel;
    }
    case TableRef::Kind::kSubquery: {
      LLMDM_ASSIGN_OR_RETURN(Relation rel, ExecSelect(*ref.subquery, outer));
      std::string qual = common::ToLower(ref.alias);
      for (auto& col : rel.columns) col.qualifier = qual;
      return rel;
    }
    case TableRef::Kind::kJoin: {
      LLMDM_ASSIGN_OR_RETURN(Relation left, BuildTableRef(*ref.left, outer));
      LLMDM_ASSIGN_OR_RETURN(Relation right, BuildTableRef(*ref.right, outer));
      Relation out;
      out.columns = left.columns;
      out.columns.insert(out.columns.end(), right.columns.begin(),
                         right.columns.end());
      Row null_right(right.columns.size(), Value::Null());
      for (const Row& lr : left.rows) {
        bool matched = false;
        for (const Row& rr : right.rows) {
          Row combined = lr;
          combined.insert(combined.end(), rr.begin(), rr.end());
          bool keep = true;
          if (ref.on != nullptr) {
            EvalContext ctx{&out, &combined, nullptr, outer};
            LLMDM_ASSIGN_OR_RETURN(Tri t, EvalPredicate(*ref.on, ctx));
            keep = (t == Tri::kTrue);
          }
          if (keep) {
            matched = true;
            out.rows.push_back(std::move(combined));
          }
        }
        if (!matched && ref.join_type == JoinType::kLeft) {
          Row combined = lr;
          combined.insert(combined.end(), null_right.begin(),
                          null_right.end());
          out.rows.push_back(std::move(combined));
        }
      }
      return out;
    }
  }
  return Status::Internal("unhandled table ref kind");
}

Result<Relation> Evaluator::BuildFromClause(const SelectStmt& select,
                                            const EvalContext* outer) {
  if (select.from.empty()) {
    Relation rel;
    rel.rows.push_back(Row{});
    return rel;
  }
  LLMDM_ASSIGN_OR_RETURN(Relation acc, BuildTableRef(*select.from[0], outer));
  for (size_t i = 1; i < select.from.size(); ++i) {
    LLMDM_ASSIGN_OR_RETURN(Relation next,
                           BuildTableRef(*select.from[i], outer));
    Relation combined;
    combined.columns = acc.columns;
    combined.columns.insert(combined.columns.end(), next.columns.begin(),
                            next.columns.end());
    for (const Row& a : acc.rows) {
      for (const Row& b : next.rows) {
        Row r = a;
        r.insert(r.end(), b.begin(), b.end());
        combined.rows.push_back(std::move(r));
      }
    }
    acc = std::move(combined);
  }
  return acc;
}

// ---- aggregation ---------------------------------------------------------------

void Evaluator::CollectAggregates(const Expr& expr,
                                  std::vector<const Expr*>* out) {
  if (expr.kind == ExprKind::kAggregate) {
    out->push_back(&expr);
    return;  // nested aggregates are invalid; the evaluator will complain
  }
  // Do not descend into sub-queries: their aggregates are theirs.
  if (expr.kind == ExprKind::kInSubquery || expr.kind == ExprKind::kExists ||
      expr.kind == ExprKind::kScalarSubquery) {
    return;
  }
  for (const auto& a : expr.args) CollectAggregates(*a, out);
}

Result<std::map<std::string, Value>> Evaluator::ComputeAggregates(
    const std::vector<const Expr*>& aggs, const Relation& src,
    const std::vector<size_t>& row_indices, const EvalContext* outer) {
  std::map<std::string, Value> out;
  for (const Expr* agg : aggs) {
    const std::string key = agg->ToString();
    if (out.count(key)) continue;
    const Expr& arg = *agg->args[0];
    bool arg_is_star = arg.kind == ExprKind::kStar;

    // Gather the argument values over the group's rows.
    std::vector<Value> values;
    values.reserve(row_indices.size());
    for (size_t idx : row_indices) {
      if (arg_is_star) {
        values.push_back(Value::Int(1));
        continue;
      }
      EvalContext ctx{&src, &src.rows[idx], nullptr, outer};
      LLMDM_ASSIGN_OR_RETURN(Value v, Eval(arg, ctx));
      values.push_back(std::move(v));
    }
    if (agg->distinct) {
      std::set<Row, RowLessCmp> seen;
      std::vector<Value> unique;
      for (const Value& v : values) {
        if (v.is_null()) continue;
        if (seen.insert(Row{v}).second) unique.push_back(v);
      }
      values = std::move(unique);
    }

    if (agg->op == "COUNT") {
      int64_t count = 0;
      for (const Value& v : values) {
        if (arg_is_star || !v.is_null()) ++count;
      }
      out.emplace(key, Value::Int(count));
      continue;
    }
    // SUM/AVG/MIN/MAX ignore NULLs; empty input yields NULL.
    std::vector<Value> present;
    for (const Value& v : values) {
      if (!v.is_null()) present.push_back(v);
    }
    if (present.empty()) {
      out.emplace(key, Value::Null());
      continue;
    }
    if (agg->op == "SUM" || agg->op == "AVG") {
      bool all_int = true;
      double sum = 0.0;
      int64_t isum = 0;
      for (const Value& v : present) {
        if (!v.is_numeric()) {
          return Status::InvalidArgument(agg->op + " requires numeric input");
        }
        if (!v.is_int()) all_int = false;
        sum += v.AsDouble();
        if (v.is_int()) isum += v.AsInt();
      }
      if (agg->op == "SUM") {
        out.emplace(key, all_int ? Value::Int(isum) : Value::Real(sum));
      } else {
        out.emplace(key, Value::Real(sum / static_cast<double>(present.size())));
      }
      continue;
    }
    if (agg->op == "MIN" || agg->op == "MAX") {
      Value best = present[0];
      for (size_t i = 1; i < present.size(); ++i) {
        bool less = present[i] < best;
        if ((agg->op == "MIN" && less) || (agg->op == "MAX" && best < present[i])) {
          best = present[i];
        }
      }
      out.emplace(key, best);
      continue;
    }
    return Status::Unimplemented("unknown aggregate " + agg->op);
  }
  return out;
}

// ---- SELECT core ----------------------------------------------------------------

Result<Relation> Evaluator::ExecSelectCore(const SelectStmt& select,
                                           const EvalContext* outer) {
  LLMDM_ASSIGN_OR_RETURN(Relation src, BuildFromClause(select, outer));

  // WHERE.
  if (select.where != nullptr) {
    std::vector<Row> kept;
    for (Row& r : src.rows) {
      EvalContext ctx{&src, &r, nullptr, outer};
      LLMDM_ASSIGN_OR_RETURN(Tri t, EvalPredicate(*select.where, ctx));
      if (t == Tri::kTrue) kept.push_back(std::move(r));
    }
    src.rows = std::move(kept);
  }

  // Locate aggregates in the output clauses.
  std::vector<const Expr*> aggs;
  for (const auto& item : select.items) CollectAggregates(*item.expr, &aggs);
  if (select.having) CollectAggregates(*select.having, &aggs);
  for (const auto& o : select.order_by) CollectAggregates(*o.expr, &aggs);
  const bool grouped = !select.group_by.empty() || !aggs.empty();

  // Expand the select list (stars -> concrete columns).
  struct OutputItem {
    const Expr* expr = nullptr;       // null for star-expanded columns
    size_t src_column = 0;            // star expansion source index
    std::string alias;
    BoundColumn out_col;
  };
  std::vector<OutputItem> outputs;
  for (const auto& item : select.items) {
    if (item.expr->kind == ExprKind::kStar) {
      if (grouped && select.group_by.empty()) {
        return Status::InvalidArgument(
            "SELECT * cannot be combined with aggregates");
      }
      std::string want = common::ToLower(item.expr->qualifier);
      bool any = false;
      for (size_t i = 0; i < src.columns.size(); ++i) {
        if (!want.empty() && src.columns[i].qualifier != want) continue;
        OutputItem out;
        out.src_column = i;
        out.out_col = src.columns[i];
        outputs.push_back(std::move(out));
        any = true;
      }
      if (!any && !want.empty()) {
        return Status::NotFound("no columns match " + item.expr->qualifier +
                                ".*");
      }
      continue;
    }
    OutputItem out;
    out.expr = item.expr.get();
    out.alias = item.alias;
    if (!item.alias.empty()) {
      out.out_col = BoundColumn{"", item.alias};
    } else if (item.expr->kind == ExprKind::kColumnRef) {
      out.out_col = BoundColumn{common::ToLower(item.expr->qualifier),
                                item.expr->name};
    } else {
      out.out_col = BoundColumn{"", item.expr->ToString()};
    }
    outputs.push_back(std::move(out));
  }

  Relation result;
  for (const auto& o : outputs) result.columns.push_back(o.out_col);

  // Order keys are computed alongside each output row, then stripped.
  std::vector<std::vector<Value>> order_keys;

  auto eval_order_keys =
      [&](const EvalContext& ctx,
          const Row& out_row) -> Result<std::vector<Value>> {
    std::vector<Value> keys;
    for (const auto& o : select.order_by) {
      // ORDER BY <ordinal>.
      if (o.expr->kind == ExprKind::kLiteral && o.expr->literal.is_int()) {
        int64_t ord = o.expr->literal.AsInt();
        if (ord < 1 || static_cast<size_t>(ord) > out_row.size()) {
          return Status::InvalidArgument("ORDER BY ordinal out of range");
        }
        keys.push_back(out_row[static_cast<size_t>(ord - 1)]);
        continue;
      }
      // ORDER BY <alias>.
      if (o.expr->kind == ExprKind::kColumnRef && o.expr->qualifier.empty()) {
        bool matched = false;
        for (size_t i = 0; i < outputs.size(); ++i) {
          if (!outputs[i].alias.empty() &&
              NameEquals(outputs[i].alias, o.expr->name)) {
            keys.push_back(out_row[i]);
            matched = true;
            break;
          }
        }
        if (matched) continue;
      }
      LLMDM_ASSIGN_OR_RETURN(Value v, Eval(*o.expr, ctx));
      keys.push_back(std::move(v));
    }
    return keys;
  };

  if (!grouped) {
    for (const Row& r : src.rows) {
      EvalContext ctx{&src, &r, nullptr, outer};
      Row out_row;
      out_row.reserve(outputs.size());
      for (const auto& o : outputs) {
        if (o.expr == nullptr) {
          out_row.push_back(r[o.src_column]);
        } else {
          LLMDM_ASSIGN_OR_RETURN(Value v, Eval(*o.expr, ctx));
          out_row.push_back(std::move(v));
        }
      }
      if (!select.order_by.empty()) {
        LLMDM_ASSIGN_OR_RETURN(std::vector<Value> keys,
                               eval_order_keys(ctx, out_row));
        order_keys.push_back(std::move(keys));
      }
      result.rows.push_back(std::move(out_row));
    }
  } else {
    // Group rows by the GROUP BY key.
    std::map<Row, std::vector<size_t>, RowLessCmp> groups;
    if (select.group_by.empty()) {
      // Single implicit group (possibly empty).
      std::vector<size_t> all(src.rows.size());
      for (size_t i = 0; i < all.size(); ++i) all[i] = i;
      groups.emplace(Row{}, std::move(all));
    } else {
      for (size_t i = 0; i < src.rows.size(); ++i) {
        EvalContext ctx{&src, &src.rows[i], nullptr, outer};
        Row key;
        for (const auto& g : select.group_by) {
          LLMDM_ASSIGN_OR_RETURN(Value v, Eval(*g, ctx));
          key.push_back(std::move(v));
        }
        groups[std::move(key)].push_back(i);
      }
    }
    static const Row kEmptyRow;
    for (const auto& [key, indices] : groups) {
      auto agg_result = ComputeAggregates(aggs, src, indices, outer);
      if (!agg_result.ok()) return agg_result.status();
      std::map<std::string, Value> agg_values = std::move(agg_result).value();
      const Row* rep = indices.empty() ? &kEmptyRow : &src.rows[indices[0]];
      EvalContext ctx{&src, rep, &agg_values, outer};
      if (select.having != nullptr) {
        LLMDM_ASSIGN_OR_RETURN(Tri t, EvalPredicate(*select.having, ctx));
        if (t != Tri::kTrue) continue;
      }
      Row out_row;
      out_row.reserve(outputs.size());
      for (const auto& o : outputs) {
        if (o.expr == nullptr) {
          out_row.push_back((*rep)[o.src_column]);
        } else {
          LLMDM_ASSIGN_OR_RETURN(Value v, Eval(*o.expr, ctx));
          out_row.push_back(std::move(v));
        }
      }
      if (!select.order_by.empty()) {
        LLMDM_ASSIGN_OR_RETURN(std::vector<Value> keys,
                               eval_order_keys(ctx, out_row));
        order_keys.push_back(std::move(keys));
      }
      result.rows.push_back(std::move(out_row));
    }
  }

  // DISTINCT before ORDER BY (SQL evaluates DISTINCT on the projected rows).
  if (select.distinct) {
    std::set<Row, RowLessCmp> seen;
    std::vector<Row> unique;
    std::vector<std::vector<Value>> unique_keys;
    for (size_t i = 0; i < result.rows.size(); ++i) {
      if (seen.insert(result.rows[i]).second) {
        unique.push_back(std::move(result.rows[i]));
        if (!order_keys.empty()) unique_keys.push_back(std::move(order_keys[i]));
      }
    }
    result.rows = std::move(unique);
    order_keys = std::move(unique_keys);
  }

  // ORDER BY.
  if (!select.order_by.empty()) {
    std::vector<size_t> perm(result.rows.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
      const auto& ka = order_keys[a];
      const auto& kb = order_keys[b];
      for (size_t i = 0; i < ka.size(); ++i) {
        bool desc = select.order_by[i].descending;
        if (ka[i] < kb[i]) return !desc;
        if (kb[i] < ka[i]) return desc;
      }
      return false;
    });
    std::vector<Row> sorted;
    sorted.reserve(result.rows.size());
    for (size_t idx : perm) sorted.push_back(std::move(result.rows[idx]));
    result.rows = std::move(sorted);
  }

  // LIMIT.
  if (select.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(select.limit)) {
    result.rows.resize(static_cast<size_t>(select.limit));
  }
  return result;
}

Result<Relation> Evaluator::ExecSelect(const SelectStmt& select,
                                       const EvalContext* outer) {
  LLMDM_ASSIGN_OR_RETURN(Relation acc, ExecSelectCore(select, outer));
  // Fold the set-operation chain LEFT-associatively (the SQL standard):
  // A UNION B EXCEPT C means (A UNION B) EXCEPT C. The chain is stored as a
  // linked list via set_rhs, so each node contributes its own core relation.
  for (const SelectStmt* node = &select;
       node->set_op != SetOp::kNone && node->set_rhs != nullptr;
       node = node->set_rhs.get()) {
    LLMDM_ASSIGN_OR_RETURN(Relation rhs,
                           ExecSelectCore(*node->set_rhs, outer));
    LLMDM_ASSIGN_OR_RETURN(acc, ApplySetOp(node->set_op, std::move(acc),
                                           std::move(rhs)));
  }
  return acc;
}

Result<Relation> Evaluator::ApplySetOp(SetOp op, Relation lhs, Relation rhs) {
  if (lhs.columns.size() != rhs.columns.size()) {
    return Status::InvalidArgument(
        "set operation operands have different column counts");
  }
  Relation out;
  out.columns = lhs.columns;
  switch (op) {
    case SetOp::kUnionAll: {
      out.rows = std::move(lhs.rows);
      for (Row& r : rhs.rows) out.rows.push_back(std::move(r));
      break;
    }
    case SetOp::kUnion: {
      std::set<Row, RowLessCmp> seen;
      for (Row& r : lhs.rows) {
        if (seen.insert(r).second) out.rows.push_back(std::move(r));
      }
      for (Row& r : rhs.rows) {
        if (seen.insert(r).second) out.rows.push_back(std::move(r));
      }
      break;
    }
    case SetOp::kIntersect: {
      std::set<Row, RowLessCmp> right(rhs.rows.begin(), rhs.rows.end());
      std::set<Row, RowLessCmp> emitted;
      for (Row& r : lhs.rows) {
        if (right.count(r) && emitted.insert(r).second) {
          out.rows.push_back(std::move(r));
        }
      }
      break;
    }
    case SetOp::kExcept: {
      std::set<Row, RowLessCmp> right(rhs.rows.begin(), rhs.rows.end());
      std::set<Row, RowLessCmp> emitted;
      for (Row& r : lhs.rows) {
        if (!right.count(r) && emitted.insert(r).second) {
          out.rows.push_back(std::move(r));
        }
      }
      break;
    }
    case SetOp::kNone:
      break;
  }
  return out;
}

// Infers a column type from the values present (first non-null wins; mixed
// int/double widens to double).
ColumnType InferType(const std::vector<Row>& rows, size_t col) {
  ColumnType type = ColumnType::kNull;
  for (const Row& r : rows) {
    const Value& v = r[col];
    if (v.is_null()) continue;
    ColumnType vt = v.type();
    if (type == ColumnType::kNull) {
      type = vt;
    } else if (type != vt) {
      if ((type == ColumnType::kInt64 && vt == ColumnType::kDouble) ||
          (type == ColumnType::kDouble && vt == ColumnType::kInt64)) {
        type = ColumnType::kDouble;
      } else {
        return ColumnType::kText;  // heterogeneous: degrade to text-ish
      }
    }
  }
  return type == ColumnType::kNull ? ColumnType::kText : type;
}

data::Table RelationToTable(Relation rel, const std::string& name) {
  data::Schema schema;
  for (size_t c = 0; c < rel.columns.size(); ++c) {
    schema.AddColumn(data::Column{rel.columns[c].name,
                                  InferType(rel.rows, c), true});
  }
  data::Table table(name, std::move(schema));
  for (Row& r : rel.rows) {
    // Widen ints stored in double-typed columns for uniformity.
    for (size_t c = 0; c < r.size(); ++c) {
      if (table.schema().column(c).type == ColumnType::kDouble &&
          r[c].is_int()) {
        r[c] = Value::Real(static_cast<double>(r[c].AsInt()));
      }
    }
    table.AppendRowUnchecked(std::move(r));
  }
  return table;
}

}  // namespace

Result<data::Table> Executor::ExecuteSelect(const SelectStmt& select) {
  Evaluator evaluator(catalog_);
  LLMDM_ASSIGN_OR_RETURN(Relation rel, evaluator.ExecSelect(select, nullptr));
  return RelationToTable(std::move(rel), "result");
}

Result<ExecResult> Executor::Execute(const Statement& stmt) {
  Evaluator evaluator(catalog_);
  ExecResult result;
  switch (stmt.kind) {
    case StatementKind::kSelect: {
      LLMDM_ASSIGN_OR_RETURN(result.table, ExecuteSelect(*stmt.select));
      result.has_rows = true;
      result.affected_rows = static_cast<int64_t>(result.table.NumRows());
      return result;
    }
    case StatementKind::kCreateTable: {
      data::Schema schema(stmt.create_table->columns);
      LLMDM_RETURN_IF_ERROR(
          catalog_->CreateTable(stmt.create_table->table_name, schema));
      return result;
    }
    case StatementKind::kDropTable: {
      LLMDM_RETURN_IF_ERROR(catalog_->DropTable(stmt.drop_table->table_name,
                                                stmt.drop_table->if_exists));
      return result;
    }
    case StatementKind::kInsert: {
      const InsertStmt& ins = *stmt.insert;
      LLMDM_ASSIGN_OR_RETURN(data::Table * table,
                             catalog_->GetMutableTable(ins.table_name));
      // Resolve target column order.
      std::vector<size_t> target;
      if (ins.columns.empty()) {
        for (size_t i = 0; i < table->NumColumns(); ++i) target.push_back(i);
      } else {
        for (const std::string& c : ins.columns) {
          auto idx = table->schema().Find(c);
          if (!idx.has_value()) {
            return Status::NotFound("no column " + c + " in " +
                                    ins.table_name);
          }
          target.push_back(*idx);
        }
      }
      std::vector<Row> incoming;
      if (ins.select != nullptr) {
        LLMDM_ASSIGN_OR_RETURN(data::Table from_select,
                               ExecuteSelect(*ins.select));
        incoming = from_select.rows();
      } else {
        for (const auto& row_exprs : ins.rows) {
          Row r;
          for (const auto& e : row_exprs) {
            EvalContext empty{};
            LLMDM_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*e, empty));
            r.push_back(std::move(v));
          }
          incoming.push_back(std::move(r));
        }
      }
      for (Row& r : incoming) {
        if (r.size() != target.size()) {
          return Status::InvalidArgument(common::StrFormat(
              "INSERT arity mismatch: %zu values for %zu columns", r.size(),
              target.size()));
        }
        Row full(table->NumColumns(), Value::Null());
        for (size_t i = 0; i < target.size(); ++i) {
          full[target[i]] = std::move(r[i]);
        }
        LLMDM_RETURN_IF_ERROR(table->AppendRow(std::move(full)));
        ++result.affected_rows;
      }
      return result;
    }
    case StatementKind::kUpdate: {
      const UpdateStmt& upd = *stmt.update;
      LLMDM_ASSIGN_OR_RETURN(data::Table * table,
                             catalog_->GetMutableTable(upd.table_name));
      // Bind assignment targets.
      std::vector<size_t> targets;
      for (const auto& [col, expr] : upd.assignments) {
        auto idx = table->schema().Find(col);
        if (!idx.has_value()) {
          return Status::NotFound("no column " + col + " in " +
                                  upd.table_name);
        }
        targets.push_back(*idx);
      }
      Relation rel;
      std::string qual = common::ToLower(upd.table_name);
      for (const auto& col : table->schema().columns()) {
        rel.columns.push_back(BoundColumn{qual, col.name});
      }
      for (size_t i = 0; i < table->NumRows(); ++i) {
        rel.rows.clear();  // context only needs the current row
        const Row& current = table->row(i);
        EvalContext ctx{&rel, &current, nullptr, nullptr};
        if (upd.where != nullptr) {
          LLMDM_ASSIGN_OR_RETURN(Value cond, evaluator.Eval(*upd.where, ctx));
          if (cond.is_null() || !cond.is_bool() || !cond.AsBool()) continue;
        }
        Row updated = current;
        for (size_t a = 0; a < targets.size(); ++a) {
          LLMDM_ASSIGN_OR_RETURN(Value v,
                                 evaluator.Eval(*upd.assignments[a].second, ctx));
          updated[targets[a]] = std::move(v);
        }
        *table->mutable_row(i) = std::move(updated);
        ++result.affected_rows;
      }
      return result;
    }
    case StatementKind::kDelete: {
      const DeleteStmt& del = *stmt.del;
      LLMDM_ASSIGN_OR_RETURN(data::Table * table,
                             catalog_->GetMutableTable(del.table_name));
      Relation rel;
      std::string qual = common::ToLower(del.table_name);
      for (const auto& col : table->schema().columns()) {
        rel.columns.push_back(BoundColumn{qual, col.name});
      }
      data::Table rebuilt(table->name(), table->schema());
      for (size_t i = 0; i < table->NumRows(); ++i) {
        const Row& current = table->row(i);
        bool remove = true;
        if (del.where != nullptr) {
          EvalContext ctx{&rel, &current, nullptr, nullptr};
          LLMDM_ASSIGN_OR_RETURN(Value cond, evaluator.Eval(*del.where, ctx));
          remove = !cond.is_null() && cond.is_bool() && cond.AsBool();
        }
        if (remove) {
          ++result.affected_rows;
        } else {
          rebuilt.AppendRowUnchecked(current);
        }
      }
      *table = std::move(rebuilt);
      return result;
    }
    case StatementKind::kBegin:
    case StatementKind::kCommit:
    case StatementKind::kRollback:
      return Status::FailedPrecondition(
          "transaction control must go through sql::Database");
  }
  return Status::Internal("unhandled statement kind");
}

}  // namespace llmdm::sql
