#ifndef LLMDM_SQL_LEXER_H_
#define LLMDM_SQL_LEXER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace llmdm::sql {

/// Tokenizes a SQL string. Keywords are recognized case-insensitively and
/// normalized to upper case; identifiers keep their original spelling.
/// Supports line comments (`-- ...`) and single-quoted string literals with
/// `''` escapes.
common::Result<std::vector<Token>> Lex(std::string_view sql);

/// True if `word` (upper-cased) is a reserved SQL keyword in this dialect.
bool IsReservedKeyword(std::string_view upper_word);

}  // namespace llmdm::sql

#endif  // LLMDM_SQL_LEXER_H_
