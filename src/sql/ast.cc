#include "sql/ast.h"

#include "common/string_util.h"

namespace llmdm::sql {
namespace {

// Quotes a text literal with SQL '' escaping.
std::string QuoteText(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

std::string LiteralToSql(const data::Value& v) {
  if (v.is_text()) return QuoteText(v.AsText());
  if (v.is_date()) return "DATE " + QuoteText(v.AsDate().ToString());
  return v.ToString();
}

}  // namespace

// --- Expr -------------------------------------------------------------------

ExprPtr MakeLiteral(data::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->name = std::move(name);
  return e;
}

ExprPtr MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr MakeUnary(std::string op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->op = std::move(op);
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->op = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr MakeAggregate(std::string name, ExprPtr arg, bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggregate;
  e->op = std::move(name);
  e->args.push_back(std::move(arg));
  e->distinct = distinct;
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return LiteralToSql(literal);
    case ExprKind::kColumnRef:
      return qualifier.empty() ? name : qualifier + "." + name;
    case ExprKind::kStar:
      return qualifier.empty() ? "*" : qualifier + ".*";
    case ExprKind::kUnary:
      if (op == "NOT") return "(NOT " + args[0]->ToString() + ")";
      return "(" + op + args[0]->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + args[0]->ToString() + " " + op + " " + args[1]->ToString() +
             ")";
    case ExprKind::kFunction: {
      std::string out = op + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kAggregate:
      return op + "(" + (distinct ? "DISTINCT " : "") + args[0]->ToString() +
             ")";
    case ExprKind::kInList: {
      std::string out =
          args[0]->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < args.size(); ++i) {
        if (i > 1) out += ", ";
        out += args[i]->ToString();
      }
      return "(" + out + "))";
    }
    case ExprKind::kInSubquery:
      return "(" + args[0]->ToString() + (negated ? " NOT IN (" : " IN (") +
             subquery->ToString() + "))";
    case ExprKind::kExists:
      return std::string(negated ? "(NOT EXISTS (" : "(EXISTS (") +
             subquery->ToString() + "))";
    case ExprKind::kScalarSubquery:
      return "(" + subquery->ToString() + ")";
    case ExprKind::kBetween:
      return "(" + args[0]->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             args[1]->ToString() + " AND " + args[2]->ToString() + ")";
    case ExprKind::kIsNull:
      return "(" + args[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL") +
             ")";
    case ExprKind::kLike:
      return "(" + args[0]->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             args[1]->ToString() + ")";
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t n = args.size();
      size_t pairs = has_else ? (n - 1) / 2 : n / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " WHEN " + args[2 * i]->ToString() + " THEN " +
               args[2 * i + 1]->ToString();
      }
      if (has_else) out += " ELSE " + args[n - 1]->ToString();
      return out + " END";
    }
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->qualifier = qualifier;
  e->name = name;
  e->op = op;
  e->negated = negated;
  e->distinct = distinct;
  e->has_else = has_else;
  for (const auto& a : args) e->args.push_back(a->Clone());
  if (subquery) e->subquery = subquery->Clone();
  return e;
}

// --- TableRef ----------------------------------------------------------------

std::string TableRef::ToString() const {
  switch (kind) {
    case Kind::kBase:
      return alias.empty() ? table_name : table_name + " AS " + alias;
    case Kind::kSubquery:
      return "(" + subquery->ToString() + ")" +
             (alias.empty() ? "" : " AS " + alias);
    case Kind::kJoin: {
      std::string joiner;
      switch (join_type) {
        case JoinType::kInner:
          joiner = " JOIN ";
          break;
        case JoinType::kLeft:
          joiner = " LEFT JOIN ";
          break;
        case JoinType::kCross:
          joiner = " CROSS JOIN ";
          break;
      }
      std::string out = left->ToString() + joiner + right->ToString();
      if (on) out += " ON " + on->ToString();
      return out;
    }
  }
  return "?";
}

TableRefPtr TableRef::Clone() const {
  auto t = std::make_unique<TableRef>();
  t->kind = kind;
  t->table_name = table_name;
  t->alias = alias;
  t->join_type = join_type;
  if (subquery) t->subquery = subquery->Clone();
  if (left) t->left = left->Clone();
  if (right) t->right = right->Clone();
  if (on) t->on = on->Clone();
  return t;
}

SelectItem SelectItem::Clone() const {
  return SelectItem{expr->Clone(), alias};
}

OrderItem OrderItem::Clone() const {
  return OrderItem{expr->Clone(), descending};
}

// --- SelectStmt ----------------------------------------------------------------

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].expr->ToString();
    if (!items[i].alias.empty()) out += " AS " + items[i].alias;
  }
  if (!from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) out += ", ";
      out += from[i]->ToString();
    }
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit >= 0) out += common::StrFormat(" LIMIT %lld", (long long)limit);
  if (set_op != SetOp::kNone && set_rhs) {
    switch (set_op) {
      case SetOp::kUnion:
        out += " UNION ";
        break;
      case SetOp::kUnionAll:
        out += " UNION ALL ";
        break;
      case SetOp::kIntersect:
        out += " INTERSECT ";
        break;
      case SetOp::kExcept:
        out += " EXCEPT ";
        break;
      case SetOp::kNone:
        break;
    }
    out += set_rhs->ToString();
  }
  return out;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto s = std::make_unique<SelectStmt>();
  s->distinct = distinct;
  for (const auto& item : items) s->items.push_back(item.Clone());
  for (const auto& f : from) s->from.push_back(f->Clone());
  if (where) s->where = where->Clone();
  for (const auto& g : group_by) s->group_by.push_back(g->Clone());
  if (having) s->having = having->Clone();
  for (const auto& o : order_by) s->order_by.push_back(o.Clone());
  s->limit = limit;
  s->set_op = set_op;
  if (set_rhs) s->set_rhs = set_rhs->Clone();
  return s;
}

// --- Other statements -----------------------------------------------------------

std::string CreateTableStmt::ToString() const {
  std::string out = "CREATE TABLE " + table_name + " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns[i].name;
    out += ' ';
    out += data::ColumnTypeName(columns[i].type);
    if (!columns[i].nullable) out += " NOT NULL";
  }
  return out + ")";
}

std::string DropTableStmt::ToString() const {
  return std::string("DROP TABLE ") + (if_exists ? "IF EXISTS " : "") +
         table_name;
}

std::string InsertStmt::ToString() const {
  std::string out = "INSERT INTO " + table_name;
  if (!columns.empty()) {
    out += " (" + common::Join(columns, ", ") + ")";
  }
  if (select) {
    out += " " + select->ToString();
    return out;
  }
  out += " VALUES ";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) out += ", ";
    out += "(";
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += ", ";
      out += rows[r][c]->ToString();
    }
    out += ")";
  }
  return out;
}

std::string UpdateStmt::ToString() const {
  std::string out = "UPDATE " + table_name + " SET ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i > 0) out += ", ";
    out += assignments[i].first + " = " + assignments[i].second->ToString();
  }
  if (where) out += " WHERE " + where->ToString();
  return out;
}

std::string DeleteStmt::ToString() const {
  std::string out = "DELETE FROM " + table_name;
  if (where) out += " WHERE " + where->ToString();
  return out;
}

std::string Statement::ToString() const {
  switch (kind) {
    case StatementKind::kSelect:
      return select->ToString();
    case StatementKind::kCreateTable:
      return create_table->ToString();
    case StatementKind::kDropTable:
      return drop_table->ToString();
    case StatementKind::kInsert:
      return insert->ToString();
    case StatementKind::kUpdate:
      return update->ToString();
    case StatementKind::kDelete:
      return del->ToString();
    case StatementKind::kBegin:
      return "BEGIN";
    case StatementKind::kCommit:
      return "COMMIT";
    case StatementKind::kRollback:
      return "ROLLBACK";
  }
  return "?";
}

}  // namespace llmdm::sql
