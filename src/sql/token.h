#ifndef LLMDM_SQL_TOKEN_H_
#define LLMDM_SQL_TOKEN_H_

#include <string>

namespace llmdm::sql {

enum class TokenType {
  kEnd = 0,
  kIdentifier,  // table / column names (keywords are folded to kKeyword)
  kKeyword,     // upper-cased reserved word
  kString,      // 'text literal' (quotes stripped, '' unescaped)
  kInteger,
  kFloat,
  kOperator,   // = <> != < <= > >= + - * / %
  kComma,
  kDot,
  kLParen,
  kRParen,
  kSemicolon,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // normalized: keywords upper-cased
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t offset = 0;    // byte offset in the input, for error messages

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsOperator(std::string_view op) const {
    return type == TokenType::kOperator && text == op;
  }
};

}  // namespace llmdm::sql

#endif  // LLMDM_SQL_TOKEN_H_
