#include "sql/parser.h"

#include "common/string_util.h"
#include "data/csv.h"
#include "sql/lexer.h"

namespace llmdm::sql {
namespace {

bool IsAggregateName(const std::string& upper) {
  return upper == "COUNT" || upper == "SUM" || upper == "AVG" ||
         upper == "MIN" || upper == "MAX";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  common::Result<Statement> ParseSingleStatement() {
    LLMDM_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInternal());
    ConsumeIf(TokenType::kSemicolon);
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing tokens");
    }
    return stmt;
  }

  common::Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> out;
    for (;;) {
      while (ConsumeIf(TokenType::kSemicolon)) {
      }
      if (Peek().type == TokenType::kEnd) break;
      LLMDM_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInternal());
      out.push_back(std::move(stmt));
      if (Peek().type != TokenType::kEnd &&
          !ConsumeIf(TokenType::kSemicolon)) {
        return Error("expected ';' between statements");
      }
    }
    return out;
  }

  common::Result<std::unique_ptr<SelectStmt>> ParseSelectOnly() {
    LLMDM_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelectStmt());
    ConsumeIf(TokenType::kSemicolon);
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing tokens");
    }
    return sel;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool ConsumeIf(TokenType type) {
    if (Peek().type == type) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  common::Status ExpectKeyword(std::string_view kw) {
    if (!ConsumeKeyword(kw)) {
      return Error(common::StrFormat("expected %s", std::string(kw).c_str()));
    }
    return common::Status::Ok();
  }
  common::Status Expect(TokenType type, const char* what) {
    if (!ConsumeIf(type)) {
      return Error(common::StrFormat("expected %s", what));
    }
    return common::Status::Ok();
  }

  common::Status Error(const std::string& what) const {
    return common::Status::InvalidArgument(common::StrFormat(
        "SQL parse error near offset %zu (token '%s'): %s", Peek().offset,
        Peek().text.c_str(), what.c_str()));
  }

  // ---- statements ----

  common::Result<Statement> ParseStatementInternal() {
    Statement stmt;
    const Token& t = Peek();
    if (t.IsKeyword("SELECT")) {
      stmt.kind = StatementKind::kSelect;
      LLMDM_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
      return stmt;
    }
    if (t.IsKeyword("CREATE")) {
      stmt.kind = StatementKind::kCreateTable;
      LLMDM_ASSIGN_OR_RETURN(stmt.create_table, ParseCreateTable());
      return stmt;
    }
    if (t.IsKeyword("DROP")) {
      stmt.kind = StatementKind::kDropTable;
      LLMDM_ASSIGN_OR_RETURN(stmt.drop_table, ParseDropTable());
      return stmt;
    }
    if (t.IsKeyword("INSERT")) {
      stmt.kind = StatementKind::kInsert;
      LLMDM_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
      return stmt;
    }
    if (t.IsKeyword("UPDATE")) {
      stmt.kind = StatementKind::kUpdate;
      LLMDM_ASSIGN_OR_RETURN(stmt.update, ParseUpdate());
      return stmt;
    }
    if (t.IsKeyword("DELETE")) {
      stmt.kind = StatementKind::kDelete;
      LLMDM_ASSIGN_OR_RETURN(stmt.del, ParseDelete());
      return stmt;
    }
    if (t.IsKeyword("BEGIN")) {
      Advance();
      ConsumeKeyword("TRANSACTION");
      stmt.kind = StatementKind::kBegin;
      return stmt;
    }
    if (t.IsKeyword("COMMIT")) {
      Advance();
      stmt.kind = StatementKind::kCommit;
      return stmt;
    }
    if (t.IsKeyword("ROLLBACK")) {
      Advance();
      stmt.kind = StatementKind::kRollback;
      return stmt;
    }
    return Error("expected a statement");
  }

  common::Result<std::string> ParseIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected identifier");
    }
    return Advance().text;
  }

  common::Result<std::unique_ptr<CreateTableStmt>> ParseCreateTable() {
    LLMDM_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    LLMDM_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<CreateTableStmt>();
    LLMDM_ASSIGN_OR_RETURN(stmt->table_name, ParseIdentifier());
    LLMDM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    for (;;) {
      data::Column col;
      LLMDM_ASSIGN_OR_RETURN(col.name, ParseIdentifier());
      const Token& type_tok = Peek();
      if (type_tok.type != TokenType::kKeyword &&
          type_tok.type != TokenType::kIdentifier) {
        return Error("expected column type");
      }
      std::string type_name = common::ToUpper(Advance().text);
      if (type_name == "INT" || type_name == "INTEGER") {
        col.type = data::ColumnType::kInt64;
      } else if (type_name == "DOUBLE" || type_name == "REAL" ||
                 type_name == "FLOAT") {
        col.type = data::ColumnType::kDouble;
      } else if (type_name == "TEXT" || type_name == "VARCHAR") {
        col.type = data::ColumnType::kText;
        // Optional VARCHAR(n); length is ignored.
        if (ConsumeIf(TokenType::kLParen)) {
          if (Peek().type == TokenType::kInteger) Advance();
          LLMDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        }
      } else if (type_name == "BOOL" || type_name == "BOOLEAN") {
        col.type = data::ColumnType::kBool;
      } else if (type_name == "DATE") {
        col.type = data::ColumnType::kDate;
      } else {
        return Error("unknown column type " + type_name);
      }
      // Optional column constraints we accept: NOT NULL, PRIMARY KEY.
      for (;;) {
        if (ConsumeKeyword("NOT")) {
          LLMDM_RETURN_IF_ERROR(ExpectKeyword("NULL"));
          col.nullable = false;
        } else if (ConsumeKeyword("PRIMARY")) {
          LLMDM_RETURN_IF_ERROR(ExpectKeyword("KEY"));
          col.nullable = false;
        } else {
          break;
        }
      }
      stmt->columns.push_back(std::move(col));
      if (ConsumeIf(TokenType::kComma)) continue;
      LLMDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      break;
    }
    return stmt;
  }

  common::Result<std::unique_ptr<DropTableStmt>> ParseDropTable() {
    LLMDM_RETURN_IF_ERROR(ExpectKeyword("DROP"));
    LLMDM_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<DropTableStmt>();
    if (ConsumeKeyword("IF")) {
      LLMDM_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt->if_exists = true;
    }
    LLMDM_ASSIGN_OR_RETURN(stmt->table_name, ParseIdentifier());
    return stmt;
  }

  common::Result<std::unique_ptr<InsertStmt>> ParseInsert() {
    LLMDM_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    LLMDM_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    auto stmt = std::make_unique<InsertStmt>();
    LLMDM_ASSIGN_OR_RETURN(stmt->table_name, ParseIdentifier());
    if (ConsumeIf(TokenType::kLParen)) {
      for (;;) {
        LLMDM_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
        stmt->columns.push_back(std::move(col));
        if (ConsumeIf(TokenType::kComma)) continue;
        LLMDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        break;
      }
    }
    if (Peek().IsKeyword("SELECT")) {
      LLMDM_ASSIGN_OR_RETURN(stmt->select, ParseSelectStmt());
      return stmt;
    }
    LLMDM_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    for (;;) {
      LLMDM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      std::vector<ExprPtr> row;
      for (;;) {
        LLMDM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (ConsumeIf(TokenType::kComma)) continue;
        LLMDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        break;
      }
      stmt->rows.push_back(std::move(row));
      if (!ConsumeIf(TokenType::kComma)) break;
    }
    return stmt;
  }

  common::Result<std::unique_ptr<UpdateStmt>> ParseUpdate() {
    LLMDM_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    auto stmt = std::make_unique<UpdateStmt>();
    LLMDM_ASSIGN_OR_RETURN(stmt->table_name, ParseIdentifier());
    LLMDM_RETURN_IF_ERROR(ExpectKeyword("SET"));
    for (;;) {
      LLMDM_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
      if (!Peek().IsOperator("=")) return Error("expected '='");
      Advance();
      LLMDM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->assignments.emplace_back(std::move(col), std::move(e));
      if (!ConsumeIf(TokenType::kComma)) break;
    }
    if (ConsumeKeyword("WHERE")) {
      LLMDM_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  common::Result<std::unique_ptr<DeleteStmt>> ParseDelete() {
    LLMDM_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    LLMDM_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto stmt = std::make_unique<DeleteStmt>();
    LLMDM_ASSIGN_OR_RETURN(stmt->table_name, ParseIdentifier());
    if (ConsumeKeyword("WHERE")) {
      LLMDM_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  // ---- SELECT ----

  common::Result<std::unique_ptr<SelectStmt>> ParseSelectStmt() {
    LLMDM_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> lhs, ParseSelectCore());
    // Set operations are left-associative.
    for (;;) {
      SetOp op = SetOp::kNone;
      if (ConsumeKeyword("UNION")) {
        op = ConsumeKeyword("ALL") ? SetOp::kUnionAll : SetOp::kUnion;
      } else if (ConsumeKeyword("INTERSECT")) {
        op = SetOp::kIntersect;
      } else if (ConsumeKeyword("EXCEPT")) {
        op = SetOp::kExcept;
      } else {
        break;
      }
      LLMDM_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> rhs, ParseSelectCore());
      auto combined = std::make_unique<SelectStmt>();
      // Represent the chain by nesting on the left select's set_rhs.
      combined = std::move(lhs);
      // Walk to the tail of any existing chain.
      SelectStmt* tail = combined.get();
      while (tail->set_rhs) tail = tail->set_rhs.get();
      tail->set_op = op;
      tail->set_rhs = std::move(rhs);
      lhs = std::move(combined);
    }
    return lhs;
  }

  common::Result<std::unique_ptr<SelectStmt>> ParseSelectCore() {
    // A parenthesized SELECT is allowed as a set-op operand.
    if (Peek().type == TokenType::kLParen && Peek(1).IsKeyword("SELECT")) {
      Advance();
      LLMDM_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> inner,
                             ParseSelectStmt());
      LLMDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    LLMDM_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto sel = std::make_unique<SelectStmt>();
    if (ConsumeKeyword("DISTINCT")) sel->distinct = true;
    ConsumeKeyword("ALL");
    // Select list.
    for (;;) {
      SelectItem item;
      if (Peek().IsOperator("*")) {
        Advance();
        item.expr = MakeStar();
      } else {
        LLMDM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("AS")) {
          LLMDM_ASSIGN_OR_RETURN(item.alias, ParseIdentifier());
        } else if (Peek().type == TokenType::kIdentifier) {
          item.alias = Advance().text;
        }
      }
      sel->items.push_back(std::move(item));
      if (!ConsumeIf(TokenType::kComma)) break;
    }
    if (ConsumeKeyword("FROM")) {
      for (;;) {
        LLMDM_ASSIGN_OR_RETURN(TableRefPtr ref, ParseTableRef());
        sel->from.push_back(std::move(ref));
        if (!ConsumeIf(TokenType::kComma)) break;
      }
    }
    if (ConsumeKeyword("WHERE")) {
      LLMDM_ASSIGN_OR_RETURN(sel->where, ParseExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      LLMDM_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        LLMDM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        sel->group_by.push_back(std::move(e));
        if (!ConsumeIf(TokenType::kComma)) break;
      }
    }
    if (ConsumeKeyword("HAVING")) {
      LLMDM_ASSIGN_OR_RETURN(sel->having, ParseExpr());
    }
    if (ConsumeKeyword("ORDER")) {
      LLMDM_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        OrderItem item;
        LLMDM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) {
          item.descending = true;
        } else {
          ConsumeKeyword("ASC");
        }
        sel->order_by.push_back(std::move(item));
        if (!ConsumeIf(TokenType::kComma)) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) {
        return Error("expected integer after LIMIT");
      }
      sel->limit = Advance().int_value;
    }
    return sel;
  }

  common::Result<TableRefPtr> ParseTableRef() {
    LLMDM_ASSIGN_OR_RETURN(TableRefPtr left, ParseTableFactor());
    for (;;) {
      JoinType jt;
      bool has_on = true;
      if (ConsumeKeyword("JOIN")) {
        jt = JoinType::kInner;
      } else if (Peek().IsKeyword("INNER") && Peek(1).IsKeyword("JOIN")) {
        Advance();
        Advance();
        jt = JoinType::kInner;
      } else if (Peek().IsKeyword("LEFT")) {
        Advance();
        ConsumeKeyword("OUTER");
        LLMDM_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = JoinType::kLeft;
      } else if (Peek().IsKeyword("CROSS") && Peek(1).IsKeyword("JOIN")) {
        Advance();
        Advance();
        jt = JoinType::kCross;
        has_on = false;
      } else {
        break;
      }
      LLMDM_ASSIGN_OR_RETURN(TableRefPtr right, ParseTableFactor());
      auto join = std::make_unique<TableRef>();
      join->kind = TableRef::Kind::kJoin;
      join->join_type = jt;
      join->left = std::move(left);
      join->right = std::move(right);
      if (has_on) {
        LLMDM_RETURN_IF_ERROR(ExpectKeyword("ON"));
        LLMDM_ASSIGN_OR_RETURN(join->on, ParseExpr());
      }
      left = std::move(join);
    }
    return left;
  }

  common::Result<TableRefPtr> ParseTableFactor() {
    auto ref = std::make_unique<TableRef>();
    if (ConsumeIf(TokenType::kLParen)) {
      ref->kind = TableRef::Kind::kSubquery;
      LLMDM_ASSIGN_OR_RETURN(ref->subquery, ParseSelectStmt());
      LLMDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    } else {
      ref->kind = TableRef::Kind::kBase;
      LLMDM_ASSIGN_OR_RETURN(ref->table_name, ParseIdentifier());
    }
    if (ConsumeKeyword("AS")) {
      LLMDM_ASSIGN_OR_RETURN(ref->alias, ParseIdentifier());
    } else if (Peek().type == TokenType::kIdentifier) {
      ref->alias = Advance().text;
    }
    return ref;
  }

  // ---- expressions (precedence climbing) ----

  common::Result<ExprPtr> ParseExpr() { return ParseOr(); }

  common::Result<ExprPtr> ParseOr() {
    LLMDM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeKeyword("OR")) {
      LLMDM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary("OR", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  common::Result<ExprPtr> ParseAnd() {
    LLMDM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (ConsumeKeyword("AND")) {
      LLMDM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary("AND", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  common::Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      LLMDM_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary("NOT", std::move(operand));
    }
    return ParseComparison();
  }

  common::Result<ExprPtr> ParseComparison() {
    LLMDM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    for (;;) {
      const Token& t = Peek();
      if (t.type == TokenType::kOperator &&
          (t.text == "=" || t.text == "<>" || t.text == "<" ||
           t.text == "<=" || t.text == ">" || t.text == ">=")) {
        std::string op = Advance().text;
        LLMDM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        lhs = MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
        continue;
      }
      bool negated = false;
      size_t save = pos_;
      if (ConsumeKeyword("NOT")) {
        negated = true;
        if (!Peek().IsKeyword("IN") && !Peek().IsKeyword("LIKE") &&
            !Peek().IsKeyword("BETWEEN")) {
          pos_ = save;  // NOT belongs to an enclosing context
          break;
        }
      }
      if (ConsumeKeyword("IS")) {
        bool is_not = ConsumeKeyword("NOT");
        LLMDM_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIsNull;
        e->negated = is_not;
        e->args.push_back(std::move(lhs));
        lhs = std::move(e);
        continue;
      }
      if (ConsumeKeyword("LIKE")) {
        LLMDM_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kLike;
        e->negated = negated;
        e->args.push_back(std::move(lhs));
        e->args.push_back(std::move(pattern));
        lhs = std::move(e);
        continue;
      }
      if (ConsumeKeyword("BETWEEN")) {
        LLMDM_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
        LLMDM_RETURN_IF_ERROR(ExpectKeyword("AND"));
        LLMDM_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kBetween;
        e->negated = negated;
        e->args.push_back(std::move(lhs));
        e->args.push_back(std::move(lo));
        e->args.push_back(std::move(hi));
        lhs = std::move(e);
        continue;
      }
      if (ConsumeKeyword("IN")) {
        LLMDM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
        if (Peek().IsKeyword("SELECT")) {
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kInSubquery;
          e->negated = negated;
          e->args.push_back(std::move(lhs));
          LLMDM_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
          LLMDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          lhs = std::move(e);
        } else {
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kInList;
          e->negated = negated;
          e->args.push_back(std::move(lhs));
          for (;;) {
            LLMDM_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
            e->args.push_back(std::move(item));
            if (!ConsumeIf(TokenType::kComma)) break;
          }
          LLMDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          lhs = std::move(e);
        }
        continue;
      }
      if (negated) {
        pos_ = save;
      }
      break;
    }
    return lhs;
  }

  common::Result<ExprPtr> ParseAdditive() {
    LLMDM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      if (Peek().IsOperator("+") || Peek().IsOperator("-")) {
        std::string op = Advance().text;
        LLMDM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
      } else {
        break;
      }
    }
    return lhs;
  }

  common::Result<ExprPtr> ParseMultiplicative() {
    LLMDM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      if (Peek().IsOperator("*") || Peek().IsOperator("/") ||
          Peek().IsOperator("%")) {
        std::string op = Advance().text;
        LLMDM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
      } else {
        break;
      }
    }
    return lhs;
  }

  common::Result<ExprPtr> ParseUnary() {
    if (Peek().IsOperator("-")) {
      Advance();
      LLMDM_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeUnary("-", std::move(operand));
    }
    if (Peek().IsOperator("+")) {
      Advance();
      return ParseUnary();
    }
    return ParsePrimary();
  }

  common::Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger:
        Advance();
        return MakeLiteral(data::Value::Int(t.int_value));
      case TokenType::kFloat:
        Advance();
        return MakeLiteral(data::Value::Real(t.float_value));
      case TokenType::kString:
        Advance();
        return MakeLiteral(data::Value::Text(t.text));
      case TokenType::kLParen: {
        Advance();
        if (Peek().IsKeyword("SELECT")) {
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kScalarSubquery;
          LLMDM_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
          LLMDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          return e;
        }
        LLMDM_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        LLMDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return inner;
      }
      case TokenType::kKeyword: {
        if (t.text == "NULL") {
          Advance();
          return MakeLiteral(data::Value::Null());
        }
        if (t.text == "TRUE") {
          Advance();
          return MakeLiteral(data::Value::Bool(true));
        }
        if (t.text == "FALSE") {
          Advance();
          return MakeLiteral(data::Value::Bool(false));
        }
        if (t.text == "DATE" && Peek(1).type == TokenType::kString) {
          Advance();
          const Token& lit = Advance();
          data::Date d;
          if (!data::ParseIsoDate(lit.text, &d)) {
            return Error("bad DATE literal " + lit.text);
          }
          return MakeLiteral(data::Value::MakeDate(d));
        }
        if (t.text == "CASE") {
          return ParseCase();
        }
        if (t.text == "EXISTS") {
          Advance();
          LLMDM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kExists;
          LLMDM_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
          LLMDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          return e;
        }
        if (IsAggregateName(t.text)) {
          std::string agg = Advance().text;
          LLMDM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
          bool distinct = ConsumeKeyword("DISTINCT");
          ExprPtr arg;
          if (Peek().IsOperator("*")) {
            Advance();
            arg = MakeStar();
          } else {
            LLMDM_ASSIGN_OR_RETURN(arg, ParseExpr());
          }
          LLMDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          return MakeAggregate(std::move(agg), std::move(arg), distinct);
        }
        return Error("unexpected keyword " + t.text);
      }
      case TokenType::kIdentifier: {
        std::string first = Advance().text;
        // Function call?
        if (Peek().type == TokenType::kLParen) {
          Advance();
          std::vector<ExprPtr> args;
          if (Peek().type != TokenType::kRParen) {
            for (;;) {
              LLMDM_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
              args.push_back(std::move(a));
              if (!ConsumeIf(TokenType::kComma)) break;
            }
          }
          LLMDM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          return MakeFunction(common::ToUpper(first), std::move(args));
        }
        // Qualified column?
        if (ConsumeIf(TokenType::kDot)) {
          if (Peek().IsOperator("*")) {
            Advance();
            auto e = MakeStar();
            e->qualifier = first;
            return e;
          }
          LLMDM_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
          return MakeColumnRef(std::move(first), std::move(col));
        }
        return MakeColumnRef("", std::move(first));
      }
      default:
        return Error("unexpected token in expression");
    }
  }

  common::Result<ExprPtr> ParseCase() {
    LLMDM_RETURN_IF_ERROR(ExpectKeyword("CASE"));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCase;
    bool saw_when = false;
    while (ConsumeKeyword("WHEN")) {
      saw_when = true;
      LLMDM_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      LLMDM_RETURN_IF_ERROR(ExpectKeyword("THEN"));
      LLMDM_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
      e->args.push_back(std::move(cond));
      e->args.push_back(std::move(then));
    }
    if (!saw_when) return Error("CASE requires at least one WHEN");
    if (ConsumeKeyword("ELSE")) {
      LLMDM_ASSIGN_OR_RETURN(ExprPtr otherwise, ParseExpr());
      e->args.push_back(std::move(otherwise));
      e->has_else = true;
    }
    LLMDM_RETURN_IF_ERROR(ExpectKeyword("END"));
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

common::Result<Statement> ParseStatement(std::string_view sql) {
  LLMDM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  return Parser(std::move(tokens)).ParseSingleStatement();
}

common::Result<std::vector<Statement>> ParseScript(std::string_view sql) {
  LLMDM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  return Parser(std::move(tokens)).ParseAll();
}

common::Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view sql) {
  LLMDM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  return Parser(std::move(tokens)).ParseSelectOnly();
}

}  // namespace llmdm::sql
