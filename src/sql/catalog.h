#ifndef LLMDM_SQL_CATALOG_H_
#define LLMDM_SQL_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"

namespace llmdm::sql {

/// Table namespace for one database. Names are case-insensitive. The whole
/// catalog is value-copyable, which is what the transaction layer relies on
/// for snapshots (tables at the scale of this library are small; a
/// copy-on-begin model keeps rollback trivially correct).
class Catalog {
 public:
  Catalog() = default;

  common::Status CreateTable(const std::string& name, data::Schema schema);
  common::Status DropTable(const std::string& name, bool if_exists);

  bool HasTable(const std::string& name) const;
  common::Result<const data::Table*> GetTable(const std::string& name) const;
  common::Result<data::Table*> GetMutableTable(const std::string& name);

  /// Registers a fully-built table (used by generators and transformers that
  /// construct tables outside of SQL DDL). Overwrites any existing table with
  /// the same name.
  void PutTable(data::Table table);

  std::vector<std::string> TableNames() const;
  size_t NumTables() const { return tables_.size(); }

  /// Human-readable schema dump used to build LLM prompts ("the table
  /// information" input of Fig. 2).
  std::string DescribeForPrompt() const;

 private:
  // key = lower-cased name; Table keeps the original spelling.
  std::map<std::string, data::Table> tables_;
};

}  // namespace llmdm::sql

#endif  // LLMDM_SQL_CATALOG_H_
