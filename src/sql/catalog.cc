#include "sql/catalog.h"

#include "common/string_util.h"

namespace llmdm::sql {

common::Status Catalog::CreateTable(const std::string& name,
                                    data::Schema schema) {
  std::string key = common::ToLower(name);
  if (tables_.count(key)) {
    return common::Status::AlreadyExists("table already exists: " + name);
  }
  tables_.emplace(key, data::Table(name, std::move(schema)));
  return common::Status::Ok();
}

common::Status Catalog::DropTable(const std::string& name, bool if_exists) {
  std::string key = common::ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    if (if_exists) return common::Status::Ok();
    return common::Status::NotFound("no such table: " + name);
  }
  tables_.erase(it);
  return common::Status::Ok();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(common::ToLower(name)) > 0;
}

common::Result<const data::Table*> Catalog::GetTable(
    const std::string& name) const {
  auto it = tables_.find(common::ToLower(name));
  if (it == tables_.end()) {
    return common::Status::NotFound("no such table: " + name);
  }
  return &it->second;
}

common::Result<data::Table*> Catalog::GetMutableTable(
    const std::string& name) {
  auto it = tables_.find(common::ToLower(name));
  if (it == tables_.end()) {
    return common::Status::NotFound("no such table: " + name);
  }
  return &it->second;
}

void Catalog::PutTable(data::Table table) {
  std::string key = common::ToLower(table.name());
  tables_.insert_or_assign(key, std::move(table));
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) out.push_back(table.name());
  return out;
}

std::string Catalog::DescribeForPrompt() const {
  std::string out;
  for (const auto& [key, table] : tables_) {
    out += "Table " + table.name() + "(" + table.schema().ToString() + ")";
    out += common::StrFormat(" -- %zu rows\n", table.NumRows());
  }
  return out;
}

}  // namespace llmdm::sql
