#ifndef LLMDM_SQL_DATABASE_H_
#define LLMDM_SQL_DATABASE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/catalog.h"
#include "sql/executor.h"

namespace llmdm::sql {

/// Top-level SQL facade: parse + execute text, with BEGIN/COMMIT/ROLLBACK
/// transactions (snapshot-based: BEGIN copies the catalog; ROLLBACK restores
/// it; a failed statement inside a transaction aborts the transaction, which
/// is the behaviour NL2Transaction relies on for atomicity).
class Database {
 public:
  Database() = default;

  // A Database owns its catalog; copying would silently fork the data.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Parses and executes one statement.
  common::Result<ExecResult> Execute(std::string_view sql);

  /// Parses and executes a semicolon-separated script; returns the result of
  /// the last row-returning statement (if any). Stops at the first error.
  common::Result<ExecResult> ExecuteScript(std::string_view sql);

  /// Runs `statements` atomically: BEGIN, each statement, COMMIT; any error
  /// rolls back and returns that error. Counts total affected rows.
  common::Result<int64_t> ExecuteAtomically(
      const std::vector<std::string>& statements);

  /// Executes a SELECT and returns the result table.
  common::Result<data::Table> Query(std::string_view sql);

  bool in_transaction() const { return snapshot_.has_value(); }

 private:
  common::Result<ExecResult> ExecuteParsed(const Statement& stmt);

  Catalog catalog_;
  std::optional<Catalog> snapshot_;
};

}  // namespace llmdm::sql

#endif  // LLMDM_SQL_DATABASE_H_
