// llmdm_server — the network front door as a deployable binary.
//
// Stands up the simulated model ladder behind a serve::Server (bounded
// admission, shedding, optional hedging/QoS) and serves the llmdm wire
// protocol on a TCP port via net::NetServer. SIGINT/SIGTERM triggers a
// graceful drain: stop accepting, refuse new requests with kUnavailable
// error frames, flush every in-flight response, then exit — bounded by
// --drain-deadline-ms of wall time.
//
//   ./build/tools/llmdm_server --port=7421 --workers=8 --queue-depth=64
//
// Talk to it with net::Client (see examples/net_client.cc) or the loadgen
// (bench_net_loadgen --port=...).
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "llm/simulated.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true); }

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = strlen(name);
  if (strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace llmdm;

  uint16_t port = 7421;
  size_t workers = 8;
  size_t queue_depth = 64;
  std::string shed_policy = "queue";
  double drain_deadline_ms = 10000.0;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--port", &value)) {
      port = static_cast<uint16_t>(atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      workers = static_cast<size_t>(atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--queue-depth", &value)) {
      queue_depth = static_cast<size_t>(atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--shed-policy", &value)) {
      shed_policy = value;  // none | queue | deadline
    } else if (ParseFlag(argv[i], "--drain-deadline-ms", &value)) {
      drain_deadline_ms = atof(value.c_str());
    } else if (ParseFlag(argv[i], "--metrics-out", &value)) {
      metrics_out = value;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--workers=N] [--queue-depth=N] "
                   "[--shed-policy=none|queue|deadline] "
                   "[--drain-deadline-ms=MS] [--metrics-out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  // One registry aggregates both layers: llmdm_serve_* (admission, QoS,
  // latency) and llmdm_net_* (transport) series side by side.
  obs::Registry registry;
  auto models = llm::CreatePaperModelLadder(nullptr, 2024);

  serve::Server::Options serve_options;
  serve_options.worker_threads = workers;
  serve_options.virtual_concurrency = workers;
  serve_options.queue_depth = queue_depth;
  serve_options.shed_policy = shed_policy == "none"
                                  ? serve::ShedPolicy::kNone
                                  : (shed_policy == "deadline"
                                         ? serve::ShedPolicy::kDeadlineAware
                                         : serve::ShedPolicy::kQueueFull);
  serve_options.registry = &registry;
  // Long-running: responses leave through the network sink; retaining them
  // all for Drain() would grow without bound.
  serve_options.retain_responses = false;
  serve::Server backend(models[2], serve_options);

  net::NetServer::Options net_options;
  net_options.port = port;
  net_options.drain_deadline_ms = drain_deadline_ms;
  net_options.registry = &registry;
  net::NetServer server(&backend, net_options);
  common::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "llmdm_server: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "llmdm_server: listening on %u (workers=%zu, depth=%zu, shed=%s)\n",
               server.port(), workers, queue_depth, shed_policy.c_str());

  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  while (!g_shutdown.load()) {
    usleep(100 * 1000);
  }

  std::fprintf(stderr, "llmdm_server: draining...\n");
  server.Shutdown();
  (void)backend.Drain();

  net::NetStats net_stats = server.stats();
  serve::ServerStats serve_stats = backend.stats();
  std::fprintf(stderr,
               "llmdm_server: done. conns=%llu requests=%llu responses=%llu "
               "shed=%llu chunks=%llu forced_closes=%llu | submitted=%zu "
               "completed=%zu failed=%zu\n",
               static_cast<unsigned long long>(net_stats.connections_accepted),
               static_cast<unsigned long long>(net_stats.requests_rx),
               static_cast<unsigned long long>(net_stats.responses_tx),
               static_cast<unsigned long long>(net_stats.shed_tx),
               static_cast<unsigned long long>(net_stats.chunks_tx),
               static_cast<unsigned long long>(net_stats.drain_forced_closes),
               serve_stats.submitted, serve_stats.completed,
               serve_stats.failed);
  if (!metrics_out.empty()) {
    std::string prom = registry.PrometheusText();
    FILE* f = fopen(metrics_out.c_str(), "w");
    if (f != nullptr) {
      fwrite(prom.data(), 1, prom.size(), f);
      fclose(f);
    }
  }
  return 0;
}
