// NL2SQL assistant: the paper's Sec. III-B scenario end-to-end. A "proxy"
// receives a batch of similar natural-language questions (the running Q1-Q5
// stadium example), plans decomposition + combination to minimize LLM spend,
// executes the translated SQL, and prints the answers — with a cost
// comparison against naive one-call-per-question operation.
#include <cstdio>

#include "core/optimize/decomposition.h"
#include "data/nl2sql_workload.h"
#include "llm/simulated.h"
#include "sql/database.h"

int main() {
  using namespace llmdm;
  common::Rng rng(99);
  sql::Database db;
  if (!db.ExecuteScript(
             data::BuildStadiumDatabaseScript(10, {2014, 2015}, rng))
           .ok()) {
    return 1;
  }
  auto models = llm::CreatePaperModelLadder(nullptr, 1234);

  // The paper's exact Q1-Q5.
  std::vector<std::string> questions;
  for (const auto& q : data::PaperQ1ToQ5()) {
    questions.push_back(q.ToNaturalLanguage());
  }
  std::printf("incoming batch:\n");
  for (size_t i = 0; i < questions.size(); ++i) {
    std::printf("  Q%zu: %s\n", i + 1, questions[i].c_str());
  }

  optimize::QueryBatchOptimizer::Options options;
  options.enable_decomposition = true;
  options.enable_combination = true;
  optimize::QueryBatchOptimizer optimizer(options);
  auto plan = optimizer.Plan(questions);
  std::printf("\nplanned %zu unique LLM units for %zu questions:\n",
              plan.unique_units.size(), questions.size());
  for (const auto& unit : plan.unique_units) {
    std::printf("  - %s\n", unit.c_str());
  }

  llm::UsageMeter meter;
  auto exec = optimizer.Execute(plan, *models[2], &meter);
  if (!exec.ok()) return 1;

  std::printf("\nanswers:\n");
  for (size_t i = 0; i < questions.size(); ++i) {
    auto result = db.Query(exec->sql[i]);
    std::printf("  Q%zu -> ", i + 1);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    for (size_t r = 0; r < result->NumRows(); ++r) {
      std::printf("%s%s", r ? ", " : "", result->at(r, 0).ToString().c_str());
    }
    if (result->NumRows() == 0) std::printf("(none)");
    std::printf("\n");
  }

  // Cost comparison against the naive plan.
  optimize::QueryBatchOptimizer::Options naive_options;
  naive_options.enable_decomposition = false;
  optimize::QueryBatchOptimizer naive(naive_options);
  llm::UsageMeter naive_meter;
  naive.Execute(naive.Plan(questions), *models[2], &naive_meter).ok();
  std::printf("\ncost: optimized %s vs naive %s (%zu vs %zu LLM calls)\n",
              meter.cost().ToString(4).c_str(),
              naive_meter.cost().ToString(4).c_str(), meter.calls(),
              naive_meter.calls());
  return 0;
}
