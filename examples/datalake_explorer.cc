// Data-lake explorer: Sec. II-D end-to-end. Ingests text notes, table rows
// and image descriptors into one embedding space, answers semantic queries
// with attribute filtering (including the paper's "Prof. Michael Jordan"
// disambiguation), and runs SQL against an LLM treated as a database.
#include <cstdio>

#include "core/exploration/datalake.h"
#include "core/exploration/llm_as_db.h"
#include "data/qa_workload.h"
#include "data/tabular_gen.h"
#include "llm/simulated.h"

int main() {
  using namespace llmdm;
  common::Rng rng(808);

  // --- multi-modal lake -----------------------------------------------------
  exploration::MultiModalDataLake lake;
  exploration::LakeItem article;
  article.modality = exploration::Modality::kText;
  article.title = "sports column";
  article.content =
      "Michael Jordan, the greatest basketball player of all time, found the "
      "secret to success.";
  article.attributes["entity_type"] = data::Value::Text("athlete");
  lake.Ingest(std::move(article)).ok();

  data::Table faculty(
      "faculty", data::Schema({{"name", data::ColumnType::kText, true},
                               {"department", data::ColumnType::kText, true},
                               {"university", data::ColumnType::kText, true}}));
  faculty.AppendRowUnchecked({data::Value::Text("Michael Jordan"),
                              data::Value::Text("Statistics"),
                              data::Value::Text("Berkeley")});
  faculty.AppendRowUnchecked({data::Value::Text("Grace Hopper"),
                              data::Value::Text("Computer Science"),
                              data::Value::Text("Yale")});
  lake.IngestTable(faculty, "professor").ok();

  exploration::LakeItem xray;
  xray.modality = exploration::Modality::kImage;
  xray.title = "stadium aerial";
  xray.content = "aerial image of a packed stadium during a basketball final";
  xray.attributes["entity_type"] = data::Value::Text("venue");
  lake.Ingest(std::move(xray)).ok();

  std::printf("lake holds %zu items across text/table/image modalities\n\n",
              lake.Size());

  std::string query = "Could Prof. Michael Jordan play basketball";
  std::printf("query: %s\n", query.c_str());
  std::printf("plain vector search:\n");
  for (const auto& hit : lake.Query(query, 2)) {
    std::printf("  %.3f [%s] %s\n", hit.score,
                std::string(exploration::ModalityName(hit.modality)).c_str(),
                hit.title.c_str());
  }
  std::printf("with entity_type = professor filter:\n");
  for (const auto& hit : lake.QueryFiltered(
           query, 2, std::nullopt,
           {{"entity_type", data::Value::Text("professor")}})) {
    std::printf("  %.3f [%s] %s -- %s\n", hit.score,
                std::string(exploration::ModalityName(hit.modality)).c_str(),
                hit.title.c_str(), hit.snippet.c_str());
  }

  // --- LLM as a database -----------------------------------------------------
  std::printf("\nSQL over an LLM-backed virtual table kb_facts:\n");
  data::KnowledgeBase kb = data::KnowledgeBase::Generate(30, rng);
  auto models = llm::CreatePaperModelLadder(&kb, 606);
  exploration::LlmBackedDatabase backed(models[2], kb.relations());
  sql::Database scratch;
  std::string subject = kb.entities()[0];
  std::string sql = "SELECT relation, object FROM kb_facts WHERE subject = '" +
                    subject + "' ORDER BY relation";
  std::printf("  %s\n", sql.c_str());
  llm::UsageMeter meter;
  exploration::LlmBackedDatabase::QueryStats stats;
  auto result = backed.Query(sql, scratch, &meter, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", result->ToString().c_str());
  std::printf("(%zu facts extracted with %zu LLM calls, cost %s)\n",
              stats.facts_extracted, stats.llm_calls,
              meter.cost().ToString(4).c_str());
  return 0;
}
