// Quickstart: the three core moves of llmdm in ~60 lines.
//  1. stand up a SQL database and a simulated LLM;
//  2. translate natural language to SQL, validate, execute;
//  3. wrap the model with a semantic cache and watch the second call be free.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/example_quickstart
#include <cstdio>

#include "core/optimize/semantic_cache.h"
#include "core/transform/nl2sql.h"
#include "core/validate/validators.h"
#include "data/nl2sql_workload.h"
#include "llm/simulated.h"
#include "sql/database.h"

int main() {
  using namespace llmdm;

  // 1. A relational database (the paper's stadium/concert schema) and the
  //    simulated model ladder (priced like babbage / gpt-3.5 / gpt-4).
  common::Rng rng(7);
  sql::Database db;
  auto status = db.ExecuteScript(
      data::BuildStadiumDatabaseScript(10, {2014, 2015}, rng));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.status().ToString().c_str());
    return 1;
  }
  auto models = llm::CreatePaperModelLadder(nullptr, 2024);
  std::shared_ptr<llm::LlmModel> gpt4 = models[2];

  // 2. NL -> SQL -> validate -> execute.
  transform::Nl2SqlEngine engine(gpt4, nullptr,
                                 transform::Nl2SqlEngine::Options{});
  llm::UsageMeter meter;
  std::string question =
      "What are the names of stadiums that had concerts in 2014 but did not "
      "have sports meetings in 2015?";
  auto translated = engine.Translate(question, db, &meter);
  if (!translated.ok()) {
    std::fprintf(stderr, "%s\n", translated.status().ToString().c_str());
    return 1;
  }
  std::printf("Q: %s\nSQL: %s\n", question.c_str(), translated->sql.c_str());
  auto verdict = validate::SqlValidator::ValidateExecutes(translated->sql, db);
  std::printf("validation: %s (%s)\n", verdict.accepted ? "ok" : "REJECTED",
              verdict.reason.c_str());
  if (translated->executed) {
    std::printf("%s", translated->result.ToString().c_str());
  }
  std::printf("spent so far: %s\n\n", meter.ToString().c_str());

  // 3. Semantic caching: a repeated (or near-identical) question is served
  //    from the cache at zero cost.
  optimize::SemanticCache::Options cache_options;
  cache_options.similarity_threshold = 0.99;
  optimize::SemanticCache cache(cache_options);
  optimize::CachedLlm cached(gpt4, &cache);
  llm::Prompt prompt = llm::MakePrompt("nl2sql", question);
  auto first = cached.Complete(prompt);
  auto second = cached.Complete(prompt);
  std::printf("first call cost: %s; second call cost: %s (cache hits: %zu)\n",
              first->cost.ToString(4).c_str(), second->cost.ToString(4).c_str(),
              cached.cache_hits());
  return 0;
}
