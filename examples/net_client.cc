// Network quickstart: drive the wire protocol over loopback with
// net::Client — the three moves a remote caller makes.
//  1. stand up a serve::Server behind net::NetServer on an ephemeral port;
//  2. stream a completion: chunk frames arrive incrementally, the final
//     response frame carries the metadata;
//  3. overload the tiny admission queue, get shed with a cause-specific
//     retry_after_vms hint on the error frame, and retry when it says to.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/example_net_client
#include <cstdio>

#include "llm/simulated.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/server.h"

int main() {
  using namespace llmdm;

  // 1. The backend: a deliberately tiny server (1 virtual slot, queue depth
  //    2) so step 3 can trip the shed path on demand. Port 0 = ephemeral.
  auto models = llm::CreatePaperModelLadder(nullptr, 2024);
  serve::Server::Options serve_options;
  serve_options.worker_threads = 2;
  serve_options.virtual_concurrency = 1;
  serve_options.queue_depth = 2;
  serve_options.shed_policy = serve::ShedPolicy::kQueueFull;
  serve_options.retain_responses = false;
  serve::Server backend(models[0], serve_options);

  net::NetServer::Options net_options;
  net_options.port = 0;
  net::NetServer server(&backend, net_options);
  if (common::Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("server listening on 127.0.0.1:%u\n", server.port());

  net::Client client;
  net::Client::Options copts;
  copts.port = server.port();
  if (common::Status s = client.Connect(copts); !s.ok()) {
    std::fprintf(stderr, "connect: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. Streaming: ask for 48-byte chunks and print them as they arrive.
  net::WireRequest request;
  request.id = 1;
  request.skill = "freeform";
  request.input = "Summarize the stadium concert attendance trends.";
  request.arrival_vms = 0.0;
  request.stream_chunk_bytes = 48;
  auto stream = client.CallStreaming(request);
  if (!stream.ok()) {
    std::fprintf(stderr, "stream: %s\n", stream.status().ToString().c_str());
    return 1;
  }
  std::string chunk;
  size_t n = 0;
  while (stream->Next(&chunk)) {
    std::printf("  chunk %zu: %zu bytes\n", n++, chunk.size());
  }
  auto final_result = stream->Finish();
  if (!final_result.ok()) {
    std::fprintf(stderr, "finish: %s\n",
                 final_result.status().ToString().c_str());
    return 1;
  }
  std::printf("streamed %zu chunks from %s (%zu bytes total, %.1f vms)\n\n",
              final_result->chunks, final_result->model.c_str(),
              final_result->text.size(), final_result->latency_vms);

  // 3. Shed + retry: burst past the queue depth at one virtual instant.
  //    The refused requests come back as error frames carrying the shed
  //    cause and the earliest virtual time a retry can succeed — so the
  //    client retries *at* the hint instead of hammering the door.
  double arrival = 100.0;
  std::vector<net::WireRequest> burst;
  for (uint64_t id = 10; id < 18; ++id) {
    net::WireRequest r;
    r.id = id;
    r.input = "burst question #" + std::to_string(id);
    r.arrival_vms = arrival;  // all at once: the queue model must refuse some
    burst.push_back(r);
  }
  auto results = client.CallBatch(burst);
  if (!results.ok()) {
    std::fprintf(stderr, "batch: %s\n", results.status().ToString().c_str());
    return 1;
  }
  size_t shed = 0;
  for (const net::ClientResult& r : *results) {
    if (!r.shed) continue;
    ++shed;
    std::printf("  id %llu shed (cause %d): retry after %.0f vms\n",
                static_cast<unsigned long long>(r.id),
                static_cast<int>(r.shed_cause), r.retry_after_vms);
    // The retry loop: resubmit at the hinted virtual time.
    net::WireRequest retry;
    retry.id = r.id + 100;
    retry.input = "burst question #" + std::to_string(r.id);
    retry.arrival_vms = arrival + r.retry_after_vms;
    auto again = client.Call(retry);
    if (again.ok() && again->status.ok()) {
      std::printf("    retry at %.0f vms: ok (%s)\n", retry.arrival_vms,
                  again->model.c_str());
    } else if (again.ok()) {
      std::printf("    retry at %.0f vms: %s\n", retry.arrival_vms,
                  again->status.ToString().c_str());
    }
  }
  std::printf("burst of %zu: %zu shed and retried\n", burst.size(), shed);

  client.Close();
  server.Shutdown();
  (void)backend.Drain();
  return 0;
}
