// Healthcare ETL: the paper's recurring healthcare scenario (Secs. II-B,
// III-D). A clinic holds XML diagnostic reports with inconsistent date
// formats and a patient table with missing lab values. The pipeline:
//   1. relationalize the XML (transformation);
//   2. unify the date column with a synthesized column transform;
//   3. fill missing lab values via few-shot ICL (generation);
//   4. release only differentially-private aggregates (privacy);
//   5. run a payment transaction for a treatment, atomically (NL2Transaction).
#include <cstdio>

#include "common/string_util.h"
#include "core/generation/annotator.h"
#include "core/privacy/dp.h"
#include "core/transform/column_pattern.h"
#include "core/transform/nl2transaction.h"
#include "core/transform/table_transform.h"
#include "data/tabular_gen.h"
#include "data/txn_workload.h"
#include "data/xml.h"
#include "llm/simulated.h"
#include "sql/database.h"

int main() {
  using namespace llmdm;
  common::Rng rng(2026);
  auto models = llm::CreatePaperModelLadder(nullptr, 77);

  // 1. XML diagnostic reports -> relational table.
  std::string xml_corpus = R"(<reports>
    <report id="1"><patient>Ann</patient><diagnosis>arrhythmia</diagnosis><visit>3/14/2023</visit></report>
    <report id="2"><patient>Ben</patient><diagnosis>angina</diagnosis><visit>Aug 2 2023</visit></report>
    <report id="3"><patient>Cleo</patient><diagnosis>asthma</diagnosis><visit>5/9/2023</visit></report>
    <report id="4"><patient>Dev</patient><diagnosis>angina</diagnosis><visit>11/30/2023</visit></report>
  </reports>)";
  auto root = data::ParseXml(xml_corpus);
  auto reports = transform::XmlToTable(**root);
  if (!reports.ok()) return 1;
  std::printf("1) relationalized XML:\n%s\n", reports->ToString().c_str());

  // 2. Unify the visit date format (synthesized from one worked example).
  auto program = transform::ColumnTransform::Synthesize(
      {{"Aug 2 2023", "8/2/2023"}});
  size_t visit = *reports->schema().Find("visit");
  for (size_t r = 0; r < reports->NumRows(); ++r) {
    auto fixed = program->Apply(reports->at(r, visit).AsText());
    if (fixed.ok()) {
      (*reports->mutable_row(r))[visit] = data::Value::Text(*fixed);
    }
  }
  std::printf("2) date program '%s' applied; row 2 visit is now %s\n\n",
              program->Describe().c_str(),
              reports->at(1, visit).ToString().c_str());

  // 3. Fill missing cholesterol values via ICL.
  data::PatientDataOptions popts;
  popts.num_rows = 30;
  data::Table patients = data::GeneratePatientTable(popts, rng);
  auto blanked = data::InjectMissing(&patients, "cholesterol", 0.2, rng);
  generation::MissingFieldAnnotator annotator(
      models[2], generation::MissingFieldAnnotator::Options{});
  llm::UsageMeter meter;
  auto report = annotator.Annotate(&patients, "cholesterol", &meter);
  std::printf("3) ICL annotation filled %zu/%zu missing cholesterol values "
              "(cost %s)\n\n",
              report->filled, report->missing,
              meter.cost().ToString(4).c_str());

  // 4. DP aggregate release over the (sensitive) patient table.
  privacy::DpAggregator aggregator(&patients, /*epsilon_budget=*/2.0, 11);
  auto mean_bp = aggregator.NoisyMean("systolic_bp", 90, 190, 1.0);
  std::printf("4) DP release: mean systolic BP ~ %.1f "
              "(epsilon spent 1.0, remaining %.1f)\n\n",
              mean_bp.value_or(-1), aggregator.remaining_budget());

  // 5. Atomic payment for a treatment (the paper's NL2Transaction).
  sql::Database billing;
  billing
      .ExecuteScript(data::BuildAccountsDatabaseScript(
          {"Ann", "Clinic", "Lab"}, 2000))
      .ok();
  transform::Nl2TransactionEngine txn(models[2],
                                      transform::Nl2TransactionEngine::Options{});
  auto outcome = txn.Run(
      "Transfer 150 dollars from Ann to Clinic. Then transfer 40 dollars "
      "from Clinic to Lab.",
      billing, &meter);
  std::printf("5) payment transaction: %s\n",
              outcome->committed ? "committed" : outcome->failure.c_str());
  auto balances = billing.Query("SELECT owner, balance FROM accounts");
  std::printf("%s", balances->ToString().c_str());
  return 0;
}
