# Runs at ctest time, after gtest test discovery (appended to
# TEST_INCLUDE_FILES behind the generated discovery include). The net suite
# carries both labels — `net` for the loopback suite on its own, and
# `concurrency` so the TSan job (`ctest -L concurrency` under
# -DLLMDM_TSAN=ON) exercises the epoll loop thread, serve workers, and
# client threads together. gtest_discover_tests flattens list-valued
# PROPERTIES, so the pair cannot be set directly there.
foreach(t IN LISTS llmdm_net_test_names)
  set_tests_properties(${t} PROPERTIES LABELS "net;concurrency")
endforeach()
