// Multi-threaded soak tests for the serving layer and the shared hot state
// under it (UsageMeter, SemanticCache, CircuitBreaker, Deadline). Run with
// `ctest -L concurrency`; the binary is the one to exercise under
// -DLLMDM_TSAN=ON. Two kinds of assertion live here:
//   * exact determinism — the server's id-sorted responses and aggregate
//     stats must be identical across runs and worker-thread counts;
//   * self-consistency — under fault injection with a shared cache the
//     interleaving is real, so we assert ledger invariants (no lost or
//     double-counted spend, stats that sum) instead of exact values.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/optimize/batch_probe.h"
#include "core/optimize/semantic_cache.h"
#include "llm/deadline.h"
#include "llm/fault_injection.h"
#include "llm/resilient.h"
#include "llm/simulated.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace llmdm {
namespace {

std::shared_ptr<llm::SimulatedLlm> MakeModel(const std::string& name,
                                             double latency_ms_per_1k,
                                             uint64_t seed) {
  llm::ModelSpec spec;
  spec.name = name;
  spec.capability = 0.9;
  spec.input_price_per_1k = common::Money::FromDollars(0.001);
  spec.output_price_per_1k = common::Money::FromDollars(0.002);
  spec.latency_ms_per_1k_tokens = latency_ms_per_1k;
  auto model = std::make_shared<llm::SimulatedLlm>(spec, seed);
  model->RegisterSkill(std::make_unique<llm::FreeformSkill>());
  return model;
}

serve::Request MakeRequest(uint64_t id, double arrival_vms,
                           const std::string& input) {
  serve::Request req;
  req.id = id;
  req.arrival_vms = arrival_vms;
  req.input = input;
  return req;
}

// ---- Shared-state primitives under raw threads ------------------------------

TEST(ConcurrentUsageMeter, NoLostOrDoubleCountedSpend) {
  llm::UsageMeter shared;
  constexpr size_t kThreads = 8, kPerThread = 200;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        // Half direct records, half scratch-meter commits (the hedge path).
        if (i % 2 == 0) {
          shared.Record("model-a", 100, 50, common::Money::FromDollars(0.001),
                        5.0);
        } else {
          llm::UsageMeter scratch;
          scratch.Record(common::StrFormat("model-%zu", t % 3), 100, 50,
                         common::Money::FromDollars(0.001), 5.0);
          shared.MergeFrom(scratch);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(shared.calls(), kThreads * kPerThread);
  EXPECT_EQ(shared.cost(),
            common::Money::FromDollars(0.001) *
                static_cast<int64_t>(kThreads * kPerThread));
  // The per-model breakdown must sum exactly to the totals.
  auto totals = shared.totals();
  size_t calls = 0, in_tokens = 0;
  common::Money cost;
  for (const auto& [name, t] : shared.by_model()) {
    calls += t.calls;
    in_tokens += t.input_tokens;
    cost += t.cost;
  }
  EXPECT_EQ(calls, totals.calls);
  EXPECT_EQ(in_tokens, totals.input_tokens);
  EXPECT_EQ(cost, totals.cost);
}

TEST(ConcurrentDeadline, ChargesAreAtomic) {
  llm::Deadline deadline(1000.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&deadline] {
      for (int i = 0; i < 100; ++i) deadline.Charge(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_NEAR(deadline.remaining_ms(), 200.0, 1e-6);
  EXPECT_FALSE(deadline.Exhausted());
}

TEST(ConcurrentCircuitBreaker, OpensExactlyUnderContention) {
  llm::CircuitBreaker::Options options;
  options.min_samples = 4;
  options.window = 16;
  options.failure_threshold = 0.5;
  llm::CircuitBreaker breaker(options);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&breaker] {
      for (int i = 0; i < 100; ++i) {
        if (breaker.Allow(static_cast<double>(i))) {
          breaker.RecordFailure(static_cast<double>(i));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kOpen);
  EXPECT_GE(breaker.times_opened(), 1u);
}

TEST(ConcurrentSoak, ResilientCachedModelInvariantsAt30PercentFaults) {
  // T threads hammer one ResilientLlm (over a 30%-faulty endpoint) through
  // one shared SemanticCache, all metering into one ledger. Interleaving is
  // scheduling-dependent, so the assertions are conservation laws.
  auto cache = std::make_unique<optimize::SemanticCache>(
      optimize::SemanticCache::Options{0.95, 4096,
                                       optimize::EvictionPolicy::kCostAware,
                                       2.0, 1.0, false});
  auto faulty = std::make_shared<llm::FaultInjectingLlm>(
      MakeModel("sim-endpoint", 100.0, 1), llm::FaultProfile::Uniform(0.3), 7);
  llm::ResilientLlm::Options resilience;
  resilience.retry.max_attempts = 4;
  resilience.retry.initial_backoff_ms = 10.0;
  resilience.seed = 5;
  auto resilient = std::make_shared<llm::ResilientLlm>(faulty, resilience);
  resilient->AddFallbackModel(MakeModel("sim-fallback", 50.0, 2));
  optimize::CachedLlm cached(resilient, cache.get());

  constexpr size_t kThreads = 8, kPerThread = 150, kDistinctPrompts = 40;
  llm::UsageMeter meter;
  std::atomic<size_t> ok_count{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        size_t which = (t * kPerThread + i) % kDistinctPrompts;
        llm::Prompt prompt = llm::MakePrompt(
            "freeform",
            common::StrFormat("soak question %zu about data lakes", which));
        prompt.sample_salt = t * 1000003ull + i;
        auto c = cached.CompleteMetered(prompt, &meter);
        if (c.ok()) ok_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();

  constexpr size_t kTotal = kThreads * kPerThread;
  // Every request consulted the cache exactly once...
  auto stats = cache->stats();
  EXPECT_EQ(stats.lookups, kTotal);
  // ...and the cache's own ledger balances: only misses that completed
  // inserted, a hit is never also an insertion.
  EXPECT_LE(stats.hits + stats.insertions, stats.lookups);
  EXPECT_LE(cache->Size(), stats.insertions);
  EXPECT_EQ(stats.evictions, 0u);  // capacity was ample
  // The usage ledger balances: per-model rows sum to the totals, the retry
  // breakdown sums to the aggregate retry stats. A lost update anywhere
  // breaks one of these sums.
  auto totals = meter.totals();
  EXPECT_EQ(totals.calls, meter.calls());
  size_t calls = 0;
  common::Money cost;
  for (const auto& [name, t] : meter.by_model()) {
    calls += t.calls;
    cost += t.cost;
  }
  EXPECT_EQ(calls, totals.calls);
  EXPECT_EQ(cost, totals.cost);
  auto retry = meter.retry_stats();
  llm::UsageMeter::RetryStats summed;
  for (const auto& [name, r] : meter.retry_by_model()) summed.Merge(r);
  EXPECT_EQ(summed.attempts, retry.attempts);
  EXPECT_EQ(summed.retries, retry.retries);
  EXPECT_EQ(summed.transient_errors, retry.transient_errors);
  EXPECT_EQ(summed.fallbacks, retry.fallbacks);
  // With retries and a fallback rung, nearly everything completes.
  EXPECT_GT(ok_count.load(), kTotal * 95 / 100);
}

TEST(ConcurrentSoak, ShardedCacheTotalsAreExactUnderThreads) {
  // Each thread owns a disjoint query set (threshold 0.995 admits only exact
  // repeats) and capacity is ample, so per-query outcomes depend only on
  // that thread's own sequence: miss-then-insert once, hit ever after. The
  // aggregate totals of the 8-shard cache are therefore exact under real
  // thread interleaving — and identical run to run.
  constexpr size_t kThreads = 8, kQueries = 25, kReps = 5;
  auto run = [] {
    optimize::SemanticCache::Options options;
    options.similarity_threshold = 0.995;
    options.capacity = 4096;
    options.num_shards = 8;
    optimize::SemanticCache cache(options);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, t] {
        for (size_t rep = 0; rep < kReps; ++rep) {
          for (size_t q = 0; q < kQueries; ++q) {
            std::string query = common::StrFormat(
                "thread %zu soak question %zu about topic %zu", t, q,
                (t * 31 + q * 7) % 13);
            if (!cache.Lookup(query, common::Money::FromDollars(0.01))
                     .has_value()) {
              cache.Insert(query, "answer");
            }
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    return cache.stats();
  };
  optimize::SemanticCache::Stats a = run();
  EXPECT_EQ(a.lookups, kThreads * kQueries * kReps);
  EXPECT_EQ(a.hits, kThreads * kQueries * (kReps - 1));
  EXPECT_EQ(a.insertions, kThreads * kQueries);
  EXPECT_EQ(a.evictions, 0u);
  optimize::SemanticCache::Stats b = run();
  EXPECT_EQ(b.hits, a.hits);
  EXPECT_EQ(b.insertions, a.insertions);
  EXPECT_EQ(b.saved, a.saved);
}

// ---- The metrics registry ---------------------------------------------------

TEST(ConcurrentMetrics, RegistryTotalsAreExactUnderThreads) {
  // Instrument creation races with instrument writes from every thread; the
  // registry hands back stable pointers and the lock-free instruments must
  // not lose an update. Run under -DLLMDM_TSAN=ON like the rest of this
  // suite.
  obs::Registry registry;
  constexpr size_t kThreads = 8, kPerThread = 500;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Each thread fetches its own handles (exercising GetOrCreate under
      // contention) and writes shared series.
      obs::Counter* events = registry.GetCounter("llmdm_soak_events_total");
      obs::Counter* mine = registry.GetCounter(
          "llmdm_soak_thread_total", {{"thread", std::to_string(t % 4)}});
      obs::Gauge* high = registry.GetGauge("llmdm_soak_high_water");
      obs::Histogram* lat = registry.GetHistogram(
          "llmdm_soak_latency_vms", {}, obs::Histogram::LatencyBoundsVms());
      for (size_t i = 0; i < kPerThread; ++i) {
        events->Add(1);
        mine->Add(1);
        high->SetMax(static_cast<int64_t>(i));
        lat->Observe(static_cast<double>(i % 50));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("llmdm_soak_events_total")->value(),
            kThreads * kPerThread);
  uint64_t per_thread_sum = 0;
  for (size_t t = 0; t < 4; ++t) {
    per_thread_sum +=
        registry
            .GetCounter("llmdm_soak_thread_total",
                        {{"thread", std::to_string(t)}})
            ->value();
  }
  EXPECT_EQ(per_thread_sum, kThreads * kPerThread);
  EXPECT_EQ(registry.GetGauge("llmdm_soak_high_water")->value(),
            static_cast<int64_t>(kPerThread - 1));
  auto snap = registry
                  .GetHistogram("llmdm_soak_latency_vms", {},
                                obs::Histogram::LatencyBoundsVms())
                  ->TakeSnapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  // Bucket counts must sum to the observation count — a torn histogram
  // update breaks this conservation law.
  uint64_t bucket_sum = 0;
  for (uint64_t b : snap.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, snap.count);
}

TEST(ConcurrentMetrics, ExportIsByteIdenticalAcrossThreadCounts) {
  // The same fixed workload observed through 1, 2 or 8 threads must export
  // byte-identical text: every accumulation in the registry is integer.
  auto run = [](size_t threads) {
    obs::Registry registry;
    obs::Counter* events = registry.GetCounter("llmdm_soak_events_total");
    obs::Histogram* lat = registry.GetHistogram(
        "llmdm_soak_latency_vms", {}, obs::Histogram::LatencyBoundsVms());
    constexpr size_t kTotal = 1200;
    std::vector<std::thread> pool;
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        const size_t per = kTotal / threads;
        for (size_t i = 0; i < per; ++i) {
          size_t k = t * per + i;
          events->Add(1);
          lat->Observe(0.25 * static_cast<double>(k % 200));
        }
      });
    }
    for (auto& t : pool) t.join();
    return registry.PrometheusText() + registry.JsonSnapshot();
  };
  std::string one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(8));
}

// ---- The serving layer ------------------------------------------------------

TEST(Serve, FaultFreeSpendIsExactlyConserved) {
  // No faults, no shedding: the committed meter must equal the sum of the
  // per-response costs to the micro — dropped or double-counted spend under
  // the worker pool shows up here.
  serve::Server::Options options;
  options.worker_threads = 8;
  options.shed_policy = serve::ShedPolicy::kNone;
  serve::Server server(MakeModel("sim-serve", 100.0, 3), options);
  constexpr size_t kN = 300;
  for (size_t i = 0; i < kN; ++i) {
    server.Submit(MakeRequest(i, static_cast<double>(i) * 2.0,
                              common::StrFormat("question %zu", i % 60)));
  }
  auto responses = server.Drain();
  ASSERT_EQ(responses.size(), kN);
  common::Money sum;
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].id, i);  // every id exactly once, in order
    ASSERT_TRUE(responses[i].status.ok());
    sum += responses[i].cost;
  }
  EXPECT_EQ(server.meter().calls(), kN);
  EXPECT_EQ(server.meter().cost(), sum);
  auto stats = server.stats();
  EXPECT_EQ(stats.submitted, kN);
  EXPECT_EQ(stats.admitted, kN);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.completed, kN);
}

std::string RunServeWorkload(size_t worker_threads) {
  serve::Server::Options options;
  options.worker_threads = worker_threads;
  options.virtual_concurrency = 2;
  options.queue_depth = 8;
  options.shed_policy = serve::ShedPolicy::kQueueFull;
  options.hedging = true;
  options.hedge_percentile = 0.9;
  auto faulty = std::make_shared<llm::FaultInjectingLlm>(
      MakeModel("sim-serve", 200.0, 3), llm::FaultProfile::Uniform(0.3), 11);
  llm::ResilientLlm::Options resilience;
  resilience.retry.max_attempts = 3;
  resilience.retry.initial_backoff_ms = 20.0;
  resilience.seed = 9;
  // Keep the circuit breaker closed for this workload. The breaker reacts to
  // the *real* completion order of concurrent calls (its rolling window is
  // shared mutable state), so once it trips, which call gets rejected is
  // scheduling luck — at 30% faults it opens once or twice per run at an
  // order-dependent point, which is exactly the nondeterminism this test
  // exists to rule out of the serve layer itself. Breaker behaviour has its
  // own tests (ConcurrentCircuitBreaker.OpensExactlyUnderContention and the
  // resilience suite); here the endpoint must stay a pure function of the
  // request.
  resilience.breaker.min_samples = std::numeric_limits<size_t>::max();
  auto resilient = std::make_shared<llm::ResilientLlm>(faulty, resilience);
  serve::Server server(resilient, options, MakeModel("sim-hedge", 50.0, 4));
  for (size_t i = 0; i < 200; ++i) {
    serve::Request req = MakeRequest(i, static_cast<double>(i) * 3.0,
                                     common::StrFormat("query %zu", i));
    req.deadline_ms = 5000.0;
    req.priority = (i % 5 == 0) ? serve::Priority::kBatch
                                : serve::Priority::kNormal;
    server.Submit(req);
  }
  std::string log;
  for (const auto& r : server.Drain()) {
    log += common::StrFormat(
        "%llu ok=%d shed=%d hedged=%d won=%d miss=%d lat=%.3f cost=%lld %s\n",
        (unsigned long long)r.id, r.status.ok() ? 1 : 0, r.shed ? 1 : 0,
        r.hedged ? 1 : 0, r.hedge_won ? 1 : 0, r.deadline_missed ? 1 : 0,
        r.latency_vms, (long long)r.cost.micros(), r.model.c_str());
  }
  auto s = server.stats();
  log += common::StrFormat(
      "stats sub=%zu adm=%zu shed=%zu done=%zu fail=%zu hedges=%zu wins=%zu "
      "p50=%.3f p99=%.3f cancelled=%lld\n",
      s.submitted, s.admitted, s.shed, s.completed, s.failed,
      s.hedges_launched, s.hedge_wins, s.p50_latency_vms, s.p99_latency_vms,
      (long long)s.hedge_cancelled_cost.micros());
  return log;
}

TEST(Serve, DeterministicAcrossRunsAndThreadCounts) {
  // The whole point of the virtual-time design: real threads execute the
  // calls, yet the id-sorted outcome is byte-identical run to run — and
  // independent of how many workers raced over it.
  std::string two = RunServeWorkload(2);
  EXPECT_EQ(two, RunServeWorkload(2));
  EXPECT_EQ(two, RunServeWorkload(8));
}

TEST(Serve, SingleFlightSpendConservedAndItemized) {
  // Bursts of identical queries: the first of each burst leads, the rest
  // coalesce. Exactly one model call per flight is committed to the meter;
  // followers cost nothing, carry the leader's text, and are itemized in
  // the meter's coalesce ledger.
  serve::Server::Options options;
  options.worker_threads = 8;
  options.shed_policy = serve::ShedPolicy::kNone;
  options.single_flight = true;
  serve::Server server(MakeModel("sim-serve", 100.0, 3), options);
  constexpr size_t kN = 120, kBurst = 6;  // 20 bursts of 6 identical queries
  for (size_t i = 0; i < kN; ++i) {
    server.Submit(MakeRequest(i, static_cast<double>(i) * 1.0,
                              common::StrFormat("dup question %zu", i / kBurst)));
  }
  auto responses = server.Drain();
  ASSERT_EQ(responses.size(), kN);
  auto stats = server.stats();
  EXPECT_GT(stats.coalesced, 0u);
  EXPECT_EQ(stats.admitted, kN);

  common::Money response_sum;
  size_t coalesced_responses = 0;
  std::map<std::string, std::string> leader_text;  // input -> leader's answer
  for (const auto& r : responses) {
    ASSERT_TRUE(r.status.ok());
    response_sum += r.cost;
    if (!r.coalesced) {
      leader_text["dup question " + std::to_string(r.id / kBurst)] = r.text;
    }
  }
  for (const auto& r : responses) {
    if (!r.coalesced) continue;
    ++coalesced_responses;
    EXPECT_EQ(r.cost, common::Money::Zero());
    EXPECT_EQ(r.queue_wait_vms, 0.0);
    EXPECT_TRUE(r.model.ends_with("+coalesced")) << r.model;
    EXPECT_EQ(r.text, leader_text["dup question " + std::to_string(r.id / kBurst)]);
  }
  EXPECT_EQ(coalesced_responses, stats.coalesced);

  // Spend conservation: only leaders reached the endpoint, and the meter
  // holds exactly their spend (== the sum over responses, since followers
  // are zero-cost).
  EXPECT_EQ(server.meter().calls(), kN - stats.coalesced);
  EXPECT_EQ(server.meter().cost(), response_sum);

  // The avoided calls are itemized, and the per-model rows sum to the total.
  auto coalesce = server.meter().coalesce_stats();
  EXPECT_EQ(coalesce.coalesced, stats.coalesced);
  EXPECT_GT(coalesce.saved, common::Money::Zero());
  size_t by_model_sum = 0;
  for (const auto& [name, c] : server.meter().coalesce_by_model()) {
    by_model_sum += c.coalesced;
  }
  EXPECT_EQ(by_model_sum, coalesce.coalesced);
}

std::string RunSingleFlightWorkload(size_t worker_threads) {
  serve::Server::Options options;
  options.worker_threads = worker_threads;
  options.virtual_concurrency = 2;
  options.queue_depth = 16;
  options.shed_policy = serve::ShedPolicy::kQueueFull;
  options.single_flight = true;
  serve::Server server(MakeModel("sim-serve", 200.0, 3), options);
  for (size_t i = 0; i < 150; ++i) {
    server.Submit(MakeRequest(i, static_cast<double>(i) * 2.0,
                              common::StrFormat("flight %zu", i % 30)));
  }
  std::string log;
  for (const auto& r : server.Drain()) {
    log += common::StrFormat(
        "%llu ok=%d shed=%d coal=%d lat=%.3f svc=%.3f cost=%lld %s\n",
        (unsigned long long)r.id, r.status.ok() ? 1 : 0, r.shed ? 1 : 0,
        r.coalesced ? 1 : 0, r.latency_vms, r.service_vms,
        (long long)r.cost.micros(), r.model.c_str());
  }
  auto s = server.stats();
  auto c = server.meter().coalesce_stats();
  log += common::StrFormat(
      "stats sub=%zu adm=%zu shed=%zu coal=%zu done=%zu meter_calls=%zu "
      "meter_cost=%lld saved=%lld\n",
      s.submitted, s.admitted, s.shed, s.coalesced, s.completed,
      server.meter().calls(), (long long)server.meter().cost().micros(),
      (long long)c.saved.micros());
  return log;
}

TEST(Serve, SingleFlightDeterministicAcrossRunsAndThreadCounts) {
  // Coalescing is decided at admission time against the virtual queue
  // model, so which requests coalesce — and every response they produce —
  // must be byte-identical across runs and worker counts.
  std::string two = RunSingleFlightWorkload(2);
  EXPECT_NE(two.find("coal=1"), std::string::npos);  // it actually coalesced
  EXPECT_EQ(two, RunSingleFlightWorkload(2));
  EXPECT_EQ(two, RunSingleFlightWorkload(1));
  EXPECT_EQ(two, RunSingleFlightWorkload(8));
}

TEST(Serve, ShedsWithRetryAfterWhenQueueFull) {
  serve::Server::Options options;
  options.worker_threads = 4;
  options.virtual_concurrency = 1;
  options.queue_depth = 4;
  options.shed_policy = serve::ShedPolicy::kQueueFull;
  serve::Server server(MakeModel("sim-serve", 2000.0, 3), options);
  // A burst: everything arrives nearly at once against one slow slot.
  for (size_t i = 0; i < 40; ++i) {
    server.Submit(MakeRequest(i, static_cast<double>(i) * 0.1,
                              common::StrFormat("burst %zu", i)));
  }
  auto responses = server.Drain();
  auto stats = server.stats();
  EXPECT_GT(stats.shed, 0u);
  EXPECT_EQ(stats.shed + stats.admitted, stats.submitted);
  for (const auto& r : responses) {
    if (!r.shed) continue;
    EXPECT_EQ(r.status.code(), common::StatusCode::kResourceExhausted);
    EXPECT_GT(r.retry_after_vms, 0.0);  // the hint points past the backlog
  }
  // The same burst with an unbounded queue admits everything.
  serve::Server::Options unbounded = options;
  unbounded.shed_policy = serve::ShedPolicy::kNone;
  serve::Server baseline(MakeModel("sim-serve", 2000.0, 3), unbounded);
  for (size_t i = 0; i < 40; ++i) {
    baseline.Submit(MakeRequest(i, static_cast<double>(i) * 0.1,
                                common::StrFormat("burst %zu", i)));
  }
  baseline.Drain();
  EXPECT_EQ(baseline.stats().shed, 0u);
  EXPECT_EQ(baseline.stats().admitted, 40u);
  // Bounding the queue is what bounds the tail.
  EXPECT_LT(stats.p99_latency_vms, baseline.stats().p99_latency_vms);
}

TEST(Serve, DeadlineAwareShedsDoomedRequestsAtTheDoor) {
  auto run = [](serve::ShedPolicy policy) {
    serve::Server::Options options;
    options.worker_threads = 4;
    options.virtual_concurrency = 1;
    options.queue_depth = 1000;  // queue bound out of the way
    options.shed_policy = policy;
    serve::Server server(MakeModel("sim-serve", 2000.0, 3), options);
    for (size_t i = 0; i < 30; ++i) {
      serve::Request req = MakeRequest(i, static_cast<double>(i) * 0.1,
                                       common::StrFormat("burst %zu", i));
      req.deadline_ms = 400.0;
      server.Submit(req);
    }
    server.Drain();
    return server.stats();
  };
  auto aware = run(serve::ShedPolicy::kDeadlineAware);
  auto blind = run(serve::ShedPolicy::kQueueFull);
  // Deadline-aware turns queue deaths into immediate rejections: the
  // requests it sheds are exactly the ones that would have missed anyway.
  EXPECT_GT(aware.shed, 0u);
  EXPECT_EQ(blind.shed, 0u);
  EXPECT_GT(blind.deadline_missed, aware.deadline_missed);
  EXPECT_EQ(aware.shed + aware.deadline_missed + aware.completed,
            aware.submitted);
}

TEST(Serve, BatchConfinedToItsQueueShareUnderOverload) {
  serve::Server::Options options;
  options.worker_threads = 4;
  options.virtual_concurrency = 1;
  options.queue_depth = 8;
  options.batch_queue_fraction = 0.25;
  options.shed_policy = serve::ShedPolicy::kQueueFull;
  serve::Server server(MakeModel("sim-serve", 2000.0, 3), options);
  size_t batch_total = 0, interactive_total = 0;
  std::vector<serve::Priority> priorities;
  for (size_t i = 0; i < 60; ++i) {
    serve::Request req = MakeRequest(i, static_cast<double>(i) * 0.1,
                                     common::StrFormat("mixed %zu", i));
    req.priority = (i % 2 == 0) ? serve::Priority::kBatch
                                : serve::Priority::kInteractive;
    priorities.push_back(req.priority);
    if (req.priority == serve::Priority::kBatch) ++batch_total;
    else ++interactive_total;
    server.Submit(req);
  }
  size_t batch_shed = 0, interactive_shed = 0;
  for (const auto& r : server.Drain()) {
    if (!r.shed) continue;
    if (priorities[r.id] == serve::Priority::kBatch) ++batch_shed;
    else ++interactive_shed;
  }
  ASSERT_GT(batch_shed, 0u);
  // Batch saturates its fraction first; interactive rides the reserve.
  double batch_rate = double(batch_shed) / double(batch_total);
  double interactive_rate = double(interactive_shed) / double(interactive_total);
  EXPECT_GT(batch_rate, interactive_rate);
}

// ---- Multi-tenant QoS -------------------------------------------------------

std::string RunQosWorkload(size_t worker_threads) {
  serve::Server::Options options;
  options.worker_threads = worker_threads;
  options.virtual_concurrency = 2;
  options.queue_depth = 24;
  options.shed_policy = serve::ShedPolicy::kQueueFull;
  options.single_flight = true;  // coalescing must compose with DRR
  for (size_t i = 0; i < 4; ++i) {
    serve::TenantConfig cfg;
    cfg.id = common::StrFormat("t%02zu", i);
    cfg.weight = (i == 0) ? 4.0 : 1.0;
    if (i == 1) {
      cfg.quota_tokens_per_vs = 40.0;  // tenant t01 is rate-metered
      cfg.quota_burst_tokens = 120.0;
    }
    options.qos.tenants.push_back(cfg);
  }
  options.qos.aging_threshold_vms = 1500.0;
  obs::Registry registry;
  options.registry = &registry;
  serve::Server server(MakeModel("sim-serve", 400.0, 3), options);

  serve::PopulationOptions pop;
  pop.tenants = 4;
  pop.requests = 250;
  pop.mean_gap_vms = 4.0;
  pop.diurnal_period_vms = 400.0;
  pop.hot_tenants = 1;
  pop.burst_every_vms = 300.0;
  pop.burst_size = 12;
  pop.deadline_ms = 4000.0;
  pop.seed = 5;
  for (const auto& req : serve::GeneratePopulation(pop)) server.Submit(req);

  std::string log;
  for (const auto& r : server.Drain()) {
    log += common::StrFormat(
        "%llu %s ok=%d shed=%d cause=%d retry=%.3f coal=%d lat=%.3f "
        "cost=%lld\n",
        (unsigned long long)r.id, r.tenant.c_str(), r.status.ok() ? 1 : 0,
        r.shed ? 1 : 0, static_cast<int>(r.shed_cause), r.retry_after_vms,
        r.coalesced ? 1 : 0, r.latency_vms, (long long)r.cost.micros());
  }
  for (const auto& t : server.tenant_stats()) {
    log += common::StrFormat(
        "tenant %s sub=%zu adm=%zu coal=%zu shedq=%zu shedr=%zu done=%zu "
        "fail=%zu miss=%zu spend=%lld slo=%.4f p99=%.3f\n",
        t.tenant.c_str(), t.submitted, t.admitted, t.coalesced, t.shed_quota,
        t.shed_queue, t.completed, t.failed, t.deadline_missed,
        (long long)t.spend.micros(), t.slo_attainment, t.p99_latency_vms);
  }
  log += registry.PrometheusText();
  return log;
}

TEST(ServeQos, DeterministicAcrossRunsAndWorkerCounts) {
  // Quota refills, DRR dispatch order, aging and the per-tenant ledgers all
  // live on the virtual clock, so every response *and* the full metrics
  // export must be byte-identical across runs and worker counts.
  std::string two = RunQosWorkload(2);
  // The workload is actually exercising the interesting paths:
  EXPECT_NE(two.find("cause=3"), std::string::npos);  // quota sheds (t01)
  EXPECT_NE(two.find("coal=1"), std::string::npos);   // coalescing under QoS
  EXPECT_EQ(two, RunQosWorkload(2));
  EXPECT_EQ(two, RunQosWorkload(8));
}

struct StarvationSoakResult {
  size_t weak_completed = 0;
  double max_weak_wait = 0.0;
  double max_heavy_wait = 0.0;
  double max_service = 0.0;
};

StarvationSoakResult RunStarvationSoak(double aging_threshold_vms) {
  serve::Server::Options options;
  options.worker_threads = 4;
  options.virtual_concurrency = 1;
  options.queue_depth = 400;
  options.shed_policy = serve::ShedPolicy::kQueueFull;
  serve::TenantConfig heavy;
  heavy.id = "heavy";
  heavy.weight = 100.0;
  heavy.queue_limit = 300;
  serve::TenantConfig weak;
  weak.id = "weak";
  weak.weight = 0.01;
  weak.queue_limit = 50;
  options.qos.tenants = {heavy, weak};
  options.qos.aging_threshold_vms = aging_threshold_vms;
  serve::Server server(MakeModel("sim-serve", 2000.0, 3), options);

  // Heavy saturates the single slot (service ~120 vms, arrivals every
  // 100 vms — ~1.3x overload, a backlog that builds but slowly); weak
  // trickles in one request every 200 vms, all early in the run.
  uint64_t id = 0;
  std::vector<serve::Request> requests;
  for (size_t i = 0; i < 250; ++i) {
    serve::Request req = MakeRequest(id++, static_cast<double>(i) * 100.0,
                                     common::StrFormat("bulk %zu", i));
    req.tenant = "heavy";
    requests.push_back(req);
  }
  for (size_t i = 0; i < 20; ++i) {
    serve::Request req = MakeRequest(id++, static_cast<double>(i) * 200.0,
                                     common::StrFormat("interactive %zu", i));
    req.tenant = "weak";
    requests.push_back(req);
  }
  std::sort(requests.begin(), requests.end(),
            [](const serve::Request& a, const serve::Request& b) {
              return a.arrival_vms != b.arrival_vms
                         ? a.arrival_vms < b.arrival_vms
                         : a.id < b.id;
            });
  for (const auto& req : requests) server.Submit(req);

  StarvationSoakResult result;
  for (const auto& r : server.Drain()) {
    if (r.shed) continue;
    result.max_service = std::max(result.max_service, r.service_vms);
    if (r.tenant == "weak") {
      ++result.weak_completed;
      EXPECT_TRUE(r.status.ok());
      result.max_weak_wait = std::max(result.max_weak_wait, r.queue_wait_vms);
    } else {
      result.max_heavy_wait = std::max(result.max_heavy_wait, r.queue_wait_vms);
    }
  }
  return result;
}

TEST(ServeQos, AgingBoundsStarvationUnderSaturatingHeavyTenant) {
  // A weight-100:0.01 split with one saturated slot. Without aging, DRR
  // credits the weak tenant ~0.64 tokens per ring cycle (one heavy dispatch
  // each), so ~90 heavy requests run between consecutive weak ones — the
  // weak tenant starves relative to heavy. Aging cannot create capacity
  // (under 3x overload *everyone* queues), but it bounds the *relative*
  // penalty: once a head has aged, dispatch is oldest-first, so the weak
  // tenant waits no more than the heavy tenant plus the threshold plus the
  // request already holding the slot.
  constexpr double kAging = 800.0;
  StarvationSoakResult aged = RunStarvationSoak(kAging);
  EXPECT_EQ(aged.weak_completed, 20u);
  EXPECT_LE(aged.max_weak_wait,
            aged.max_heavy_wait + kAging + aged.max_service + 1.0);

  // Control: aging out of reach. The weak tenant still completes (DRR never
  // wedges) but its worst wait blows out far past the aged run's — this gap
  // is what the aging escape hatch buys.
  StarvationSoakResult starved = RunStarvationSoak(1e12);
  EXPECT_EQ(starved.weak_completed, 20u);
  EXPECT_GT(starved.max_weak_wait, 2.0 * aged.max_weak_wait);
}

TEST(Serve, HedgingCutsTheTailAndBooksCancelledSpend) {
  auto run = [](bool hedging) {
    serve::Server::Options options;
    options.worker_threads = 4;
    options.virtual_concurrency = 4;
    options.shed_policy = serve::ShedPolicy::kNone;
    options.hedging = hedging;
    options.hedge_percentile = 0.5;
    options.est_output_tokens = 1;  // estimate low => the trigger is tight
    serve::Server server(MakeModel("sim-slow", 5000.0, 3), options,
                         MakeModel("sim-fast", 50.0, 4));
    for (size_t i = 0; i < 60; ++i) {
      server.Submit(MakeRequest(i, static_cast<double>(i) * 50.0,
                                common::StrFormat("tail %zu", i)));
    }
    auto responses = server.Drain();
    common::Money response_sum;
    for (const auto& r : responses) response_sum += r.cost;
    return std::make_tuple(server.stats(), server.meter().cost(),
                           response_sum);
  };
  auto [hedged, hedged_meter, hedged_sum] = run(true);
  auto [plain, plain_meter, plain_sum] = run(false);
  EXPECT_GT(hedged.hedges_launched, 0u);
  EXPECT_GT(hedged.hedge_wins, 0u);
  // The fast hedge beats the slow primary's tail...
  EXPECT_LT(hedged.p99_latency_vms, plain.p99_latency_vms);
  // ...the cancelled attempts' spend is booked, not committed...
  EXPECT_GT(hedged.hedge_cancelled_cost, common::Money::Zero());
  EXPECT_EQ(hedged_meter, hedged_sum);
  // ...and without hedging the meter trivially equals the response sum too.
  EXPECT_EQ(plain_meter, plain_sum);
  EXPECT_EQ(plain.hedges_launched, 0u);
}

TEST(Serve, SubmitBatchWithoutProbeMatchesSubmitLoop) {
  auto run = [&](bool batched) {
    serve::Server::Options options;
    options.worker_threads = 4;
    options.shed_policy = serve::ShedPolicy::kNone;
    serve::Server server(MakeModel("sim-serve", 100.0, 3), options);
    std::vector<serve::Request> batch;
    for (size_t i = 0; i < 60; ++i) {
      batch.push_back(MakeRequest(i, static_cast<double>(i) * 2.0,
                                  common::StrFormat("q %zu", i % 20)));
    }
    if (batched) {
      server.SubmitBatch(batch);
    } else {
      for (const auto& req : batch) server.Submit(req);
    }
    std::string log;
    for (const auto& r : server.Drain()) {
      log += common::StrFormat("%llu %d %.3f %lld %s\n",
                               (unsigned long long)r.id, r.status.ok() ? 1 : 0,
                               r.latency_vms, (long long)r.cost.micros(),
                               r.text.c_str());
    }
    return log;
  };
  EXPECT_EQ(run(true), run(false));
}

// ---- Continuous batching ----------------------------------------------------

std::shared_ptr<llm::SimulatedLlm> MakeBatchModel(const std::string& name,
                                                  double latency_ms_per_1k,
                                                  uint64_t seed) {
  llm::ModelSpec spec;
  spec.name = name;
  spec.capability = 0.9;
  spec.input_price_per_1k = common::Money::FromDollars(0.001);
  spec.cached_input_price_per_1k = common::Money::FromDollars(0.0001);
  spec.output_price_per_1k = common::Money::FromDollars(0.002);
  spec.latency_ms_per_1k_tokens = latency_ms_per_1k;
  auto model = std::make_shared<llm::SimulatedLlm>(spec, seed);
  model->RegisterSkill(std::make_unique<llm::FreeformSkill>());
  return model;
}

std::string RunBatchingWorkload(size_t worker_threads) {
  serve::Server::Options options;
  options.worker_threads = worker_threads;
  options.shed_policy = serve::ShedPolicy::kNone;
  options.batching = true;
  options.max_batch = 4;
  options.batch_window_vms = 10.0;
  serve::Server server(MakeBatchModel("sim-batch", 100.0, 3), options);
  for (size_t i = 0; i < 120; ++i) {
    // Near-duplicate prompts: a shared clause head with a varying tail, the
    // Table II decomposition shape the prefix trie exists for.
    server.Submit(MakeRequest(
        i, static_cast<double>(i) * 2.0,
        common::StrFormat("evaluate clause group %zu variant %zu", i % 10,
                          i % 3)));
  }
  std::string log;
  for (const auto& r : server.Drain()) {
    log += common::StrFormat("%llu ok=%d lat=%.3f svc=%.3f cost=%lld %s %s\n",
                             (unsigned long long)r.id, r.status.ok() ? 1 : 0,
                             r.latency_vms, r.service_vms,
                             (long long)r.cost.micros(), r.model.c_str(),
                             r.text.c_str());
  }
  auto s = server.stats();
  auto b = server.meter().batch_stats();
  log += common::StrFormat(
      "stats sub=%zu adm=%zu done=%zu batches=%zu batched=%zu cached=%zu "
      "saved=%lld meter_calls=%zu meter_cost=%lld ledger_batches=%zu "
      "ledger_calls=%zu ledger_cached=%zu ledger_saved=%lld\n",
      s.submitted, s.admitted, s.completed, s.batches_closed,
      s.batched_requests, s.prefix_cached_tokens,
      (long long)s.prefix_saved.micros(), server.meter().calls(),
      (long long)server.meter().cost().micros(), b.batches, b.batched_calls,
      b.prefix_cached_tokens, (long long)b.prefix_saved.micros());
  return log;
}

TEST(ServeBatching, DeterministicAcrossRunsAndWorkerCounts) {
  // Batch membership is decided at admission time on the virtual clock, so
  // the id-sorted responses, the batch ledgers and every counter must be
  // byte-identical across runs and 1/4/8 workers.
  std::string one = RunBatchingWorkload(1);
  EXPECT_NE(one.find("cached="), std::string::npos);
  EXPECT_EQ(one.find("cached=0 "), std::string::npos);  // savings actually flowed
  EXPECT_EQ(one, RunBatchingWorkload(1));
  EXPECT_EQ(one, RunBatchingWorkload(4));
  EXPECT_EQ(one, RunBatchingWorkload(8));
}

TEST(ServeBatching, ClosesOnSizeAndOnWindowDeadline) {
  auto run = [](double gap_vms, size_t n) {
    serve::Server::Options options;
    options.worker_threads = 2;
    options.shed_policy = serve::ShedPolicy::kNone;
    options.batching = true;
    options.max_batch = 4;
    options.batch_window_vms = 10.0;
    obs::Registry registry;
    options.registry = &registry;
    serve::Server server(MakeBatchModel("sim-batch", 100.0, 3), options);
    for (size_t i = 0; i < n; ++i) {
      server.Submit(MakeRequest(i, static_cast<double>(i) * gap_vms,
                                common::StrFormat("close probe %zu", i)));
    }
    (void)server.Drain();
    return registry.PrometheusText();
  };
  // Dense arrivals (1 vms apart, window 10): every batch fills to
  // max_batch=4 before the window can expire.
  std::string dense = run(1.0, 16);
  EXPECT_NE(dense.find("llmdm_batch_closed_total{cause=\"size\"} 4"),
            std::string::npos)
      << dense;
  // Sparse arrivals (6 vms apart): the second arrival is inside the first's
  // window, the third crosses it — batches of two close on "window" (and
  // the final pair on "drain"), never on size.
  std::string sparse = run(6.0, 8);
  EXPECT_EQ(sparse.find("cause=\"size\"} 1"), std::string::npos);
  EXPECT_NE(sparse.find("llmdm_batch_closed_total{cause=\"window\"} 3"),
            std::string::npos)
      << sparse;
  EXPECT_NE(sparse.find("llmdm_batch_closed_total{cause=\"drain\"} 1"),
            std::string::npos)
      << sparse;
}

TEST(ServeBatching, TextsMatchUnbatchedAndSavedReconstructsListPrice) {
  // Batching changes billing and latency, never answers: the id-sorted
  // texts must equal an unbatched run's, and (satellite 2 exactness) the
  // batched meter cost plus the itemized prefix savings must reconstruct
  // the unbatched meter cost to the micro.
  auto run = [](bool batching) {
    serve::Server::Options options;
    options.worker_threads = 4;
    options.shed_policy = serve::ShedPolicy::kNone;
    options.batching = batching;
    options.max_batch = 8;
    options.batch_window_vms = 20.0;
    serve::Server server(MakeBatchModel("sim-batch", 100.0, 3), options);
    for (size_t i = 0; i < 90; ++i) {
      server.Submit(MakeRequest(
          i, static_cast<double>(i) * 2.0,
          common::StrFormat("decompose clause %zu of query %zu", i % 5,
                            i / 5)));
    }
    std::string texts;
    for (const auto& r : server.Drain()) {
      EXPECT_TRUE(r.status.ok());
      texts += r.text;
      texts += '\n';
    }
    return std::make_tuple(texts, server.meter().cost(),
                           server.meter().batch_stats());
  };
  auto [batched_texts, batched_cost, batch_ledger] = run(true);
  auto [plain_texts, plain_cost, plain_ledger] = run(false);
  EXPECT_EQ(batched_texts, plain_texts);
  EXPECT_GT(batch_ledger.prefix_cached_tokens, 0u);
  EXPECT_GT(batch_ledger.prefix_saved, common::Money::Zero());
  EXPECT_LT(batched_cost, plain_cost);
  EXPECT_EQ(batched_cost + batch_ledger.prefix_saved, plain_cost);
  EXPECT_EQ(plain_ledger.batches, 0u);
}

TEST(ServeBatching, SpendConservedUnderCoalescingAndHedging) {
  // The satellite-2 conservation law with everything on at once: batching +
  // single-flight + hedging. The committed meter must equal the sum of the
  // per-response costs to the micro — a double-booked prefix discount or a
  // hedge-loser's claimed savings would break the equality.
  serve::Server::Options options;
  options.worker_threads = 8;
  options.shed_policy = serve::ShedPolicy::kNone;
  options.batching = true;
  options.max_batch = 4;
  options.batch_window_vms = 15.0;
  options.single_flight = true;
  options.hedging = true;
  options.hedge_percentile = 0.5;
  options.est_output_tokens = 1;  // tight trigger: hedges actually launch
  serve::Server server(MakeBatchModel("sim-batch", 5000.0, 3), options,
                       MakeModel("sim-hedge", 50.0, 4));
  for (size_t i = 0; i < 90; ++i) {
    // Thirds: near-duplicates (batch + prefix), exact duplicates
    // (single-flight), and unique tails (hedge fodder).
    std::string input =
        (i % 3 == 0)
            ? common::StrFormat("shared stem request %zu", i % 12)
            : (i % 3 == 1 ? std::string("identical flight query")
                          : common::StrFormat("unique tail %zu", i));
    server.Submit(MakeRequest(i, static_cast<double>(i) * 5.0, input));
  }
  auto responses = server.Drain();
  ASSERT_EQ(responses.size(), 90u);
  common::Money response_sum;
  for (const auto& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.message();
    response_sum += r.cost;
  }
  auto s = server.stats();
  EXPECT_GT(s.batches_closed, 0u);
  EXPECT_GT(s.coalesced, 0u);
  EXPECT_GT(s.hedges_launched, 0u);
  EXPECT_EQ(server.meter().cost(), response_sum);
  // The registry counters and the meter ledger describe the same savings.
  EXPECT_EQ(server.meter().batch_stats().prefix_cached_tokens,
            s.prefix_cached_tokens);
  EXPECT_EQ(server.meter().batch_stats().prefix_saved, s.prefix_saved);
}

TEST(ServeQos, SubmitBatchProbeHitsChargeTenantLedger) {
  // Satellite 1 regression: a batch-probe hit must hit the tenant's books —
  // submitted, admitted, the {tenant=...} hit counter, and the quota
  // bucket — exactly like an admitted request, so a tenant cannot dodge its
  // quota by arriving through SubmitBatch with a warm cache. Parity target:
  // an equivalent Submit loop (no probe; every request is admitted and
  // charged), which must see the same admission/shed accounting.
  auto tenant_row = [](serve::Server& server, const std::string& id) {
    for (const auto& t : server.tenant_stats()) {
      if (t.tenant == id) return t;
    }
    return serve::TenantStats{};
  };
  auto make_options = [] {
    serve::Server::Options options;
    options.worker_threads = 4;
    options.queue_depth = 256;  // ample share: only quota can shed
    options.shed_policy = serve::ShedPolicy::kQueueFull;
    serve::TenantConfig metered;
    metered.id = "metered";
    metered.weight = 1.0;
    metered.queue_limit = 256;
    // Burst covers roughly three requests' estimates, refill is a trickle:
    // the fourth-and-later arrivals must shed on quota in BOTH paths.
    metered.quota_tokens_per_vs = 0.01;
    metered.quota_burst_tokens = 180.0;
    options.qos.tenants = {metered};
    return options;
  };
  auto make_workload = [] {
    std::vector<serve::Request> batch;
    for (size_t i = 0; i < 10; ++i) {
      serve::Request req = MakeRequest(i, static_cast<double>(i) * 1.0,
                                       common::StrFormat("warm query %zu", i));
      req.tenant = "metered";
      batch.push_back(req);
    }
    return batch;
  };

  // Path A: SubmitBatch through a probe whose cache answers everything.
  auto model = MakeModel("sim-serve", 100.0, 3);
  optimize::SemanticCache::Options copts;
  copts.similarity_threshold = 0.99;
  copts.capacity = 256;
  optimize::SemanticCache cache(copts);
  for (size_t i = 0; i < 10; ++i) {
    cache.Insert(common::StrFormat("warm query %zu", i), "cached answer",
                 common::Money::FromDollars(0.001));
  }
  serve::Server::Options options = make_options();
  options.batch_probe = optimize::MakeBatchCacheProbe(&cache, model->spec());
  serve::Server probed(model, options);
  probed.SubmitBatch(make_workload());
  (void)probed.Drain();
  serve::TenantStats a = tenant_row(probed, "metered");

  // Path B: the same workload through a plain Submit loop (no probe).
  serve::Server plain(MakeModel("sim-serve", 100.0, 3), make_options());
  for (const auto& req : make_workload()) plain.Submit(req);
  (void)plain.Drain();
  serve::TenantStats b = tenant_row(plain, "metered");

  // The probe really answered the admitted requests...
  EXPECT_GT(a.cache_probe_hits, 0u);
  EXPECT_EQ(a.cache_probe_hits, a.admitted);
  EXPECT_EQ(b.cache_probe_hits, 0u);
  // ...and the admission-side books are identical: same submissions, same
  // admissions, and — the heart of the bug — the same quota sheds, because
  // hits drain the bucket exactly like admitted calls.
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.shed_quota, b.shed_quota);
  EXPECT_GT(a.shed_quota, 0u);
  EXPECT_EQ(a.shed_queue, 0u);
  EXPECT_EQ(b.shed_queue, 0u);
}

TEST(Serve, SubmitBatchProbeAnswersHitsAtZeroCostDeterministically) {
  // A semantic cache warmed with half the batch's queries, wired in through
  // the batched probe: hits must be answered at zero cost with the cached
  // text and "+cache" model label, misses must reach the model — and the
  // id-sorted outcome must be byte-identical across runs and worker counts.
  auto run = [&](size_t worker_threads) {
    auto model = MakeModel("sim-serve", 100.0, 3);
    optimize::SemanticCache::Options copts;
    copts.similarity_threshold = 0.99;
    copts.capacity = 256;
    copts.quantize = true;  // the int8 shard path under the probe
    optimize::SemanticCache cache(copts);
    for (size_t i = 0; i < 30; ++i) {
      cache.Insert(common::StrFormat("warm query %zu", i), "cached answer",
                   common::Money::FromDollars(0.001));
    }
    serve::Server::Options options;
    options.worker_threads = worker_threads;
    options.shed_policy = serve::ShedPolicy::kNone;
    options.batch_probe = optimize::MakeBatchCacheProbe(&cache, model->spec());
    serve::Server server(model, options);
    std::vector<serve::Request> batch;
    for (size_t i = 0; i < 60; ++i) {
      // Even ids were pre-cached; odd ids are cold.
      std::string text = (i % 2 == 0)
                             ? common::StrFormat("warm query %zu", i / 2)
                             : common::StrFormat("cold query %zu", i);
      batch.push_back(MakeRequest(i, static_cast<double>(i) * 2.0, text));
    }
    server.SubmitBatch(batch);
    auto responses = server.Drain();
    auto stats = server.stats();
    EXPECT_EQ(stats.submitted, 60u);
    EXPECT_EQ(stats.admitted, 60u);
    EXPECT_EQ(stats.cache_probe_hits, 30u);
    std::string log;
    for (const auto& r : responses) {
      EXPECT_TRUE(r.status.ok()) << r.status.message();
      if (r.id % 2 == 0) {
        EXPECT_EQ(r.text, "cached answer");
        EXPECT_EQ(r.model, "sim-serve+cache");
        EXPECT_EQ(r.cost, common::Money::Zero());
        EXPECT_EQ(r.latency_vms, 1.0);
      } else {
        EXPECT_NE(r.model, "sim-serve+cache");
      }
      log += common::StrFormat("%llu %.3f %lld %s %s\n",
                               (unsigned long long)r.id, r.latency_vms,
                               (long long)r.cost.micros(), r.model.c_str(),
                               r.text.c_str());
    }
    return log;
  };
  std::string one = run(1);
  EXPECT_EQ(one, run(4));
  EXPECT_EQ(one, run(8));
}

}  // namespace
}  // namespace llmdm
