#include <gtest/gtest.h>

#include "sql/database.h"
#include "sql/parser.h"

namespace llmdm::sql {
namespace {

using data::ColumnType;
using data::Value;

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Exec("CREATE TABLE stadium (id INT PRIMARY KEY, name TEXT, capacity INT, city TEXT)");
    Exec("CREATE TABLE concert (id INT, stadium_id INT, year INT, attendance INT)");
    Exec("CREATE TABLE sports_meeting (id INT, stadium_id INT, year INT)");
    Exec("INSERT INTO stadium VALUES (1, 'Olympic', 80000, 'Beijing'), "
         "(2, 'National', 60000, 'Singapore'), (3, 'City Arena', 30000, 'Boston'), "
         "(4, 'River Park', 45000, 'London')");
    Exec("INSERT INTO concert VALUES (1, 1, 2014, 50000), (2, 1, 2015, 40000), "
         "(3, 2, 2014, 30000), (4, 3, 2015, 20000), (5, 1, 2014, 60000)");
    Exec("INSERT INTO sports_meeting VALUES (1, 2, 2015), (2, 3, 2015), (3, 4, 2014)");
  }

  void Exec(const std::string& sql) {
    auto r = db_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  data::Table Query(const std::string& sql) {
    auto r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : data::Table{};
  }

  Database db_;
};

TEST_F(SqlTest, SimpleSelect) {
  auto t = Query("SELECT name FROM stadium WHERE capacity > 50000");
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.NumColumns(), 1u);
}

TEST_F(SqlTest, SelectStar) {
  auto t = Query("SELECT * FROM stadium");
  EXPECT_EQ(t.NumRows(), 4u);
  EXPECT_EQ(t.NumColumns(), 4u);
  EXPECT_EQ(t.schema().column(1).name, "name");
}

TEST_F(SqlTest, Arithmetic) {
  auto t = Query("SELECT 1 + 2 * 3, 7 / 2, 7 % 3, -4");
  EXPECT_EQ(t.at(0, 0), Value::Int(7));
  EXPECT_DOUBLE_EQ(t.at(0, 1).AsDouble(), 3.5);
  EXPECT_EQ(t.at(0, 2), Value::Int(1));
  EXPECT_EQ(t.at(0, 3), Value::Int(-4));
}

TEST_F(SqlTest, OrderByAndLimit) {
  auto t = Query("SELECT name FROM stadium ORDER BY capacity DESC LIMIT 2");
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.at(0, 0).AsText(), "Olympic");
  EXPECT_EQ(t.at(1, 0).AsText(), "National");
}

TEST_F(SqlTest, OrderByOrdinalAndAlias) {
  auto t = Query("SELECT name AS n, capacity AS c FROM stadium ORDER BY c");
  EXPECT_EQ(t.at(0, 0).AsText(), "City Arena");
  auto t2 = Query("SELECT name, capacity FROM stadium ORDER BY 2 DESC");
  EXPECT_EQ(t2.at(0, 0).AsText(), "Olympic");
}

TEST_F(SqlTest, InnerJoin) {
  auto t = Query(
      "SELECT DISTINCT stadium.name FROM stadium JOIN concert "
      "ON stadium.id = concert.stadium_id WHERE concert.year = 2014");
  EXPECT_EQ(t.NumRows(), 2u);  // Olympic, National
}

TEST_F(SqlTest, LeftJoinPadsNulls) {
  auto t = Query(
      "SELECT s.name, c.id FROM stadium s LEFT JOIN concert c "
      "ON s.id = c.stadium_id ORDER BY s.id, c.id");
  // River Park has no concerts -> one padded row.
  bool found_null = false;
  for (size_t i = 0; i < t.NumRows(); ++i) {
    if (t.at(i, 0).AsText() == "River Park") {
      EXPECT_TRUE(t.at(i, 1).is_null());
      found_null = true;
    }
  }
  EXPECT_TRUE(found_null);
}

TEST_F(SqlTest, MultiJoinThreeTables) {
  auto t = Query(
      "SELECT DISTINCT s.name FROM stadium s "
      "JOIN concert c ON s.id = c.stadium_id "
      "JOIN sports_meeting m ON s.id = m.stadium_id");
  // Stadiums with both a concert and a sports meeting: National(2), City Arena(3).
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST_F(SqlTest, GroupByHaving) {
  auto t = Query(
      "SELECT stadium_id, COUNT(*) AS n, SUM(attendance) AS total "
      "FROM concert GROUP BY stadium_id HAVING COUNT(*) >= 2 ORDER BY n DESC");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.at(0, 0), Value::Int(1));
  EXPECT_EQ(t.at(0, 1), Value::Int(3));
  EXPECT_EQ(t.at(0, 2), Value::Int(150000));
}

TEST_F(SqlTest, AggregatesOverWholeTable) {
  auto t = Query(
      "SELECT COUNT(*), MIN(capacity), MAX(capacity), AVG(capacity) FROM stadium");
  EXPECT_EQ(t.at(0, 0), Value::Int(4));
  EXPECT_EQ(t.at(0, 1), Value::Int(30000));
  EXPECT_EQ(t.at(0, 2), Value::Int(80000));
  EXPECT_DOUBLE_EQ(t.at(0, 3).AsDouble(), 53750.0);
}

TEST_F(SqlTest, CountDistinct) {
  auto t = Query("SELECT COUNT(DISTINCT year) FROM concert");
  EXPECT_EQ(t.at(0, 0), Value::Int(2));
}

TEST_F(SqlTest, AggregateOnEmptyInput) {
  auto t = Query("SELECT COUNT(*), SUM(capacity) FROM stadium WHERE capacity > 999999");
  EXPECT_EQ(t.at(0, 0), Value::Int(0));
  EXPECT_TRUE(t.at(0, 1).is_null());
}

TEST_F(SqlTest, InSubquery) {
  auto t = Query(
      "SELECT name FROM stadium WHERE id IN "
      "(SELECT stadium_id FROM concert WHERE year = 2014)");
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST_F(SqlTest, NotInSubquery) {
  auto t = Query(
      "SELECT name FROM stadium WHERE id NOT IN "
      "(SELECT stadium_id FROM concert)");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.at(0, 0).AsText(), "River Park");
}

TEST_F(SqlTest, CorrelatedExists) {
  auto t = Query(
      "SELECT name FROM stadium s WHERE EXISTS "
      "(SELECT 1 FROM concert c WHERE c.stadium_id = s.id AND c.year = 2015)");
  EXPECT_EQ(t.NumRows(), 2u);  // Olympic, City Arena
}

TEST_F(SqlTest, ScalarSubquery) {
  auto t = Query(
      "SELECT name FROM stadium WHERE capacity = "
      "(SELECT MAX(capacity) FROM stadium)");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.at(0, 0).AsText(), "Olympic");
}

TEST_F(SqlTest, FromSubquery) {
  auto t = Query(
      "SELECT n FROM (SELECT name AS n, capacity FROM stadium) big "
      "WHERE big.capacity > 50000 ORDER BY n");
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.at(0, 0).AsText(), "National");
}

TEST_F(SqlTest, UnionDeduplicates) {
  auto t = Query(
      "SELECT stadium_id FROM concert WHERE year = 2014 UNION "
      "SELECT stadium_id FROM sports_meeting WHERE year = 2015");
  EXPECT_EQ(t.NumRows(), 3u);  // {1,2} U {2,3} = {1,2,3}
}

TEST_F(SqlTest, UnionAllKeepsDuplicates) {
  auto t = Query(
      "SELECT stadium_id FROM concert WHERE year = 2014 UNION ALL "
      "SELECT stadium_id FROM concert WHERE year = 2014");
  EXPECT_EQ(t.NumRows(), 6u);
}

TEST_F(SqlTest, IntersectAndExcept) {
  auto inter = Query(
      "SELECT stadium_id FROM concert INTERSECT "
      "SELECT stadium_id FROM sports_meeting");
  EXPECT_EQ(inter.NumRows(), 2u);  // 2 and 3
  auto except = Query(
      "SELECT stadium_id FROM concert EXCEPT "
      "SELECT stadium_id FROM sports_meeting");
  ASSERT_EQ(except.NumRows(), 1u);
  EXPECT_EQ(except.at(0, 0), Value::Int(1));
}

TEST_F(SqlTest, LikePatterns) {
  auto t = Query("SELECT name FROM stadium WHERE name LIKE '%ark%'");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.at(0, 0).AsText(), "River Park");
  auto t2 = Query("SELECT name FROM stadium WHERE name LIKE '_lympic'");
  EXPECT_EQ(t2.NumRows(), 1u);
  auto t3 = Query("SELECT name FROM stadium WHERE name NOT LIKE '%a%'");
  EXPECT_EQ(t3.NumRows(), 1u);  // Olympic only
}

TEST_F(SqlTest, BetweenAndInList) {
  auto t = Query("SELECT name FROM stadium WHERE capacity BETWEEN 40000 AND 70000");
  EXPECT_EQ(t.NumRows(), 2u);
  auto t2 = Query("SELECT name FROM stadium WHERE city IN ('Beijing', 'Boston')");
  EXPECT_EQ(t2.NumRows(), 2u);
  auto t3 = Query("SELECT name FROM stadium WHERE capacity NOT BETWEEN 40000 AND 70000");
  EXPECT_EQ(t3.NumRows(), 2u);
}

TEST_F(SqlTest, NullThreeValuedLogic) {
  Exec("CREATE TABLE t (a INT, b INT)");
  Exec("INSERT INTO t VALUES (1, NULL), (2, 5), (NULL, NULL)");
  // NULL comparisons exclude rows.
  EXPECT_EQ(Query("SELECT a FROM t WHERE b > 1").NumRows(), 1u);
  EXPECT_EQ(Query("SELECT a FROM t WHERE b IS NULL").NumRows(), 2u);
  EXPECT_EQ(Query("SELECT a FROM t WHERE b IS NOT NULL").NumRows(), 1u);
  // NULL-safe aggregates: COUNT(b) skips NULLs.
  auto t = Query("SELECT COUNT(*), COUNT(b), SUM(b) FROM t");
  EXPECT_EQ(t.at(0, 0), Value::Int(3));
  EXPECT_EQ(t.at(0, 1), Value::Int(1));
  EXPECT_EQ(t.at(0, 2), Value::Int(5));
  // x = NULL is never true, and NOT(NULL) stays NULL.
  EXPECT_EQ(Query("SELECT a FROM t WHERE b = NULL").NumRows(), 0u);
  EXPECT_EQ(Query("SELECT a FROM t WHERE NOT (b = NULL)").NumRows(), 0u);
}

TEST_F(SqlTest, CaseExpression) {
  auto t = Query(
      "SELECT name, CASE WHEN capacity >= 60000 THEN 'big' "
      "WHEN capacity >= 40000 THEN 'mid' ELSE 'small' END AS size "
      "FROM stadium ORDER BY capacity DESC");
  EXPECT_EQ(t.at(0, 1).AsText(), "big");
  EXPECT_EQ(t.at(2, 1).AsText(), "mid");
  EXPECT_EQ(t.at(3, 1).AsText(), "small");
}

TEST_F(SqlTest, ScalarFunctions) {
  auto t = Query(
      "SELECT UPPER('ab'), LOWER('AB'), LENGTH('abc'), ABS(-3), "
      "ROUND(3.14159, 2), SUBSTR('hello', 2, 3), COALESCE(NULL, 7), "
      "CONCAT('a', 'b', 'c')");
  EXPECT_EQ(t.at(0, 0).AsText(), "AB");
  EXPECT_EQ(t.at(0, 1).AsText(), "ab");
  EXPECT_EQ(t.at(0, 2), Value::Int(3));
  EXPECT_EQ(t.at(0, 3), Value::Int(3));
  EXPECT_DOUBLE_EQ(t.at(0, 4).AsDouble(), 3.14);
  EXPECT_EQ(t.at(0, 5).AsText(), "ell");
  EXPECT_EQ(t.at(0, 6), Value::Int(7));
  EXPECT_EQ(t.at(0, 7).AsText(), "abc");
}

TEST_F(SqlTest, DateLiteralsAndFunctions) {
  Exec("CREATE TABLE d (happened DATE)");
  Exec("INSERT INTO d VALUES (DATE '2023-08-14'), (DATE '2024-01-02')");
  auto t = Query("SELECT YEAR(happened), MONTH(happened), DAY(happened) "
                 "FROM d WHERE happened > DATE '2023-12-31'");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.at(0, 0), Value::Int(2024));
  EXPECT_EQ(t.at(0, 1), Value::Int(1));
  EXPECT_EQ(t.at(0, 2), Value::Int(2));
}

TEST_F(SqlTest, InsertUpdateDelete) {
  auto ins = db_.Execute("INSERT INTO stadium (id, name) VALUES (9, 'Tiny')");
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->affected_rows, 1);
  EXPECT_TRUE(Query("SELECT capacity FROM stadium WHERE id = 9").at(0, 0).is_null());

  auto upd = db_.Execute("UPDATE stadium SET capacity = 1000 WHERE id = 9");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd->affected_rows, 1);
  EXPECT_EQ(Query("SELECT capacity FROM stadium WHERE id = 9").at(0, 0),
            Value::Int(1000));

  auto del = db_.Execute("DELETE FROM stadium WHERE id = 9");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->affected_rows, 1);
  EXPECT_EQ(Query("SELECT * FROM stadium WHERE id = 9").NumRows(), 0u);
}

TEST_F(SqlTest, UpdateUsesOldValues) {
  Exec("CREATE TABLE acct (id INT, balance INT)");
  Exec("INSERT INTO acct VALUES (1, 100), (2, 50)");
  Exec("UPDATE acct SET balance = balance - 30 WHERE id = 1");
  EXPECT_EQ(Query("SELECT balance FROM acct WHERE id = 1").at(0, 0),
            Value::Int(70));
}

TEST_F(SqlTest, InsertSelect) {
  Exec("CREATE TABLE big_stadium (name TEXT, capacity INT)");
  Exec("INSERT INTO big_stadium SELECT name, capacity FROM stadium WHERE capacity > 50000");
  EXPECT_EQ(Query("SELECT * FROM big_stadium").NumRows(), 2u);
}

TEST_F(SqlTest, TransactionCommitAndRollback) {
  Exec("BEGIN");
  Exec("UPDATE stadium SET capacity = 0 WHERE id = 1");
  Exec("ROLLBACK");
  EXPECT_EQ(Query("SELECT capacity FROM stadium WHERE id = 1").at(0, 0),
            Value::Int(80000));

  Exec("BEGIN");
  Exec("UPDATE stadium SET capacity = 12345 WHERE id = 1");
  Exec("COMMIT");
  EXPECT_EQ(Query("SELECT capacity FROM stadium WHERE id = 1").at(0, 0),
            Value::Int(12345));
}

TEST_F(SqlTest, FailedStatementAbortsTransaction) {
  Exec("BEGIN");
  Exec("UPDATE stadium SET capacity = 0 WHERE id = 1");
  EXPECT_FALSE(db_.Execute("UPDATE nonexistent SET x = 1").ok());
  EXPECT_FALSE(db_.in_transaction());
  EXPECT_EQ(Query("SELECT capacity FROM stadium WHERE id = 1").at(0, 0),
            Value::Int(80000));
}

TEST_F(SqlTest, ExecuteAtomically) {
  auto ok = db_.ExecuteAtomically({
      "UPDATE stadium SET capacity = capacity + 1 WHERE id = 1",
      "UPDATE stadium SET capacity = capacity + 1 WHERE id = 2",
  });
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto bad = db_.ExecuteAtomically({
      "UPDATE stadium SET capacity = 0 WHERE id = 1",
      "UPDATE missing_table SET x = 0",
  });
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(Query("SELECT capacity FROM stadium WHERE id = 1").at(0, 0),
            Value::Int(80001));
}

TEST_F(SqlTest, ErrorsSurfaceAsStatuses) {
  EXPECT_FALSE(db_.Execute("SELECT FROM WHERE").ok());
  EXPECT_FALSE(db_.Execute("SELECT missing_col FROM stadium").ok());
  EXPECT_FALSE(db_.Execute("SELECT * FROM missing_table").ok());
  EXPECT_FALSE(db_.Execute("SELECT name + 1 FROM stadium").ok());
  EXPECT_FALSE(db_.Execute("CREATE TABLE stadium (x INT)").ok());
}

TEST_F(SqlTest, AmbiguousColumnRejected) {
  EXPECT_FALSE(
      db_.Query("SELECT id FROM stadium, concert").ok());
}

TEST_F(SqlTest, DivisionByZeroYieldsNull) {
  auto t = Query("SELECT 1 / 0");
  EXPECT_TRUE(t.at(0, 0).is_null());
}

TEST_F(SqlTest, AstRoundTripsThroughToString) {
  const std::string queries[] = {
      "SELECT name FROM stadium WHERE capacity > 50000",
      "SELECT DISTINCT s.name FROM stadium s JOIN concert c ON s.id = c.stadium_id",
      "SELECT stadium_id, COUNT(*) FROM concert GROUP BY stadium_id HAVING COUNT(*) > 1",
      "SELECT name FROM stadium WHERE id IN (SELECT stadium_id FROM concert) ORDER BY name DESC LIMIT 3",
      "SELECT stadium_id FROM concert UNION SELECT stadium_id FROM sports_meeting",
  };
  for (const auto& q : queries) {
    auto parsed = ParseSelect(q);
    ASSERT_TRUE(parsed.ok()) << q;
    std::string printed = (*parsed)->ToString();
    auto reparsed = ParseSelect(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    auto a = db_.Query(q);
    auto b = db_.Query(printed);
    ASSERT_TRUE(a.ok() && b.ok()) << printed;
    EXPECT_TRUE(a->BagEquals(*b)) << q << " vs " << printed;
  }
}

TEST_F(SqlTest, PaperQ1UnionSemantics) {
  // Q1: stadiums with concerts in 2014 OR sports meetings in 2015.
  auto t = Query(
      "SELECT name FROM stadium WHERE id IN (SELECT stadium_id FROM concert "
      "WHERE year = 2014) OR id IN (SELECT stadium_id FROM sports_meeting "
      "WHERE year = 2015)");
  EXPECT_EQ(t.NumRows(), 3u);  // Olympic, National, City Arena
}

TEST_F(SqlTest, PaperQ5ExceptSemantics) {
  // Q5: concerts 2014 but no sports meetings 2015.
  auto t = Query(
      "SELECT name FROM stadium WHERE id IN (SELECT stadium_id FROM concert "
      "WHERE year = 2014) AND id NOT IN (SELECT stadium_id FROM "
      "sports_meeting WHERE year = 2015)");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.at(0, 0).AsText(), "Olympic");
}

}  // namespace
}  // namespace llmdm::sql
