// Failure-injection and fuzz-flavoured robustness tests: every parser and
// engine entry point must return a Status on malformed input — never crash,
// never loop — and transactional surfaces must keep their invariants when
// statements fail mid-flight.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "data/csv.h"
#include "data/json.h"
#include "data/nl2sql_workload.h"
#include "data/qa_workload.h"
#include "data/txn_workload.h"
#include "data/xml.h"
#include "sql/database.h"
#include "sql/parser.h"

namespace llmdm {
namespace {

// Mutates a valid input string: deletions, duplications, substitutions.
std::string Mutate(const std::string& input, common::Rng& rng) {
  std::string out = input;
  int64_t edits = rng.UniformInt(1, 5);
  for (int64_t e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng.NextBelow(out.size());
    switch (rng.NextBelow(4)) {
      case 0:
        out.erase(pos, 1);
        break;
      case 1:
        out.insert(pos, 1, out[pos]);
        break;
      case 2:
        out[pos] = static_cast<char>(rng.UniformInt(32, 126));
        break;
      default: {
        // Splice a random chunk somewhere else.
        size_t len = std::min<size_t>(out.size() - pos, rng.NextBelow(8) + 1);
        std::string chunk = out.substr(pos, len);
        out.insert(rng.NextBelow(out.size()), chunk);
        break;
      }
    }
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, SqlParserNeverCrashes) {
  common::Rng rng(GetParam());
  const std::string seeds[] = {
      "SELECT name FROM stadium WHERE capacity > 50000 ORDER BY name LIMIT 3",
      "SELECT s.name, COUNT(*) FROM stadium s JOIN concert c ON s.id = "
      "c.stadium_id GROUP BY s.name HAVING COUNT(*) > 1",
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
      "UPDATE t SET a = a + 1 WHERE b BETWEEN 1 AND 9",
      "SELECT CASE WHEN a IS NULL THEN 'n' ELSE 'y' END FROM t",
      "SELECT * FROM (SELECT a FROM t) x WHERE a IN (SELECT b FROM u)",
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(seeds[rng.NextBelow(std::size(seeds))], rng);
    // Must return (ok or error), not crash/hang.
    auto result = sql::ParseStatement(mutated);
    if (result.ok()) {
      // Whatever parsed must unparse and re-parse.
      EXPECT_TRUE(sql::ParseStatement(result->ToString()).ok())
          << result->ToString();
    }
  }
}

TEST_P(FuzzTest, SqlExecutorNeverCrashesOnParseableGarbage) {
  common::Rng rng(GetParam() + 10);
  sql::Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    data::BuildStadiumDatabaseScript(8, {2014, 2015}, rng))
                  .ok());
  const std::string seeds[] = {
      "SELECT name FROM stadium WHERE capacity > 50000",
      "SELECT stadium_id, SUM(attendance) FROM concert GROUP BY stadium_id",
      "SELECT name FROM stadium WHERE id IN (SELECT stadium_id FROM concert)",
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = Mutate(seeds[rng.NextBelow(std::size(seeds))], rng);
    auto result = db.Execute(mutated);  // may fail; must not crash
    (void)result;
  }
  // The database must still be intact afterwards.
  auto check = db.Query("SELECT COUNT(*) FROM stadium");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->at(0, 0), data::Value::Int(8));
}

TEST_P(FuzzTest, JsonParserNeverCrashes) {
  common::Rng rng(GetParam() + 20);
  const std::string seeds[] = {
      R"({"a": [1, 2.5, "x"], "b": {"c": null, "d": true}})",
      R"([{"k": "v"}, {"k": "w"}, 3, "tail"])",
      "\"escaped \\\"quotes\\\" and \\u00e9\"",
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(seeds[rng.NextBelow(std::size(seeds))], rng);
    auto result = data::ParseJson(mutated);
    if (result.ok()) {
      // Round-trip property on anything that still parses.
      auto again = data::ParseJson(result->ToString());
      EXPECT_TRUE(again.ok()) << result->ToString();
    }
  }
}

TEST_P(FuzzTest, XmlParserNeverCrashes) {
  common::Rng rng(GetParam() + 30);
  const std::string seeds[] = {
      "<a b=\"1\"><c>text &amp; entities</c><d/></a>",
      "<reports><report id=\"1\"><x>1</x></report><!-- note --></reports>",
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(seeds[rng.NextBelow(std::size(seeds))], rng);
    auto result = data::ParseXml(mutated);
    (void)result;
  }
}

TEST_P(FuzzTest, CsvParserNeverCrashes) {
  common::Rng rng(GetParam() + 40);
  const std::string seeds[] = {
      "a,b,c\n1,2,3\n4,,6\n",
      "name,date\n\"x,y\",2023-08-14\n\"he said \"\"hi\"\"\",2024-01-01\n",
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(seeds[rng.NextBelow(std::size(seeds))], rng);
    auto result = data::ParseCsv(mutated);
    (void)result;
  }
}

TEST_P(FuzzTest, WorkloadParsersNeverCrash) {
  common::Rng rng(GetParam() + 50);
  const std::string seeds[] = {
      "What are the names of stadiums that had concerts in 2014 or had "
      "sports meetings in 2015?",
      "Who is the manager of the advisor of Alice Adams?",
      "Transfer 100 dollars from A to B. Then transfer 5 dollars from B to C.",
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(seeds[rng.NextBelow(std::size(seeds))], rng);
    (void)data::ParseNl2SqlQuestion(mutated);
    (void)data::ParseChainQuestion(mutated);
    (void)data::ParseTxnRequest(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(101, 202, 303));

// ---- failure injection on the transactional surface ------------------------

TEST(FailureInjection, MidScriptFailureLeavesCleanState) {
  sql::Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    data::BuildAccountsDatabaseScript({"A", "B"}, 100))
                  .ok());
  // Sequences with a failure at every position: state must always be
  // all-or-nothing.
  std::vector<std::string> good = data::TxnToSql(
      data::TxnRequest{{data::TransferSpec{"A", "B", 30}}});
  for (size_t failure_at = 0; failure_at <= good.size(); ++failure_at) {
    std::vector<std::string> script = good;
    if (failure_at < good.size()) {
      script.insert(script.begin() + static_cast<long>(failure_at),
                    "UPDATE missing_table SET x = 1");
    }
    auto result = db.ExecuteAtomically(script);
    auto total = db.Query("SELECT SUM(balance) FROM accounts");
    ASSERT_TRUE(total.ok());
    EXPECT_EQ(total->at(0, 0), data::Value::Int(200));
    auto a = db.Query("SELECT balance FROM accounts WHERE owner = 'A'");
    if (failure_at < good.size()) {
      EXPECT_FALSE(result.ok());
      // Rolled back: A unchanged from the previous committed state.
    } else {
      EXPECT_TRUE(result.ok());
    }
    // Reset A/B for the next round.
    ASSERT_TRUE(db.Execute("UPDATE accounts SET balance = 100").ok());
  }
}

TEST(FailureInjection, TransactionSurvivesParseErrors) {
  sql::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(db.ExecuteAtomically({"UPDATE t SET a = 2",
                                     "THIS IS NOT SQL AT ALL"})
                   .ok());
  EXPECT_FALSE(db.in_transaction());
  EXPECT_EQ(db.Query("SELECT a FROM t")->at(0, 0), data::Value::Int(1));
}

TEST(FailureInjection, DdlInsideTransactionRollsBack) {
  sql::Database db;
  ASSERT_TRUE(db.Execute("BEGIN").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE temp_t (x INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO temp_t VALUES (1)").ok());
  ASSERT_TRUE(db.Execute("ROLLBACK").ok());
  // The table created inside the transaction is gone.
  EXPECT_FALSE(db.catalog().HasTable("temp_t"));
}

TEST(FailureInjection, DropInsideTransactionRestoredOnRollback) {
  sql::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE keeper (x INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO keeper VALUES (7)").ok());
  ASSERT_TRUE(db.Execute("BEGIN").ok());
  ASSERT_TRUE(db.Execute("DROP TABLE keeper").ok());
  EXPECT_FALSE(db.catalog().HasTable("keeper"));
  ASSERT_TRUE(db.Execute("ROLLBACK").ok());
  ASSERT_TRUE(db.catalog().HasTable("keeper"));
  EXPECT_EQ(db.Query("SELECT x FROM keeper")->at(0, 0), data::Value::Int(7));
}

}  // namespace
}  // namespace llmdm
