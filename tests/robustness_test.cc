// Failure-injection and fuzz-flavoured robustness tests: every parser and
// engine entry point must return a Status on malformed input — never crash,
// never loop — and transactional surfaces must keep their invariants when
// statements fail mid-flight. The second half exercises the LLM endpoint
// resilience layer (FaultInjectingLlm / ResilientLlm / CircuitBreaker) and
// the graceful degradation it buys the cascade and the pipeline.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/optimize/cascade.h"
#include "core/optimize/semantic_cache.h"
#include "core/pipeline.h"
#include "data/csv.h"
#include "data/json.h"
#include "data/nl2sql_workload.h"
#include "data/qa_workload.h"
#include "data/txn_workload.h"
#include "data/xml.h"
#include "llm/deadline.h"
#include "llm/fault_injection.h"
#include "llm/resilient.h"
#include "llm/simulated.h"
#include "serve/qos.h"
#include "serve/server.h"
#include "sql/database.h"
#include "sql/parser.h"

namespace llmdm {
namespace {

// Mutates a valid input string: deletions, duplications, substitutions.
std::string Mutate(const std::string& input, common::Rng& rng) {
  std::string out = input;
  int64_t edits = rng.UniformInt(1, 5);
  for (int64_t e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng.NextBelow(out.size());
    switch (rng.NextBelow(4)) {
      case 0:
        out.erase(pos, 1);
        break;
      case 1:
        out.insert(pos, 1, out[pos]);
        break;
      case 2:
        out[pos] = static_cast<char>(rng.UniformInt(32, 126));
        break;
      default: {
        // Splice a random chunk somewhere else.
        size_t len = std::min<size_t>(out.size() - pos, rng.NextBelow(8) + 1);
        std::string chunk = out.substr(pos, len);
        out.insert(rng.NextBelow(out.size()), chunk);
        break;
      }
    }
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, SqlParserNeverCrashes) {
  common::Rng rng(GetParam());
  const std::string seeds[] = {
      "SELECT name FROM stadium WHERE capacity > 50000 ORDER BY name LIMIT 3",
      "SELECT s.name, COUNT(*) FROM stadium s JOIN concert c ON s.id = "
      "c.stadium_id GROUP BY s.name HAVING COUNT(*) > 1",
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
      "UPDATE t SET a = a + 1 WHERE b BETWEEN 1 AND 9",
      "SELECT CASE WHEN a IS NULL THEN 'n' ELSE 'y' END FROM t",
      "SELECT * FROM (SELECT a FROM t) x WHERE a IN (SELECT b FROM u)",
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(seeds[rng.NextBelow(std::size(seeds))], rng);
    // Must return (ok or error), not crash/hang.
    auto result = sql::ParseStatement(mutated);
    if (result.ok()) {
      // Whatever parsed must unparse and re-parse.
      EXPECT_TRUE(sql::ParseStatement(result->ToString()).ok())
          << result->ToString();
    }
  }
}

TEST_P(FuzzTest, SqlExecutorNeverCrashesOnParseableGarbage) {
  common::Rng rng(GetParam() + 10);
  sql::Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    data::BuildStadiumDatabaseScript(8, {2014, 2015}, rng))
                  .ok());
  const std::string seeds[] = {
      "SELECT name FROM stadium WHERE capacity > 50000",
      "SELECT stadium_id, SUM(attendance) FROM concert GROUP BY stadium_id",
      "SELECT name FROM stadium WHERE id IN (SELECT stadium_id FROM concert)",
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = Mutate(seeds[rng.NextBelow(std::size(seeds))], rng);
    auto result = db.Execute(mutated);  // may fail; must not crash
    (void)result;
  }
  // The database must still be intact afterwards.
  auto check = db.Query("SELECT COUNT(*) FROM stadium");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->at(0, 0), data::Value::Int(8));
}

TEST_P(FuzzTest, JsonParserNeverCrashes) {
  common::Rng rng(GetParam() + 20);
  const std::string seeds[] = {
      R"({"a": [1, 2.5, "x"], "b": {"c": null, "d": true}})",
      R"([{"k": "v"}, {"k": "w"}, 3, "tail"])",
      "\"escaped \\\"quotes\\\" and \\u00e9\"",
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(seeds[rng.NextBelow(std::size(seeds))], rng);
    auto result = data::ParseJson(mutated);
    if (result.ok()) {
      // Round-trip property on anything that still parses.
      auto again = data::ParseJson(result->ToString());
      EXPECT_TRUE(again.ok()) << result->ToString();
    }
  }
}

TEST_P(FuzzTest, XmlParserNeverCrashes) {
  common::Rng rng(GetParam() + 30);
  const std::string seeds[] = {
      "<a b=\"1\"><c>text &amp; entities</c><d/></a>",
      "<reports><report id=\"1\"><x>1</x></report><!-- note --></reports>",
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(seeds[rng.NextBelow(std::size(seeds))], rng);
    auto result = data::ParseXml(mutated);
    (void)result;
  }
}

TEST_P(FuzzTest, CsvParserNeverCrashes) {
  common::Rng rng(GetParam() + 40);
  const std::string seeds[] = {
      "a,b,c\n1,2,3\n4,,6\n",
      "name,date\n\"x,y\",2023-08-14\n\"he said \"\"hi\"\"\",2024-01-01\n",
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(seeds[rng.NextBelow(std::size(seeds))], rng);
    auto result = data::ParseCsv(mutated);
    (void)result;
  }
}

TEST_P(FuzzTest, WorkloadParsersNeverCrash) {
  common::Rng rng(GetParam() + 50);
  const std::string seeds[] = {
      "What are the names of stadiums that had concerts in 2014 or had "
      "sports meetings in 2015?",
      "Who is the manager of the advisor of Alice Adams?",
      "Transfer 100 dollars from A to B. Then transfer 5 dollars from B to C.",
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = Mutate(seeds[rng.NextBelow(std::size(seeds))], rng);
    (void)data::ParseNl2SqlQuestion(mutated);
    (void)data::ParseChainQuestion(mutated);
    (void)data::ParseTxnRequest(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(101, 202, 303));

// ---- failure injection on the transactional surface ------------------------

TEST(FailureInjection, MidScriptFailureLeavesCleanState) {
  sql::Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    data::BuildAccountsDatabaseScript({"A", "B"}, 100))
                  .ok());
  // Sequences with a failure at every position: state must always be
  // all-or-nothing.
  std::vector<std::string> good = data::TxnToSql(
      data::TxnRequest{{data::TransferSpec{"A", "B", 30}}});
  for (size_t failure_at = 0; failure_at <= good.size(); ++failure_at) {
    std::vector<std::string> script = good;
    if (failure_at < good.size()) {
      script.insert(script.begin() + static_cast<long>(failure_at),
                    "UPDATE missing_table SET x = 1");
    }
    auto result = db.ExecuteAtomically(script);
    auto total = db.Query("SELECT SUM(balance) FROM accounts");
    ASSERT_TRUE(total.ok());
    EXPECT_EQ(total->at(0, 0), data::Value::Int(200));
    auto a = db.Query("SELECT balance FROM accounts WHERE owner = 'A'");
    if (failure_at < good.size()) {
      EXPECT_FALSE(result.ok());
      // Rolled back: A unchanged from the previous committed state.
    } else {
      EXPECT_TRUE(result.ok());
    }
    // Reset A/B for the next round.
    ASSERT_TRUE(db.Execute("UPDATE accounts SET balance = 100").ok());
  }
}

TEST(FailureInjection, TransactionSurvivesParseErrors) {
  sql::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(db.ExecuteAtomically({"UPDATE t SET a = 2",
                                     "THIS IS NOT SQL AT ALL"})
                   .ok());
  EXPECT_FALSE(db.in_transaction());
  EXPECT_EQ(db.Query("SELECT a FROM t")->at(0, 0), data::Value::Int(1));
}

TEST(FailureInjection, DdlInsideTransactionRollsBack) {
  sql::Database db;
  ASSERT_TRUE(db.Execute("BEGIN").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE temp_t (x INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO temp_t VALUES (1)").ok());
  ASSERT_TRUE(db.Execute("ROLLBACK").ok());
  // The table created inside the transaction is gone.
  EXPECT_FALSE(db.catalog().HasTable("temp_t"));
}

TEST(FailureInjection, DropInsideTransactionRestoredOnRollback) {
  sql::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE keeper (x INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO keeper VALUES (7)").ok());
  ASSERT_TRUE(db.Execute("BEGIN").ok());
  ASSERT_TRUE(db.Execute("DROP TABLE keeper").ok());
  EXPECT_FALSE(db.catalog().HasTable("keeper"));
  ASSERT_TRUE(db.Execute("ROLLBACK").ok());
  ASSERT_TRUE(db.catalog().HasTable("keeper"));
  EXPECT_EQ(db.Query("SELECT x FROM keeper")->at(0, 0), data::Value::Int(7));
}

// ---- LLM endpoint resilience ------------------------------------------------

// A fast single-skill model for resilience tests; two instances built with
// the same arguments complete identically, which is what makes the
// "converges to the fault-free answer" assertions exact.
std::shared_ptr<llm::SimulatedLlm> MakeTestModel(uint64_t seed = 1) {
  llm::ModelSpec spec;
  spec.name = "sim-test";
  spec.capability = 0.9;
  spec.input_price_per_1k = common::Money::FromDollars(0.001);
  spec.output_price_per_1k = common::Money::FromDollars(0.002);
  spec.latency_ms_per_1k_tokens = 100.0;
  auto model = std::make_shared<llm::SimulatedLlm>(spec, seed);
  model->RegisterSkill(std::make_unique<llm::FreeformSkill>());
  return model;
}

llm::FaultProfile TransportOnlyProfile(double rate) {
  llm::FaultProfile p;
  p.rate_limit = 0.4 * rate;
  p.timeout = 0.3 * rate;
  p.unavailable = 0.2 * rate;
  p.truncate = 0.1 * rate;  // detectable, hence retryable
  return p;
}

llm::FaultProfile AlwaysDownProfile() {
  llm::FaultProfile p;
  p.unavailable = 1.0;
  return p;
}

TEST(FaultInjection, SameSeedSameSchedule) {
  auto run = [](uint64_t seed) {
    llm::FaultInjectingLlm faulty(MakeTestModel(), llm::FaultProfile::Uniform(0.4),
                                  seed);
    std::string log;
    for (int i = 0; i < 150; ++i) {
      auto c = faulty.Complete(
          llm::MakePrompt("freeform", common::StrFormat("query %d", i % 40)));
      if (c.ok()) {
        log += c->text + (c->truncated ? "|T\n" : "|ok\n");
      } else {
        log += c.status().ToString() + "\n";
      }
    }
    return log;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // the schedule really is seed-driven
}

TEST(FaultInjection, RespectsConfiguredRateRoughly) {
  llm::FaultInjectingLlm faulty(MakeTestModel(),
                                llm::FaultProfile::Uniform(0.2), 11);
  for (int i = 0; i < 400; ++i) {
    (void)faulty.Complete(
        llm::MakePrompt("freeform", common::StrFormat("query %d", i)));
  }
  const llm::FaultStats& stats = faulty.stats();
  EXPECT_EQ(stats.calls, 400u);
  // 20% of 400 = 80 expected faults; allow a wide deterministic band.
  EXPECT_GE(stats.injected(), 45u);
  EXPECT_LE(stats.injected(), 125u);
  EXPECT_GT(stats.rate_limited, 0u);
  EXPECT_GT(stats.timeouts, 0u);
}

TEST(FaultInjection, RetryOfSamePromptIsAFreshDraw) {
  llm::FaultInjectingLlm faulty(MakeTestModel(), AlwaysDownProfile(), 3);
  llm::Prompt p = llm::MakePrompt("freeform", "same prompt");
  EXPECT_FALSE(faulty.Complete(p).ok());
  faulty.ResetSchedule();
  llm::FaultProfile half;
  half.unavailable = 0.5;
  llm::FaultInjectingLlm flaky(MakeTestModel(), half, 3);
  // With a 50% fault rate, repeated attempts at the same prompt must not
  // all share one fate: some draw in each direction within a few tries.
  bool saw_ok = false, saw_fail = false;
  for (int i = 0; i < 16; ++i) {
    if (flaky.Complete(p).ok()) {
      saw_ok = true;
    } else {
      saw_fail = true;
    }
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_fail);
}

class FaultRateSweep : public ::testing::TestWithParam<int> {};

// Satellite (a): ResilientLlm converges to the fault-free answer for fault
// rates <= 30%.
TEST_P(FaultRateSweep, ResilientConvergesToFaultFreeAnswer) {
  const double rate = GetParam() / 100.0;
  auto reference = MakeTestModel();
  auto faulty = std::make_shared<llm::FaultInjectingLlm>(
      MakeTestModel(), TransportOnlyProfile(rate), 21);
  llm::ResilientLlm::Options options;
  options.retry.max_attempts = 8;
  options.retry.initial_backoff_ms = 10.0;
  options.seed = 5;
  // No fallback is configured, so shed load cannot be served elsewhere:
  // disable the breaker to measure pure retry convergence (the ablation
  // bench covers the breaker+fallback interaction).
  options.breaker.min_samples = 1u << 20;
  llm::ResilientLlm resilient(faulty, options);
  llm::UsageMeter meter;
  for (int i = 0; i < 50; ++i) {
    llm::Prompt p =
        llm::MakePrompt("freeform", common::StrFormat("query %d", i));
    auto expected = reference->Complete(p);
    ASSERT_TRUE(expected.ok());
    auto got = resilient.CompleteMetered(p, &meter);
    ASSERT_TRUE(got.ok()) << "rate=" << rate << " i=" << i << ": "
                          << got.status().ToString();
    EXPECT_EQ(got->text, expected->text) << "rate=" << rate << " i=" << i;
    EXPECT_FALSE(got->truncated);
  }
  // Retry spend scales with the fault rate and is visible in the meter.
  if (rate > 0.0) {
    EXPECT_GT(meter.retry_stats().retries, 0u);
  }
  EXPECT_GE(meter.retry_stats().attempts, 50u);
}

INSTANTIATE_TEST_SUITE_P(Rates, FaultRateSweep,
                         ::testing::Values(0, 5, 10, 20, 30));

// Satellite (b): the breaker opens and half-opens at the configured
// thresholds (driven directly with a manual simulated clock).
TEST(CircuitBreakerTest, OpensHalfOpensAndRecloses) {
  llm::CircuitBreaker::Options options;
  options.window = 8;
  options.min_samples = 4;
  options.failure_threshold = 0.5;
  options.open_cooldown_ms = 1000.0;
  options.half_open_successes = 2;
  llm::CircuitBreaker breaker(options);

  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kClosed);
  breaker.RecordFailure(10.0);
  breaker.RecordFailure(20.0);
  breaker.RecordFailure(30.0);
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kClosed)
      << "must not judge before min_samples";
  breaker.RecordFailure(40.0);
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_FALSE(breaker.Allow(500.0));
  EXPECT_TRUE(breaker.Allow(1040.0 + 1.0));  // cooldown elapsed
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess(1100.0);
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess(1200.0);
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kClosed);

  // A failed half-open probe re-opens immediately.
  breaker.RecordFailure(1300.0);
  breaker.RecordFailure(1310.0);
  breaker.RecordFailure(1320.0);
  breaker.RecordFailure(1330.0);
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kOpen);
  ASSERT_TRUE(breaker.Allow(2400.0));
  breaker.RecordFailure(2400.0);
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 3u);
}

TEST(ResilientLlmTest, BreakerShedsLoadAndFallbackServes) {
  auto dead = std::make_shared<llm::FaultInjectingLlm>(
      MakeTestModel(), AlwaysDownProfile(), 13);
  llm::ResilientLlm::Options options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 10.0;
  options.breaker.min_samples = 4;
  options.breaker.window = 8;
  options.seed = 2;
  llm::ResilientLlm resilient(dead, options);
  resilient.AddFallbackModel(MakeTestModel(99));
  llm::UsageMeter meter;
  for (int i = 0; i < 10; ++i) {
    auto c = resilient.CompleteMetered(
        llm::MakePrompt("freeform", common::StrFormat("query %d", i)), &meter);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    EXPECT_EQ(c->model, "sim-test");
  }
  const auto& stats = meter.retry_stats();
  EXPECT_EQ(stats.fallbacks, 10u);
  EXPECT_GE(stats.circuit_opens, 1u);
  EXPECT_GT(stats.circuit_rejections, 0u);
  // The breaker must have saved most of the doomed retry attempts.
  EXPECT_LT(stats.attempts, 30u);
}

TEST(ResilientLlmTest, DeadlineBoundsModelLatency) {
  // Satellite fix: ModelSpec::latency_ms_per_1k_tokens is enforced. This
  // model "answers" but at ~1000ms per token — far beyond the deadline.
  llm::ModelSpec slow;
  slow.name = "sim-sloth";
  slow.capability = 0.9;
  slow.latency_ms_per_1k_tokens = 1e6;
  auto sloth = std::make_shared<llm::SimulatedLlm>(slow, 1);
  sloth->RegisterSkill(std::make_unique<llm::FreeformSkill>());

  llm::ResilientLlm::Options options;
  options.call_deadline_ms = 200.0;
  llm::ResilientLlm resilient(sloth, options);
  auto c = resilient.Complete(llm::MakePrompt("freeform", "any question"));
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), common::StatusCode::kTimeout);
  EXPECT_GE(resilient.stats().deadline_exceeded, 1u);

  // With a fast fallback rung the same call degrades instead of failing.
  llm::ResilientLlm with_fallback(sloth, options);
  with_fallback.AddFallbackModel(MakeTestModel());
  auto c2 = with_fallback.Complete(llm::MakePrompt("freeform", "any question"));
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c2->model, "sim-test");
  EXPECT_EQ(with_fallback.stats().fallbacks, 1u);
}

TEST(ResilientLlmTest, TruncationRetriedThenServedAsLastResort) {
  llm::FaultProfile always_truncate;
  always_truncate.truncate = 1.0;
  auto clipped = std::make_shared<llm::FaultInjectingLlm>(
      MakeTestModel(), always_truncate, 17);
  llm::ResilientLlm::Options options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 10.0;
  llm::ResilientLlm resilient(clipped, options);
  auto c = resilient.Complete(llm::MakePrompt("freeform", "clip me"));
  // Every attempt is truncated, so the clipped answer is still served —
  // degraded beats unavailable — and flagged as such.
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->truncated);
  EXPECT_EQ(resilient.stats().attempts, 3u);
}

TEST(ResilientLlmTest, StaleCacheServesWhenEverythingIsDown) {
  optimize::SemanticCache cache(optimize::SemanticCache::Options{});
  cache.Insert("what is the close rate", "42 per day");
  auto dead = std::make_shared<llm::FaultInjectingLlm>(
      MakeTestModel(), AlwaysDownProfile(), 19);
  llm::ResilientLlm::Options options;
  options.retry.max_attempts = 2;
  llm::ResilientLlm resilient(dead, options);
  resilient.set_cache_fallback(
      optimize::MakeStaleCacheFallback(&cache, "sim-test", 0.75));
  auto c = resilient.Complete(llm::MakePrompt("freeform",
                                              "what is the close rate"));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->text, "42 per day");
  EXPECT_EQ(c->model, "sim-test+stale-cache");
  EXPECT_EQ(resilient.stats().stale_serves, 1u);
  EXPECT_EQ(c->cost, common::Money::Zero());
}

TEST(ResilientLlmTest, PermanentErrorsAreNotRetried) {
  // No skill registered for the tag and no freeform fallback: the model
  // returns kUnimplemented, which retrying cannot cure.
  llm::ModelSpec spec;
  spec.name = "sim-empty";
  auto empty = std::make_shared<llm::SimulatedLlm>(spec, 1);
  llm::ResilientLlm::Options options;
  options.retry.max_attempts = 5;
  llm::ResilientLlm resilient(empty, options);
  auto c = resilient.Complete(llm::MakePrompt("qa", "anything"));
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), common::StatusCode::kUnimplemented);
  EXPECT_EQ(resilient.stats().attempts, 1u);
  EXPECT_EQ(resilient.stats().retries, 0u);
}

// Satellite (c): same seed => identical fault schedule, retries, answers.
TEST(ResilientLlmTest, DeterministicEndToEnd) {
  auto run = []() {
    auto faulty = std::make_shared<llm::FaultInjectingLlm>(
        MakeTestModel(), TransportOnlyProfile(0.3), 23);
    llm::ResilientLlm::Options options;
    options.retry.max_attempts = 6;
    options.retry.initial_backoff_ms = 10.0;
    options.seed = 9;
    llm::ResilientLlm resilient(faulty, options);
    resilient.AddFallbackModel(MakeTestModel(55));
    llm::UsageMeter meter;
    std::string log;
    for (int i = 0; i < 30; ++i) {
      auto c = resilient.CompleteMetered(
          llm::MakePrompt("freeform", common::StrFormat("query %d", i)),
          &meter);
      log += c.ok() ? c->text : c.status().ToString();
      log += "\n";
    }
    log += meter.retry_stats().ToString();
    log += " cost=" + meter.cost().ToString(6);
    log += common::StrFormat(" clock=%.3f", resilient.clock_ms());
    return log;
  };
  EXPECT_EQ(run(), run());
}

TEST(CascadeResilience, SurvivesMidLadderRungFailure) {
  common::Rng rng(404);
  data::KnowledgeBase kb = data::KnowledgeBase::Generate(40, rng);
  auto ladder = llm::CreatePaperModelLadder(&kb, 1);
  // Kill the middle rung outright.
  ladder[1] = std::make_shared<llm::FaultInjectingLlm>(
      ladder[1], AlwaysDownProfile(), 31);
  auto workload = data::GenerateQaWorkload(kb, 10, {0.2, 0.4, 0.4}, rng);
  optimize::LlmCascade::Options options;
  options.accept_threshold = 0.95;  // force escalation through the dead rung
  optimize::LlmCascade cascade(ladder, options);
  size_t failed_steps = 0;
  for (const auto& item : workload) {
    auto r = cascade.Run(llm::MakePrompt("qa", item.question));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->answer.empty());
    for (const auto& step : r->trace) {
      if (step.failed) {
        ++failed_steps;
        EXPECT_EQ(step.model, ladder[1]->name());
        EXPECT_FALSE(step.error.empty());
      }
    }
  }
  EXPECT_GT(failed_steps, 0u);
}

TEST(CascadeResilience, DegradedAnswerWhenTopRungDown) {
  common::Rng rng(405);
  data::KnowledgeBase kb = data::KnowledgeBase::Generate(40, rng);
  auto ladder = llm::CreatePaperModelLadder(&kb, 1);
  ladder.back() = std::make_shared<llm::FaultInjectingLlm>(
      ladder.back(), AlwaysDownProfile(), 37);
  optimize::LlmCascade::Options options;
  options.accept_threshold = 1.5;  // nothing can accept on merit
  optimize::LlmCascade cascade(ladder, options);
  auto workload = data::GenerateQaWorkload(kb, 5, {0.4, 0.4, 0.2}, rng);
  for (const auto& item : workload) {
    auto r = cascade.Run(llm::MakePrompt("qa", item.question));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->degraded);
    EXPECT_FALSE(r->answer.empty());
    EXPECT_NE(r->model, ladder.back()->name());
    EXPECT_EQ(r->rungs_failed, 1u);
  }
}

TEST(CascadeResilience, AllRungsDownIsAnError) {
  common::Rng rng(406);
  data::KnowledgeBase kb = data::KnowledgeBase::Generate(20, rng);
  auto ladder = llm::CreatePaperModelLadder(&kb, 1);
  for (auto& rung : ladder) {
    rung = std::make_shared<llm::FaultInjectingLlm>(rung, AlwaysDownProfile(),
                                                    41);
  }
  optimize::LlmCascade cascade(ladder, optimize::LlmCascade::Options{});
  auto r = cascade.Run(llm::MakePrompt("qa", "who is anyone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(common::IsTransientError(r.status().code()));
}

TEST(PipelineResilience, DegradesPerStageInsteadOfAborting) {
  auto models = llm::CreatePaperModelLadder(nullptr, 42);
  core::DataManagementPipeline::Options options;
  options.model = std::make_shared<llm::FaultInjectingLlm>(
      models[2], AlwaysDownProfile(), 43);
  options.num_patients = 24;
  core::DataManagementPipeline pipeline(options);
  auto report = pipeline.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->stages.size(), 4u);
  // Generation and integration lean on the LLM and degrade; transformation
  // (XML parsing) and exploration (lake) complete on partial artifacts.
  EXPECT_EQ(report->degraded_stages, 2u);
  EXPECT_TRUE(report->stages[0].degraded);
  EXPECT_FALSE(report->stages[1].degraded);
  EXPECT_TRUE(report->stages[2].degraded);
  EXPECT_FALSE(report->stages[3].degraded);
  // The raw patients table was committed before the annotation calls died.
  EXPECT_TRUE(pipeline.database().catalog().HasTable("patients"));
  EXPECT_TRUE(pipeline.database().catalog().HasTable("reports"));
  EXPECT_GT(pipeline.lake().Size(), 0u);
}

TEST(PipelineResilience, ResilientModelKeepsAllStagesHealthyUnderFaults) {
  auto models = llm::CreatePaperModelLadder(nullptr, 42);
  auto faulty = std::make_shared<llm::FaultInjectingLlm>(
      models[2], TransportOnlyProfile(0.2), 47);
  llm::ResilientLlm::Options resilience;
  resilience.retry.max_attempts = 6;
  resilience.retry.initial_backoff_ms = 10.0;
  resilience.seed = 3;
  auto resilient = std::make_shared<llm::ResilientLlm>(faulty, resilience);
  resilient->AddFallbackModel(models[1]);
  core::DataManagementPipeline::Options options;
  options.model = resilient;
  options.num_patients = 24;
  core::DataManagementPipeline pipeline(options);
  auto report = pipeline.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->degraded_stages, 0u);
  // The stage reports carry the resilience accounting.
  size_t attempts = 0, retries = 0;
  for (const auto& stage : report->stages) {
    attempts += stage.retry.attempts;
    retries += stage.retry.retries;
  }
  EXPECT_GT(attempts, 0u);
  EXPECT_GT(retries, 0u);
}

// ---- Request-wide deadline propagation --------------------------------------

TEST(DeadlinePropagation, ChargesAtTheModelCallBoundary) {
  auto model = MakeTestModel();
  auto deadline = std::make_shared<llm::Deadline>(500.0);
  llm::Prompt prompt = llm::MakePrompt("freeform", "what is a data lake?");
  prompt.deadline = deadline;
  auto c = model->CompleteMetered(prompt, nullptr);
  ASSERT_TRUE(c.ok());
  // The completion's simulated latency came out of the shared budget.
  EXPECT_NEAR(deadline->remaining_ms(), 500.0 - c->latency_ms, 1e-3);
}

TEST(DeadlinePropagation, ExhaustedBudgetRejectsBeforeTheCall) {
  auto model = MakeTestModel();
  llm::Prompt prompt = llm::MakePrompt("freeform", "anything");
  prompt.deadline = std::make_shared<llm::Deadline>(0.0);
  auto c = model->CompleteMetered(prompt, nullptr);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), common::StatusCode::kTimeout);
}

TEST(DeadlinePropagation, ScopedModelAttachesBudgetToInnerPrompts) {
  auto deadline = std::make_shared<llm::Deadline>(1000.0);
  llm::DeadlineScopedLlm scoped(MakeTestModel(), deadline);
  auto c = scoped.Complete(llm::MakePrompt("freeform", "what is ETL?"));
  ASSERT_TRUE(c.ok());
  EXPECT_LT(deadline->remaining_ms(), 1000.0);  // latency was charged
}

TEST(DeadlinePropagation, CascadeStopsEscalatingWhenBudgetSpent) {
  // Three rungs of an expensive, slow model; the accept bar is set above 1.0
  // so only the final rung could normally accept. A budget that dies inside
  // rung 0 must stop the ladder and serve rung 0's answer, degraded.
  llm::ModelSpec slow;
  slow.name = "sim-sloth";
  slow.capability = 0.9;
  slow.latency_ms_per_1k_tokens = 1e6;
  std::vector<std::shared_ptr<llm::LlmModel>> ladder;
  for (int i = 0; i < 3; ++i) {
    auto m = std::make_shared<llm::SimulatedLlm>(slow, 1);
    m->RegisterSkill(std::make_unique<llm::FreeformSkill>());
    ladder.push_back(m);
  }
  optimize::LlmCascade::Options copts;
  copts.accept_threshold = 1.1;
  optimize::LlmCascade cascade(ladder, copts);

  llm::Prompt prompt = llm::MakePrompt("freeform", "what is a cascade?");
  prompt.deadline = std::make_shared<llm::Deadline>(500.0);
  auto r = cascade.Run(prompt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->deadline_stopped);
  EXPECT_TRUE(r->degraded);
  EXPECT_EQ(r->trace.size(), 1u);  // never reached rungs 1 and 2
  EXPECT_FALSE(r->answer.empty());

  // The identical ladder without a deadline climbs to the top rung.
  auto unbounded = cascade.Run(llm::MakePrompt("freeform", "what is a cascade?"));
  ASSERT_TRUE(unbounded.ok());
  EXPECT_FALSE(unbounded->deadline_stopped);
  EXPECT_EQ(unbounded->trace.size(), 3u);
}

TEST(DeadlinePropagation, PipelineStagesShareOneBudget) {
  // A ~1ms budget: the first model call succeeds (the budget is checked
  // before the call, charged after), everything later times out — so later
  // LLM-dependent stages degrade instead of silently getting fresh budgets.
  auto models = llm::CreatePaperModelLadder(nullptr, 42);
  core::DataManagementPipeline::Options options;
  options.model = models[2];
  options.num_patients = 24;
  options.deadline_ms = 1.0;
  core::DataManagementPipeline pipeline(options);
  auto report = pipeline.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->deadline_exhausted);
  EXPECT_GT(report->degraded_stages, 0u);

  // A generous budget changes nothing about the run's health and leaves
  // headroom in every stage report.
  core::DataManagementPipeline::Options generous = options;
  generous.deadline_ms = 1e9;
  core::DataManagementPipeline healthy(generous);
  auto ok_report = healthy.Run();
  ASSERT_TRUE(ok_report.ok());
  EXPECT_FALSE(ok_report->deadline_exhausted);
  EXPECT_EQ(ok_report->degraded_stages, 0u);
  for (const auto& stage : ok_report->stages) {
    EXPECT_GT(stage.deadline_remaining_ms, 0.0);
  }
}

TEST(DeadlinePropagation, ResilientBackoffDrawsFromTheSameBudget) {
  // A model that always 503s: the resilient wrapper retries with backoff,
  // and those waits must be charged to the request's deadline too.
  auto dead = std::make_shared<llm::FaultInjectingLlm>(
      MakeTestModel(), AlwaysDownProfile(), 13);
  llm::ResilientLlm::Options options;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff_ms = 50.0;
  options.seed = 3;
  llm::ResilientLlm resilient(dead, options);
  llm::Prompt prompt = llm::MakePrompt("freeform", "anything");
  auto deadline = std::make_shared<llm::Deadline>(5000.0);
  prompt.deadline = deadline;
  auto c = resilient.CompleteMetered(prompt, nullptr);
  EXPECT_FALSE(c.ok());
  EXPECT_LT(deadline->remaining_ms(), 5000.0);  // backoff was charged
}

// ---- Multi-tenant QoS building blocks --------------------------------------

TEST(TokenBucket, RefillsOnTheVirtualClockAndReportsRetryAfter) {
  // 100 tokens/vs = 0.1 tokens/vms, burst 50. Starts full.
  serve::TokenBucket bucket(100.0, 50.0);
  EXPECT_TRUE(bucket.metered());
  EXPECT_DOUBLE_EQ(bucket.level(), 50.0);
  EXPECT_TRUE(bucket.TryTake(0.0, 50.0, nullptr));  // drain the burst
  double retry = 0.0;
  EXPECT_FALSE(bucket.TryTake(0.0, 20.0, &retry));
  EXPECT_DOUBLE_EQ(retry, 200.0);  // 20 tokens at 0.1/vms
  // 100 vms later 10 tokens refilled: 8 fits, the next 8 does not.
  EXPECT_TRUE(bucket.TryTake(100.0, 8.0, nullptr));
  EXPECT_FALSE(bucket.TryTake(100.0, 8.0, &retry));
  EXPECT_DOUBLE_EQ(retry, 60.0);  // needs 6 more tokens
  // A cost above burst capacity reports time-to-full, not infinity.
  EXPECT_FALSE(bucket.TryTake(100.0, 1000.0, &retry));
  EXPECT_DOUBLE_EQ(retry, 480.0);  // 48 missing to reach burst=50
  // Idle time never overfills past the burst.
  EXPECT_FALSE(bucket.TryTake(1e9, 50.1, &retry));
  EXPECT_TRUE(bucket.TryTake(1e9, 50.0, nullptr));
}

TEST(TokenBucket, UnmeteredAlwaysAdmits) {
  serve::TokenBucket bucket(0.0, 0.0);
  EXPECT_FALSE(bucket.metered());
  double retry = 123.0;
  EXPECT_TRUE(bucket.TryTake(0.0, 1e18, &retry));
  EXPECT_DOUBLE_EQ(retry, 123.0);  // untouched
}

TEST(WeightedFairScheduler, EqualWeightsAlternateAndWeightsBuyShare) {
  auto run = [](double w0, double w1) {
    serve::QosOptions qos;
    qos.tenants = {{.id = "a", .weight = w0}, {.id = "b", .weight = w1}};
    qos.quantum_tokens = 10.0;
    qos.aging_threshold_vms = 1e12;  // DRR only
    serve::WeightedFairScheduler sched(qos, /*num_slots=*/1);
    // Both tenants deeply backlogged from t=0, every request costs 10
    // tokens and 10 vms of service.
    for (uint64_t i = 0; i < 40; ++i) {
      sched.Enqueue(0, {.id = i, .arrival_vms = 0.0, .cost_tokens = 10.0,
                        .service_vms = 10.0});
      sched.Enqueue(1, {.id = 100 + i, .arrival_vms = 0.0,
                        .cost_tokens = 10.0, .service_vms = 10.0});
    }
    std::vector<serve::WeightedFairScheduler::Dispatch> dispatches;
    sched.AdvanceTo(395.0, &dispatches);  // 40 slots' worth (u=0,10,...,390)
    size_t first = 0;
    for (const auto& d : dispatches) {
      if (d.tenant == 0) ++first;
    }
    return std::make_pair(first, dispatches.size());
  };
  // Equal weights: a strict 50/50 split (the pre-fix cursor bug made the
  // first backlogged tenant monopolize the ring).
  auto [equal_first, equal_total] = run(1.0, 1.0);
  EXPECT_EQ(equal_total, 40u);
  EXPECT_EQ(equal_first, 20u);
  // 3:1 weights: tenant 0 gets ~3/4 of the dispatches.
  auto [heavy_first, heavy_total] = run(3.0, 1.0);
  EXPECT_EQ(heavy_total, 40u);
  EXPECT_NEAR(static_cast<double>(heavy_first) / heavy_total, 0.75, 0.05);
}

TEST(WeightedFairScheduler, AgedHeadBypassesDeficitOrder) {
  serve::QosOptions qos;
  qos.tenants = {{.id = "big", .weight = 100.0}, {.id = "tiny", .weight = 0.01}};
  qos.quantum_tokens = 10.0;
  qos.aging_threshold_vms = 50.0;
  serve::WeightedFairScheduler sched(qos, /*num_slots=*/1);
  // The tiny tenant's request is strictly the oldest: aged dispatch is
  // oldest-head-first, so it must cut ahead of the backlog the moment it
  // crosses the threshold.
  sched.Enqueue(1, {.id = 999, .arrival_vms = 0.0, .cost_tokens = 10.0,
                    .service_vms = 10.0});
  for (uint64_t i = 0; i < 20; ++i) {
    sched.Enqueue(0, {.id = i, .arrival_vms = 1.0, .cost_tokens = 10.0,
                      .service_vms = 10.0});
  }
  std::vector<serve::WeightedFairScheduler::Dispatch> dispatches;
  sched.AdvanceTo(200.0, &dispatches);
  double tiny_start = -1.0;
  for (const auto& d : dispatches) {
    if (d.id == 999) tiny_start = d.start_vms;
  }
  // Without aging the tiny tenant would wait ~100 ring cycles; with a 50 vms
  // threshold it dispatches at the first slot boundary past 50.
  ASSERT_GE(tiny_start, 0.0);
  EXPECT_LE(tiny_start, 60.0);
}

TEST(JainFairness, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(serve::JainFairnessIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(serve::JainFairnessIndex({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(serve::JainFairnessIndex({5.0, 5.0, 5.0}), 1.0);
  // One tenant hogging everything: index collapses to 1/n.
  EXPECT_DOUBLE_EQ(serve::JainFairnessIndex({1.0, 0.0, 0.0, 0.0}), 0.25);
  // (1+2+3)^2 / (3 * 14) = 36/42.
  EXPECT_NEAR(serve::JainFairnessIndex({1.0, 2.0, 3.0}), 36.0 / 42.0, 1e-12);
}

TEST(GeneratePopulation, DeterministicSortedAndZipfSkewed) {
  serve::PopulationOptions pop;
  pop.tenants = 8;
  pop.requests = 1200;
  pop.hot_tenants = 2;
  pop.seed = 42;
  auto a = serve::GeneratePopulation(pop);
  auto b = serve::GeneratePopulation(pop);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), pop.requests);  // bursts landed on top of base traffic
  std::map<std::string, size_t> per_tenant;
  for (size_t i = 0; i < a.size(); ++i) {
    // Byte-identical across calls with the same seed.
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].input, b[i].input);
    EXPECT_DOUBLE_EQ(a[i].arrival_vms, b[i].arrival_vms);
    // Sorted by arrival, ids dense in arrival order.
    EXPECT_EQ(a[i].id, i);
    if (i > 0) EXPECT_GE(a[i].arrival_vms, a[i - 1].arrival_vms);
    ++per_tenant[a[i].tenant];
  }
  // Zipf skew: the head tenant strictly dominates the mid and tail.
  EXPECT_GT(per_tenant["t00"], per_tenant["t03"]);
  EXPECT_GT(per_tenant["t03"], 0u);
  // A different seed reshuffles the stream.
  pop.seed = 43;
  auto c = serve::GeneratePopulation(pop);
  bool any_diff = c.size() != a.size();
  for (size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = a[i].input != c[i].input ||
               a[i].arrival_vms != c[i].arrival_vms;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ServeQosShed, RetryAfterReflectsTheCause) {
  // One metered tenant bursting against a wide-open queue: every shed must
  // be a quota shed, and the hint must be the tenant's own bucket refill
  // time — not the global queue estimate.
  llm::ModelSpec spec;
  spec.name = "sim-shed";
  spec.capability = 0.9;
  spec.input_price_per_1k = common::Money::FromDollars(0.001);
  spec.output_price_per_1k = common::Money::FromDollars(0.002);
  spec.latency_ms_per_1k_tokens = 100.0;
  auto model = std::make_shared<llm::SimulatedLlm>(spec, 3);
  model->RegisterSkill(std::make_unique<llm::FreeformSkill>());

  serve::Server::Options options;
  options.worker_threads = 2;
  options.virtual_concurrency = 8;
  options.queue_depth = 1000;
  serve::TenantConfig metered;
  metered.id = "metered";
  metered.weight = 1.0;
  metered.quota_tokens_per_vs = 100.0;
  metered.quota_burst_tokens = 150.0;
  metered.queue_limit = 1000;
  options.qos.tenants = {metered};
  serve::Server server(model, options);
  for (size_t i = 0; i < 30; ++i) {
    serve::Request req;
    req.id = i;
    req.tenant = "metered";
    req.arrival_vms = static_cast<double>(i) * 1.0;
    req.input = common::StrFormat("quota burst %zu", i);
    server.Submit(req);
  }
  size_t quota_sheds = 0;
  for (const auto& r : server.Drain()) {
    if (!r.shed) continue;
    ++quota_sheds;
    EXPECT_EQ(r.shed_cause, serve::ShedCause::kQuota);
    EXPECT_EQ(r.status.code(), common::StatusCode::kResourceExhausted);
    // The bucket refills ~0.1 tokens/vms and a request costs ~50 tokens:
    // the hint must point hundreds of virtual ms out, and never past the
    // time to refill a full request from empty.
    EXPECT_GT(r.retry_after_vms, 0.0);
    EXPECT_LE(r.retry_after_vms, 60.0 / 0.1);
  }
  EXPECT_GT(quota_sheds, 0u);
  // tenant_stats includes the synthesized catch-all "default" tenant.
  auto tenants = server.tenant_stats();
  ASSERT_EQ(tenants.size(), 2u);
  const serve::TenantStats* metered_stats = nullptr;
  for (const auto& t : tenants) {
    if (t.tenant == "metered") metered_stats = &t;
  }
  ASSERT_NE(metered_stats, nullptr);
  EXPECT_EQ(metered_stats->shed_quota, quota_sheds);
  EXPECT_EQ(metered_stats->shed_queue, 0u);
  EXPECT_EQ(metered_stats->submitted, 30u);
  EXPECT_EQ(metered_stats->admitted + quota_sheds, 30u);
  EXPECT_GT(metered_stats->spend, common::Money::Zero());
}

}  // namespace
}  // namespace llmdm
