#include <gtest/gtest.h>

#include "data/tabular_gen.h"
#include "ml/linear.h"
#include "ml/logistic.h"

namespace llmdm::ml {
namespace {

TEST(DatasetFromTable, ExtractsNumericAndBoolFeatures) {
  common::Rng rng(1);
  data::PatientDataOptions options;
  options.num_rows = 50;
  data::Table patients = data::GeneratePatientTable(options, rng);
  auto ds = DatasetFromTable(patients, "has_heart_disease");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 50u);
  // age, bmi, systolic_bp, cholesterol, smoker (sex is text; patient_id is
  // an identifier and deliberately excluded).
  EXPECT_EQ(ds->dim(), 5u);
  EXPECT_FALSE(DatasetFromTable(patients, "missing").ok());
  EXPECT_FALSE(DatasetFromTable(patients, "age").ok());  // not BOOL
}

TEST(DatasetFromTable, DropsRowsWithNulls) {
  common::Rng rng(2);
  data::PatientDataOptions options;
  options.num_rows = 60;
  data::Table patients = data::GeneratePatientTable(options, rng);
  auto blanked = data::InjectMissing(&patients, "bmi", 0.25, rng);
  auto ds = DatasetFromTable(patients, "has_heart_disease");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 60u - blanked.size());
}

TEST(Standardize, ZeroMeanUnitVariance) {
  Dataset ds;
  ds.features = {{1.0, 10.0}, {3.0, 20.0}, {5.0, 30.0}};
  ds.labels = {0, 1, 0};
  auto stats = Standardize(&ds);
  for (size_t d = 0; d < 2; ++d) {
    double mean = 0;
    for (const auto& x : ds.features) mean += x[d];
    EXPECT_NEAR(mean / 3.0, 0.0, 1e-9);
  }
  // Stats reusable on held-out data.
  Dataset holdout;
  holdout.features = {{3.0, 20.0}};
  holdout.labels = {1};
  ApplyStandardization(stats, &holdout);
  EXPECT_NEAR(holdout.features[0][0], 0.0, 1e-9);
}

TEST(LogisticRegression, LearnsSeparableProblem) {
  common::Rng rng(3);
  Dataset train;
  for (int i = 0; i < 200; ++i) {
    double x = rng.Uniform(-2, 2);
    double y = rng.Uniform(-2, 2);
    train.features.push_back({x, y});
    train.labels.push_back(x + y > 0 ? 1 : 0);
  }
  LogisticRegression model;
  LogisticRegression::TrainOptions options;
  options.epochs = 80;
  model.Train(train, options);
  EXPECT_GT(model.Accuracy(train), 0.95);
}

TEST(LogisticRegression, PatientRiskIsLearnable) {
  common::Rng rng(4);
  data::PatientDataOptions options;
  options.num_rows = 400;
  auto train_table = data::GeneratePatientTable(options, rng);
  auto holdout_table = data::GeneratePatientTable(options, rng);
  auto train = DatasetFromTable(train_table, "has_heart_disease");
  auto holdout = DatasetFromTable(holdout_table, "has_heart_disease");
  ASSERT_TRUE(train.ok() && holdout.ok());
  auto stats = Standardize(&*train);
  ApplyStandardization(stats, &*holdout);
  LogisticRegression model;
  LogisticRegression::TrainOptions topts;
  topts.epochs = 60;
  model.Train(*train, topts);
  EXPECT_GT(model.Accuracy(*holdout), 0.7);
}

TEST(LogisticRegression, ClippingBoundsGradients) {
  // With aggressive clipping the model still learns, just slower.
  common::Rng rng(5);
  Dataset train;
  for (int i = 0; i < 200; ++i) {
    double x = rng.Uniform(-2, 2);
    train.features.push_back({x});
    train.labels.push_back(x > 0 ? 1 : 0);
  }
  LogisticRegression model;
  LogisticRegression::TrainOptions options;
  options.epochs = 100;
  options.clip_norm = 0.1;
  model.Train(train, options);
  EXPECT_GT(model.Accuracy(train), 0.9);
}

TEST(LogisticRegression, ExampleLossOrdering) {
  LogisticRegression model;
  model.SetParameters({2.0}, 0.0);
  // Confidently-correct example has lower loss than confidently-wrong.
  EXPECT_LT(model.ExampleLoss({3.0}, 1), model.ExampleLoss({3.0}, 0));
}

TEST(FederatedAverage, WeightsBySize) {
  LogisticRegression a, b;
  a.SetParameters({1.0}, 1.0);
  b.SetParameters({3.0}, 3.0);
  LogisticRegression avg = FederatedAverage({a, b}, {3, 1});
  EXPECT_NEAR(avg.weights()[0], 1.5, 1e-12);
  EXPECT_NEAR(avg.bias(), 1.5, 1e-12);
}

TEST(LinearRegression, RecoversLinearStructure) {
  common::Rng rng(6);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    double a = rng.Uniform(0, 10), b = rng.Uniform(0, 5);
    x.push_back({a, b});
    y.push_back(3.0 * a + 7.0 * b + 2.0 + rng.Normal(0, 0.1));
  }
  LinearRegression model;
  model.Train(x, y);
  EXPECT_NEAR(model.Predict({4.0, 2.0}), 3.0 * 4 + 7.0 * 2 + 2.0, 0.5);
  EXPECT_LT(model.Mape(x, y), 0.05);
}

TEST(LinearRegression, EmptyInputSafe) {
  LinearRegression model;
  model.Train({}, {});
  EXPECT_DOUBLE_EQ(model.Mape({}, {}), 0.0);
}

}  // namespace
}  // namespace llmdm::ml
