#include <gtest/gtest.h>

#include <set>

#include "common/hash.h"
#include "common/money.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace llmdm::common {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  LLMDM_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, BernoulliEdges) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(17);
  int low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    size_t r = rng.Zipf(100, 1.2);
    EXPECT_LT(r, 100u);
    if (r < 10) ++low;
    if (r >= 90) ++high;
  }
  EXPECT_GT(low, high * 5);
}

TEST(Rng, ZipfZeroExponentIsUniformish) {
  Rng rng(19);
  int low = 0;
  for (int i = 0; i < 4000; ++i) {
    if (rng.Zipf(100, 0.0) < 50) ++low;
  }
  EXPECT_NEAR(low, 2000, 250);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Hash, StableAndSensitive) {
  EXPECT_EQ(Fnv1a("hello"), Fnv1a("hello"));
  EXPECT_NE(Fnv1a("hello"), Fnv1a("hellp"));
  EXPECT_NE(Fnv1a("ab"), Fnv1a("ba"));
}

TEST(Hash, HashToUnitRange) {
  for (uint64_t i = 0; i < 1000; ++i) {
    double d = HashToUnit(Fnv1a(std::to_string(i)));
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(StringUtil, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtil, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc\n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtil, JoinAndTrim) {
  EXPECT_EQ(Join({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(Trim("  abc\t"), "abc");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtil, CaseAndAffix) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
  EXPECT_TRUE(EndsWith("table.csv", ".csv"));
  EXPECT_TRUE(ContainsIgnoreCase("Hello World", "WORLD"));
}

TEST(StringUtil, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("none", "x", "y"), "none");
}

TEST(StringUtil, EditDistance) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
}

TEST(StringUtil, TokenJaccard) {
  EXPECT_DOUBLE_EQ(TokenJaccard("a b c", "a b c"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "c d"), 0.0);
  EXPECT_NEAR(TokenJaccard("a b c", "b c d"), 0.5, 1e-9);
}

TEST(StringUtil, ParseNumbers) {
  int64_t i;
  EXPECT_TRUE(ParseInt64(" 42 ", &i));
  EXPECT_EQ(i, 42);
  EXPECT_FALSE(ParseInt64("42x", &i));
  double d;
  EXPECT_TRUE(ParseDouble("3.5e2", &d));
  EXPECT_DOUBLE_EQ(d, 350.0);
  EXPECT_FALSE(ParseDouble("", &d));
}

TEST(Money, ExactArithmetic) {
  Money a = Money::FromDollars(0.001);
  Money sum = Money::Zero();
  for (int i = 0; i < 1000; ++i) sum += a;
  EXPECT_EQ(sum, Money::FromDollars(1.0));
  EXPECT_EQ(sum.ToString(3), "$1.000");
}

TEST(Money, Ordering) {
  EXPECT_LT(Money::FromDollars(0.1), Money::FromDollars(0.2));
  EXPECT_EQ((Money::FromDollars(0.3) - Money::FromDollars(0.1)).dollars(),
            0.2);
}

}  // namespace
}  // namespace llmdm::common
