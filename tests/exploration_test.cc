#include <gtest/gtest.h>

#include "core/exploration/datalake.h"
#include "core/exploration/llm_as_db.h"
#include "data/qa_workload.h"
#include "data/tabular_gen.h"
#include "llm/simulated.h"

namespace llmdm::exploration {
namespace {

class DataLakeTest : public ::testing::Test {
 protected:
  DataLakeTest() {
    // Text documents.
    LakeItem doc;
    doc.modality = Modality::kText;
    doc.title = "basketball article";
    doc.content =
        "Michael Jordan, the greatest basketball player of all time, found "
        "the secret to success on the court.";
    doc.attributes["entity_type"] = data::Value::Text("athlete");
    EXPECT_TRUE(lake_.Ingest(std::move(doc)).ok());

    LakeItem prof;
    prof.modality = Modality::kTable;
    prof.title = "professor registry";
    prof.content =
        "name is Michael Jordan; department is Statistics; university is "
        "Berkeley; title is Professor of machine learning";
    prof.attributes["entity_type"] = data::Value::Text("professor");
    EXPECT_TRUE(lake_.Ingest(std::move(prof)).ok());

    LakeItem scan;
    scan.modality = Modality::kImage;
    scan.title = "stadium photo";
    scan.content = "aerial image of the Olympic stadium during a concert";
    scan.attributes["entity_type"] = data::Value::Text("venue");
    EXPECT_TRUE(lake_.Ingest(std::move(scan)).ok());
  }

  MultiModalDataLake lake_;
};

TEST_F(DataLakeTest, SemanticQueryRanksRelevantFirst) {
  auto hits = lake_.Query("who is the greatest basketball player", 2);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].title, "basketball article");
}

TEST_F(DataLakeTest, PaperMichaelJordanDisambiguation) {
  // Plain vector search on "Prof. Michael Jordan" is dominated by the
  // basketball text (similar but irrelevant); attribute filtering on
  // entity_type recovers the right item — the paper's exact scenario.
  auto filtered = lake_.QueryFiltered(
      "Could Prof. Michael Jordan play basketball", 1, std::nullopt,
      {{"entity_type", data::Value::Text("professor")}});
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].title, "professor registry");
}

TEST_F(DataLakeTest, ModalityFilter) {
  auto hits = lake_.QueryFiltered("stadium concert", 3, Modality::kImage, {});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].modality, Modality::kImage);
}

TEST_F(DataLakeTest, TableIngestIsRowWise) {
  common::Rng rng(71);
  data::PatientDataOptions options;
  options.num_rows = 12;
  data::Table patients = data::GeneratePatientTable(options, rng);
  size_t before = lake_.Size();
  ASSERT_TRUE(lake_.IngestTable(patients, "patient").ok());
  EXPECT_EQ(lake_.Size(), before + 12);
  auto hits = lake_.QueryFiltered(
      "patient with smoker true", 3, Modality::kTable,
      {{"entity_type", data::Value::Text("patient")}});
  EXPECT_FALSE(hits.empty());
}

TEST_F(DataLakeTest, GranularityTradeoff) {
  // Sec III-B.2: row-granularity retrieves a specific fact crisply;
  // table-granularity answers with one compact item.
  common::Rng rng(72);
  data::Table inventory(
      "inventory", data::Schema({{"item", data::ColumnType::kText, true},
                                 {"warehouse", data::ColumnType::kText, true},
                                 {"stock", data::ColumnType::kInt64, true}}));
  const char* items[] = {"drill", "hammer", "wrench", "saw", "ladder",
                         "rope",  "tarp",   "pump",   "hose", "vise"};
  for (int i = 0; i < 10; ++i) {
    inventory.AppendRowUnchecked({data::Value::Text(items[i]),
                                  data::Value::Text(i % 2 ? "north" : "south"),
                                  data::Value::Int(10 + i)});
  }
  MultiModalDataLake row_lake, table_lake;
  ASSERT_TRUE(row_lake
                  .IngestTable(inventory, "stock",
                               MultiModalDataLake::TableGranularity::kRow)
                  .ok());
  ASSERT_TRUE(table_lake
                  .IngestTable(inventory, "stock",
                               MultiModalDataLake::TableGranularity::kTable)
                  .ok());
  EXPECT_EQ(row_lake.Size(), 10u);
  EXPECT_EQ(table_lake.Size(), 1u);
  // Row granularity: the top hit for a specific item IS that item's row.
  auto hits = row_lake.Query("how many wrench units do we hold", 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].snippet.find("wrench"), std::string::npos);
  // Table granularity still finds the (single) table item.
  auto thits = table_lake.Query("how many wrench units do we hold", 1);
  ASSERT_EQ(thits.size(), 1u);
  EXPECT_EQ(thits[0].title, "inventory");
}

// ---- LLM as database ---------------------------------------------------------------

class LlmAsDbTest : public ::testing::Test {
 protected:
  LlmAsDbTest() {
    common::Rng rng(72);
    kb_ = data::KnowledgeBase::Generate(40, rng);
    models_ = llm::CreatePaperModelLadder(&kb_, 727);
    backed_ = std::make_unique<LlmBackedDatabase>(models_[2], kb_.relations());
  }

  data::KnowledgeBase kb_;
  std::vector<std::shared_ptr<llm::LlmModel>> models_;
  std::unique_ptr<LlmBackedDatabase> backed_;
  sql::Database scratch_;
};

TEST_F(LlmAsDbTest, EqualityBoundQueryExtractsFacts) {
  const std::string& subject = kb_.entities()[0];
  std::string truth = kb_.Lookup("advisor", subject).value_or("");
  LlmBackedDatabase::QueryStats stats;
  auto result = backed_->Query(
      "SELECT object FROM kb_facts WHERE subject = '" + subject +
          "' AND relation = 'advisor'",
      scratch_, nullptr, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 1u);
  EXPECT_EQ(result->at(0, 0).AsText(), truth);  // sim-gpt-4 on a 1-hop fact
  EXPECT_EQ(stats.llm_calls, 1u);               // pushdown: only one fact
}

TEST_F(LlmAsDbTest, InListFansOut) {
  std::string a = kb_.entities()[1];
  std::string b = kb_.entities()[2];
  LlmBackedDatabase::QueryStats stats;
  auto result = backed_->Query(
      "SELECT subject, object FROM kb_facts WHERE subject IN ('" + a + "', '" +
          b + "') AND relation = 'manager' ORDER BY subject",
      scratch_, nullptr, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumRows(), 2u);
  EXPECT_EQ(stats.llm_calls, 2u);
}

TEST_F(LlmAsDbTest, UnboundRelationQueriesAllRelations) {
  const std::string& subject = kb_.entities()[3];
  LlmBackedDatabase::QueryStats stats;
  auto result = backed_->Query(
      "SELECT relation, object FROM kb_facts WHERE subject = '" + subject + "'",
      scratch_, nullptr, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.llm_calls, kb_.relations().size());
}

TEST_F(LlmAsDbTest, UnboundSubjectRefused) {
  auto result = backed_->Query("SELECT * FROM kb_facts", scratch_);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kFailedPrecondition);
}

TEST_F(LlmAsDbTest, SelfJoinExtractsMultiHop) {
  // "Who is the manager of the advisor of X" as a self-join: round 1
  // extracts advisor(X), round 2 extracts manager(advisor(X)).
  const std::string& subject = kb_.entities()[5];
  std::string advisor = kb_.Lookup("advisor", subject).value_or("");
  std::string truth = kb_.Lookup("manager", advisor).value_or("");
  LlmBackedDatabase::QueryStats stats;
  auto result = backed_->Query(
      "SELECT f2.object FROM kb_facts f1 JOIN kb_facts f2 "
      "ON f1.object = f2.subject "
      "WHERE f1.subject = '" + subject + "' AND f1.relation = 'advisor' "
      "AND f2.relation = 'manager'",
      scratch_, nullptr, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(stats.extraction_rounds, 2u);
  // sim-gpt-4 answers 1-hop questions near-perfectly; both hops were asked
  // as atomic questions, so the joined answer matches the KB truth.
  ASSERT_GE(result->NumRows(), 1u);
  EXPECT_EQ(result->at(0, 0).AsText(), truth);
}

TEST_F(LlmAsDbTest, JoinsVirtualAndRealTables) {
  ASSERT_TRUE(scratch_.Execute("CREATE TABLE offices (person TEXT, room TEXT)")
                  .ok());
  const std::string& subject = kb_.entities()[4];
  std::string advisor = kb_.Lookup("advisor", subject).value_or("");
  ASSERT_TRUE(scratch_
                  .Execute("INSERT INTO offices VALUES ('" + advisor +
                           "', 'B-12')")
                  .ok());
  auto result = backed_->Query(
      "SELECT o.room FROM kb_facts f JOIN offices o ON f.object = o.person "
      "WHERE f.subject = '" + subject + "' AND f.relation = 'advisor'",
      scratch_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 1u);
  EXPECT_EQ(result->at(0, 0).AsText(), "B-12");
}

}  // namespace
}  // namespace llmdm::exploration
