#include <gtest/gtest.h>

#include "core/generation/annotator.h"
#include "core/generation/sql_generator.h"
#include "core/generation/training_data.h"
#include "core/pipeline.h"
#include "data/nl2sql_workload.h"
#include "data/tabular_gen.h"
#include "llm/simulated.h"

namespace llmdm {
namespace {

// ---- SQL generator (Fig 2) -----------------------------------------------------

class SqlGeneratorTest : public ::testing::Test {
 protected:
  SqlGeneratorTest() {
    common::Rng rng(51);
    EXPECT_TRUE(
        db_.ExecuteScript(data::BuildStadiumDatabaseScript(10, {2014, 2015},
                                                           rng))
            .ok());
  }

  sql::Database db_;
};

TEST_F(SqlGeneratorTest, HonorsExecutabilityConstraint) {
  generation::SqlGenerator generator(nullptr, 1);
  generation::SqlGenConstraints constraints;
  constraints.count = 20;
  auto queries = generator.Generate(db_, constraints);
  ASSERT_TRUE(queries.ok());
  EXPECT_GE(queries->size(), 15u);  // some shapes may occasionally fail
  for (const auto& q : *queries) {
    EXPECT_TRUE(q.executable) << q.sql;
  }
}

TEST_F(SqlGeneratorTest, ProducesRequestedShapeMix) {
  generation::SqlGenerator generator(nullptr, 2);
  generation::SqlGenConstraints constraints;
  constraints.count = 30;
  constraints.multi_join_fraction = 0.4;
  constraints.subquery_fraction = 0.3;
  auto queries = generator.Generate(db_, constraints);
  ASSERT_TRUE(queries.ok());
  size_t joins = 0, subqueries = 0;
  for (const auto& q : *queries) {
    joins += q.kind == generation::GeneratedSql::Kind::kMultiJoin;
    subqueries += q.kind == generation::GeneratedSql::Kind::kSubquery;
  }
  EXPECT_GT(joins, 5u);
  EXPECT_GT(subqueries, 3u);
}

TEST_F(SqlGeneratorTest, GeneratedQueriesAreDistinct) {
  generation::SqlGenerator generator(nullptr, 3);
  generation::SqlGenConstraints constraints;
  constraints.count = 25;
  auto queries = generator.Generate(db_, constraints);
  ASSERT_TRUE(queries.ok());
  std::set<std::string> distinct;
  for (const auto& q : *queries) distinct.insert(q.sql);
  EXPECT_EQ(distinct.size(), queries->size());
}

TEST_F(SqlGeneratorTest, EquivalentPairsAgreeUnderExecution) {
  generation::SqlGenerator generator(nullptr, 4);
  auto pairs = generator.GenerateEquivalentPairs(db_, 15);
  ASSERT_TRUE(pairs.ok());
  EXPECT_GE(pairs->size(), 10u);
  for (const auto& [a, b] : *pairs) {
    auto ra = db_.Query(a);
    auto rb = db_.Query(b);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_TRUE(ra->BagEquals(*rb)) << a << " vs " << b;
  }
}

// ---- training data generation (Fig 3) --------------------------------------------

TEST_F(SqlGeneratorTest, CostDatasetHasStructure) {
  common::Rng rng(52);
  auto dataset = generation::GenerateQueryCostDataset(db_, 40, rng);
  ASSERT_TRUE(dataset.ok());
  EXPECT_GE(dataset->size(), 25u);
  // Join-bearing queries must generally cost more than simple ones.
  double join_sum = 0, join_n = 0, simple_sum = 0, simple_n = 0;
  for (const auto& ex : *dataset) {
    if (ex.num_joins > 0) {
      join_sum += ex.execution_time_ms;
      ++join_n;
    } else {
      simple_sum += ex.execution_time_ms;
      ++simple_n;
    }
  }
  ASSERT_GT(join_n, 0.0);
  ASSERT_GT(simple_n, 0.0);
  EXPECT_GT(join_sum / join_n, simple_sum / simple_n);
}

TEST_F(SqlGeneratorTest, IclPredictsExecutionTime) {
  common::Rng rng(53);
  auto dataset = generation::GenerateQueryCostDataset(db_, 60, rng);
  ASSERT_TRUE(dataset.ok());
  auto models = llm::CreatePaperModelLadder(nullptr, 531);
  generation::IclCostPredictor predictor(models[2], 8);
  double mape = 0;
  size_t n = 0;
  for (size_t i = 0; i < 10 && i < dataset->size(); ++i) {
    std::vector<generation::QueryCostExample> corpus;
    for (size_t j = 0; j < dataset->size(); ++j) {
      if (j != i) corpus.push_back((*dataset)[j]);
    }
    auto predicted = predictor.Predict((*dataset)[i], corpus);
    ASSERT_TRUE(predicted.ok());
    mape += std::abs(*predicted - (*dataset)[i].execution_time_ms) /
            (*dataset)[i].execution_time_ms;
    ++n;
  }
  EXPECT_LT(mape / double(n), 0.6);  // far better than chance
}

TEST_F(SqlGeneratorTest, AugmentationAddsUsableRows) {
  common::Rng rng(54);
  auto dataset = generation::GenerateQueryCostDataset(db_, 30, rng);
  ASSERT_TRUE(dataset.ok());
  auto models = llm::CreatePaperModelLadder(nullptr, 541);
  auto augmented = generation::AugmentCostDataset(*dataset, 1.0, *models[2]);
  ASSERT_TRUE(augmented.ok());
  EXPECT_GT(augmented->size(), dataset->size());
  for (const auto& ex : *augmented) {
    EXPECT_GT(ex.execution_time_ms, 0.0);
  }
}

// ---- missing field annotation & synthesis ------------------------------------------

TEST(Annotator, FillsMissingNumericColumn) {
  common::Rng rng(55);
  data::PatientDataOptions options;
  options.num_rows = 60;
  data::Table patients = data::GeneratePatientTable(options, rng);
  data::Table truth = patients;
  auto blanked = data::InjectMissing(&patients, "cholesterol", 0.2, rng);
  ASSERT_FALSE(blanked.empty());
  auto models = llm::CreatePaperModelLadder(nullptr, 551);
  generation::MissingFieldAnnotator annotator(
      models[2], generation::MissingFieldAnnotator::Options{});
  auto report = annotator.Annotate(&patients, "cholesterol");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->missing, blanked.size());
  EXPECT_EQ(report->filled, blanked.size());
  // Filled values must be in a sane range (ICL regression, not noise).
  size_t col = *patients.schema().Find("cholesterol");
  for (size_t r : blanked) {
    ASSERT_FALSE(patients.at(r, col).is_null());
    EXPECT_GT(patients.at(r, col).AsInt(), 50);
    EXPECT_LT(patients.at(r, col).AsInt(), 600);
  }
}

TEST(Synthesizer, MimicsMarginals) {
  common::Rng rng(56);
  data::PatientDataOptions options;
  options.num_rows = 80;
  data::Table real = data::GeneratePatientTable(options, rng);
  auto models = llm::CreatePaperModelLadder(nullptr, 561);
  generation::TabularSynthesizer synthesizer(models[2]);
  auto synthetic = synthesizer.Synthesize(real, 40);
  ASSERT_TRUE(synthetic.ok());
  EXPECT_EQ(synthetic->NumRows(), 40u);
  EXPECT_EQ(synthetic->schema(), real.schema());
  // Age mean within a loose band of the real mean.
  auto mean_of = [](const data::Table& t, const char* col) {
    auto values = t.ColumnValues(col);
    double acc = 0;
    size_t n = 0;
    for (const auto& v : *values) {
      if (v.is_null()) continue;
      acc += v.AsDouble();
      ++n;
    }
    return acc / double(n);
  };
  EXPECT_NEAR(mean_of(*synthetic, "age"), mean_of(real, "age"), 12.0);
}

// ---- Fig 1 end-to-end pipeline ------------------------------------------------------

TEST(Pipeline, RunsAllFourStages) {
  auto models = llm::CreatePaperModelLadder(nullptr, 571);
  core::DataManagementPipeline::Options options;
  options.model = models[2];
  options.num_patients = 40;
  core::DataManagementPipeline pipeline(options);
  auto report = pipeline.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->stages.size(), 4u);
  EXPECT_EQ(report->stages[0].stage, "generation");
  EXPECT_EQ(report->stages[3].stage, "exploration");
  EXPECT_GT(report->total_llm_calls, 0u);
  EXPECT_GT(report->total_cost.micros(), 0);
  // Artifacts are queryable afterwards.
  EXPECT_TRUE(pipeline.database().catalog().HasTable("patients"));
  EXPECT_TRUE(pipeline.database().catalog().HasTable("reports"));
  EXPECT_GT(pipeline.lake().Size(), 0u);
  auto count = pipeline.database().Query("SELECT COUNT(*) FROM patients");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->at(0, 0).AsInt(), 40);
}

TEST(Pipeline, RequiresModel) {
  core::DataManagementPipeline::Options options;
  core::DataManagementPipeline pipeline(options);
  EXPECT_FALSE(pipeline.Run().ok());
}

}  // namespace
}  // namespace llmdm
