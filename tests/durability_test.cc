// Durability suite (ctest label `durability`): the WAL and snapshot formats,
// DurableStore recovery policy, and crash-consistent recovery of the durable
// components (semantic cache, prompt store, vector indexes). The exhaustive
// every-byte crash sweep lives in durability_harness.cc; these tests pin the
// individual format and policy contracts the sweep's guarantee rests on.

#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/money.h"
#include "core/optimize/prompt_store.h"
#include "core/optimize/semantic_cache.h"
#include "durability/format.h"
#include "durability/mmap_file.h"
#include "durability/snapshot.h"
#include "durability/store.h"
#include "durability/wal.h"
#include "gtest/gtest.h"
#include "llm/simulated.h"
#include "llm/skills.h"
#include "serve/server.h"
#include "vectordb/durable_index.h"

namespace llmdm {
namespace {

// ---------------------------------------------------------------------------
// Helpers.

/// Self-cleaning scratch directory; best-effort removal (recovery creates
/// files with predictable names, so plain unlink on the survivors suffices).
class TempDir {
 public:
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "llmdm_dur_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = ::mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : tmpl;
  }
  ~TempDir() {
    for (const std::string& name : cleanup_) {
      ::unlink((path_ + "/" + name).c_str());
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }
  /// Register a file for removal at teardown.
  void Track(const std::string& name) { cleanup_.push_back(name); }

 private:
  std::string path_;
  std::vector<std::string> cleanup_;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(static_cast<bool>(out)) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

std::string Image(const durability::DurableState& state) {
  std::string out;
  EXPECT_TRUE(state.SaveSnapshot(&out).ok());
  return out;
}

// ---------------------------------------------------------------------------
// Byte-level encoding.

TEST(DurabilityFormat, RoundtripsEveryType) {
  std::string buf;
  durability::AppendU8(&buf, 7);
  durability::AppendU32(&buf, 0xDEADBEEFu);
  durability::AppendU64(&buf, 0x0123456789ABCDEFull);
  durability::AppendI64(&buf, -42);
  durability::AppendString(&buf, "hello\0world");  // embedded NUL survives? no:
  // string_view from a literal stops at the NUL — use an explicit view.
  durability::AppendString(&buf, std::string_view("a\0b", 3));
  durability::AppendFloats(&buf, {1.5f, -0.25f, 3.0f});

  durability::ByteReader in(buf);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  std::string s1, s2;
  std::vector<float> floats;
  ASSERT_TRUE(in.ReadU8(&u8).ok());
  ASSERT_TRUE(in.ReadU32(&u32).ok());
  ASSERT_TRUE(in.ReadU64(&u64).ok());
  ASSERT_TRUE(in.ReadI64(&i64).ok());
  ASSERT_TRUE(in.ReadString(&s1).ok());
  ASSERT_TRUE(in.ReadString(&s2).ok());
  ASSERT_TRUE(in.ReadFloats(&floats).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, std::string("a\0b", 3));
  EXPECT_EQ(floats, (std::vector<float>{1.5f, -0.25f, 3.0f}));
  EXPECT_TRUE(in.empty());
}

TEST(DurabilityFormat, TruncatedReadsFailCleanly) {
  std::string buf;
  durability::AppendString(&buf, "payload");
  // Every proper prefix must fail with a status, not read out of bounds.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    durability::ByteReader in(std::string_view(buf).substr(0, cut));
    std::string s;
    EXPECT_FALSE(in.ReadString(&s).ok()) << "prefix length " << cut;
  }
}

// ---------------------------------------------------------------------------
// WAL format.

TEST(DurabilityWal, AppendThenReplayRoundtrips) {
  TempDir dir;
  const std::string path = dir.path() + "/t.wal.3";
  dir.Track("t.wal.3");
  {
    auto writer = durability::WalWriter::Create(path, 3, /*fsync=*/false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append("first").ok());
    ASSERT_TRUE(writer.value()->Append("").ok());  // empty payloads are legal
    ASSERT_TRUE(writer.value()->Append("third record").ok());
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  std::vector<std::string> seen;
  auto result = durability::ReplayWalFile(path, [&](std::string_view p) {
    seen.emplace_back(p);
    return common::Status::Ok();
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().header_valid);
  EXPECT_EQ(result.value().epoch, 3u);
  EXPECT_EQ(result.value().records, 3u);
  EXPECT_FALSE(result.value().torn_tail);
  EXPECT_EQ(result.value().discarded_bytes, 0u);
  EXPECT_EQ(seen, (std::vector<std::string>{"first", "", "third record"}));
}

TEST(DurabilityWal, EveryTruncationRecoversACleanPrefix) {
  TempDir dir;
  const std::string path = dir.path() + "/t.wal.1";
  const std::string cut_path = dir.path() + "/cut.wal.1";
  dir.Track("t.wal.1");
  dir.Track("cut.wal.1");
  {
    auto writer = durability::WalWriter::Create(path, 1, false);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          writer.value()->Append("record " + std::to_string(i)).ok());
    }
  }
  const std::string bytes = ReadFileBytes(path);
  size_t prev_records = 0;
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    WriteFileBytes(cut_path, std::string_view(bytes).substr(0, cut));
    std::vector<std::string> seen;
    auto result = durability::ReplayWalFile(cut_path, [&](std::string_view p) {
      seen.emplace_back(p);
      return common::Status::Ok();
    });
    ASSERT_TRUE(result.ok()) << "cut " << cut;  // truncation is never an error
    const durability::WalReplayResult& r = result.value();
    // The replayed records must be exactly the expected prefix...
    ASSERT_EQ(seen.size(), r.records);
    for (size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i], "record " + std::to_string(i)) << "cut " << cut;
    }
    // ...monotone in the cut point, with exact byte accounting.
    EXPECT_GE(r.records, prev_records) << "cut " << cut;
    prev_records = r.records;
    if (r.header_valid) {
      EXPECT_EQ(r.valid_bytes + r.discarded_bytes, cut);
    } else {
      EXPECT_EQ(r.records, 0u);
      EXPECT_EQ(r.valid_bytes, 0u);
    }
    if (cut == bytes.size()) {
      EXPECT_EQ(r.records, 5u);
      EXPECT_FALSE(r.torn_tail);
    }
  }
}

TEST(DurabilityWal, ShortForeignAndWrongVersionHeadersReplayAsEmpty) {
  TempDir dir;
  const std::string path = dir.path() + "/t.wal.1";
  dir.Track("t.wal.1");
  const auto replay_records = [&]() {
    size_t n = 0;
    auto result = durability::ReplayWalFile(path, [&](std::string_view) {
      ++n;
      return common::Status::Ok();
    });
    EXPECT_TRUE(result.ok());
    EXPECT_FALSE(result.value().header_valid);
    return n;
  };
  WriteFileBytes(path, "");  // zero-length: crash before the header landed
  EXPECT_EQ(replay_records(), 0u);
  WriteFileBytes(path, "LDMWAL");  // partial header
  EXPECT_EQ(replay_records(), 0u);
  WriteFileBytes(path, "this is not a WAL file at all......");  // foreign
  EXPECT_EQ(replay_records(), 0u);
  std::string wrong_version = "LDMWAL01";
  durability::AppendU32(&wrong_version, 99);
  durability::AppendU64(&wrong_version, 1);
  WriteFileBytes(path, wrong_version);
  EXPECT_EQ(replay_records(), 0u);
}

TEST(DurabilityWal, PeekHeaderParsesEpochWithoutReplaying) {
  std::string bytes = "LDMWAL01";
  durability::AppendU32(&bytes, durability::kWalVersion);
  durability::AppendU64(&bytes, 42);
  uint64_t epoch = 0;
  EXPECT_TRUE(durability::PeekWalHeader(bytes, &epoch));
  EXPECT_EQ(epoch, 42u);
  EXPECT_FALSE(durability::PeekWalHeader(std::string_view(bytes).substr(0, 19),
                                         &epoch));
  EXPECT_FALSE(durability::PeekWalHeader("XXXXXXXX1234567890ab", &epoch));
}

TEST(DurabilityWal, ChecksumCorruptionStopsReplayBeforeTheBadRecord) {
  TempDir dir;
  const std::string path = dir.path() + "/t.wal.1";
  dir.Track("t.wal.1");
  {
    auto writer = durability::WalWriter::Create(path, 1, false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append("aaaa").ok());
    ASSERT_TRUE(writer.value()->Append("bbbb").ok());
    ASSERT_TRUE(writer.value()->Append("cccc").ok());
  }
  std::string bytes = ReadFileBytes(path);
  // Flip one payload byte of the middle record.
  const size_t second_payload =
      durability::kWalHeaderSize + durability::kWalRecordOverhead + 4 +
      durability::kWalRecordOverhead;
  bytes[second_payload] ^= 0x40;
  WriteFileBytes(path, bytes);
  std::vector<std::string> seen;
  auto result = durability::ReplayWalFile(path, [&](std::string_view p) {
    seen.emplace_back(p);
    return common::Status::Ok();
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"aaaa"}));
  EXPECT_TRUE(result.value().torn_tail);
  EXPECT_GT(result.value().discarded_bytes, 0u);
}

TEST(DurabilityWal, CrashInjectionTearsExactlyAtTheLimit) {
  TempDir dir;
  const std::string path = dir.path() + "/t.wal.1";
  dir.Track("t.wal.1");
  const int64_t limit = static_cast<int64_t>(durability::kWalHeaderSize) +
                        2 * (durability::kWalRecordOverhead + 4) + 5;
  {
    auto writer = durability::WalWriter::Create(path, 1, false);
    ASSERT_TRUE(writer.ok());
    writer.value()->set_crash_after_bytes(limit);
    ASSERT_TRUE(writer.value()->Append("aaaa").ok());
    ASSERT_TRUE(writer.value()->Append("bbbb").ok());
    // The third record would cross the limit: partial write, then kAborted.
    EXPECT_FALSE(writer.value()->Append("cccc").ok());
    EXPECT_FALSE(writer.value()->Append("dddd").ok());  // stays dead
  }
  const std::string bytes = ReadFileBytes(path);
  EXPECT_EQ(bytes.size(), static_cast<size_t>(limit));  // torn mid-record
  std::vector<std::string> seen;
  auto result = durability::ReplayWalFile(path, [&](std::string_view p) {
    seen.emplace_back(p);
    return common::Status::Ok();
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"aaaa", "bbbb"}));
  EXPECT_TRUE(result.value().torn_tail);
}

TEST(DurabilityWal, GroupCommitByteStreamMatchesUnbatched) {
  TempDir dir;
  const std::string plain_path = dir.path() + "/plain.wal.1";
  const std::string grouped_path = dir.path() + "/grouped.wal.1";
  dir.Track("plain.wal.1");
  dir.Track("grouped.wal.1");
  auto write_all = [](durability::WalWriter* w) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(w->Append("group commit record " + std::to_string(i)).ok());
    }
  };
  {
    auto writer = durability::WalWriter::Create(plain_path, 1, false);
    ASSERT_TRUE(writer.ok());
    write_all(writer.value().get());
  }
  {
    auto writer = durability::WalWriter::Create(grouped_path, 1, false);
    ASSERT_TRUE(writer.ok());
    writer.value()->set_group_commit_bytes(256);
    write_all(writer.value().get());
    // Buffering is really happening: the logical size runs ahead of the
    // bytes on disk between flushes...
    EXPECT_GT(writer.value()->size_bytes(),
              ReadFileBytes(grouped_path).size());
    // ...and Sync pushes the remainder out.
    ASSERT_TRUE(writer.value()->Sync().ok());
    EXPECT_EQ(writer.value()->size_bytes(),
              ReadFileBytes(grouped_path).size());
  }
  // Batched or not, the committed byte stream is identical.
  EXPECT_EQ(ReadFileBytes(plain_path), ReadFileBytes(grouped_path));
}

TEST(DurabilityWal, GroupCommitCrashTearsAtTheFlushBoundary) {
  TempDir dir;
  const std::string path = dir.path() + "/t.wal.1";
  dir.Track("t.wal.1");
  const size_t record = durability::kWalRecordOverhead + 4;
  // Crash limit sits mid-way through the second flushed batch.
  const int64_t limit = static_cast<int64_t>(durability::kWalHeaderSize) +
                        static_cast<int64_t>(3 * record) + 5;
  {
    auto writer = durability::WalWriter::Create(path, 1, false);
    ASSERT_TRUE(writer.ok());
    writer.value()->set_crash_after_bytes(limit);
    writer.value()->set_group_commit_bytes(2 * record);  // 2 records a batch
    // First batch: buffered, then flushed whole under the limit.
    ASSERT_TRUE(writer.value()->Append("aaaa").ok());
    ASSERT_TRUE(writer.value()->Append("bbbb").ok());
    // Second batch: buffered ok, torn when the flush crosses the limit.
    ASSERT_TRUE(writer.value()->Append("cccc").ok());
    EXPECT_FALSE(writer.value()->Append("dddd").ok());
    EXPECT_FALSE(writer.value()->Sync().ok());  // the writer stays dead
  }
  const std::string bytes = ReadFileBytes(path);
  EXPECT_EQ(bytes.size(), static_cast<size_t>(limit));
  std::vector<std::string> seen;
  auto result = durability::ReplayWalFile(path, [&](std::string_view p) {
    seen.emplace_back(p);
    return common::Status::Ok();
  });
  ASSERT_TRUE(result.ok());
  // The committed prefix is exactly the records fully under the limit.
  EXPECT_EQ(seen, (std::vector<std::string>{"aaaa", "bbbb", "cccc"}));
  EXPECT_TRUE(result.value().torn_tail);
}

// ---------------------------------------------------------------------------
// Snapshot format.

TEST(DurabilitySnapshot, RoundtripsAndPublishesAtomically) {
  TempDir dir;
  const std::string path = dir.path() + "/c.snap";
  dir.Track("c.snap");
  const std::string payload = "component image bytes";
  ASSERT_TRUE(
      durability::WriteSnapshotFile(path, 7, payload, /*fsync=*/false).ok());
  EXPECT_FALSE(FileExists(path + ".tmp"));  // tmp renamed away, never left
  const std::string bytes = ReadFileBytes(path);
  durability::SnapshotView view = durability::ParseSnapshot(bytes);
  ASSERT_TRUE(view.valid);
  EXPECT_EQ(view.epoch, 7u);
  EXPECT_EQ(view.payload, payload);

  // An empty payload is a legal image (an empty component is durable too).
  ASSERT_TRUE(durability::WriteSnapshotFile(path, 8, "", false).ok());
  view = durability::ParseSnapshot(ReadFileBytes(path));
  ASSERT_TRUE(view.valid);
  EXPECT_EQ(view.epoch, 8u);
  EXPECT_TRUE(view.payload.empty());
}

TEST(DurabilitySnapshot, NoTruncationOrBitFlipEverValidates) {
  TempDir dir;
  const std::string path = dir.path() + "/c.snap";
  dir.Track("c.snap");
  ASSERT_TRUE(
      durability::WriteSnapshotFile(path, 1, "payload payload", false).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_TRUE(durability::ParseSnapshot(bytes).valid);
  // Every proper prefix is invalid: the trailing checksum cannot verify.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        durability::ParseSnapshot(std::string_view(bytes).substr(0, cut)).valid)
        << "prefix " << cut;
  }
  // Any single bit flip is invalid (magic, version, epoch, length, payload,
  // or checksum — all covered by structure checks plus FNV over the payload).
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] ^= 0x01;
    EXPECT_FALSE(durability::ParseSnapshot(mutated).valid) << "byte " << i;
  }
}

// ---------------------------------------------------------------------------
// DurableStore recovery policy (exercised through the flat durable index —
// the simplest DurableState).

durability::DurableStore::Options StoreOptions(const std::string& dir,
                                               const std::string& name) {
  durability::DurableStore::Options options;
  options.dir = dir;
  options.name = name;
  options.fsync = false;
  return options;
}

vectordb::Vector TestVector(uint64_t seed) {
  vectordb::Vector v(4);
  for (size_t j = 0; j < v.size(); ++j) {
    v[j] = static_cast<float>((seed * 5 + j) % 11) - 5.0f;
  }
  return v;
}

TEST(DurableStore, ColdOpenStartsEmptyAtEpochZero) {
  TempDir dir;
  dir.Track("ix.snap");
  dir.Track("ix.wal.0");
  vectordb::DurableVectorIndex index({});
  auto store = durability::DurableStore::Open(StoreOptions(dir.path(), "ix"),
                                              &index);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(index.Size(), 0u);
  EXPECT_EQ(store.value()->epoch(), 0u);
  EXPECT_FALSE(store.value()->recovery_info().snapshot_loaded);
  EXPECT_FALSE(store.value()->recovery_info().snapshot_corrupt);
  EXPECT_TRUE(FileExists(store.value()->wal_path(0)));
  // The recovery trace is deterministic: two fixed phases under the root.
  const std::string trace = store.value()->recovery_trace().ToJson();
  EXPECT_NE(trace.find("snapshot_load"), std::string::npos);
  EXPECT_NE(trace.find("wal_replay"), std::string::npos);
}

TEST(DurableStore, AppendRequiresAGuardFromBeginMutation) {
  TempDir dir;
  dir.Track("ix.snap");
  dir.Track("ix.wal.0");
  vectordb::DurableVectorIndex index({});
  auto store = durability::DurableStore::Open(StoreOptions(dir.path(), "ix"),
                                              &index);
  ASSERT_TRUE(store.ok());
  durability::MutationGuard empty;  // not from BeginMutation
  EXPECT_EQ(store.value()->Append(empty, "rec").code(),
            common::StatusCode::kFailedPrecondition);
  durability::MutationGuard held = store.value()->BeginMutation();
  EXPECT_TRUE(store.value()->Append(held, "rec").ok());
}

TEST(DurableStore, ReopenReplaysTheWalAndIsIdempotent) {
  TempDir dir;
  dir.Track("ix.snap");
  dir.Track("ix.wal.0");
  std::string image;
  {
    vectordb::DurableVectorIndex index({});
    auto store = durability::DurableStore::Open(StoreOptions(dir.path(), "ix"),
                                                &index);
    ASSERT_TRUE(store.ok());
    index.AttachDurability(store.value().get());
    for (uint64_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(index.Add(i, TestVector(i)).ok());
    }
    ASSERT_TRUE(index.Remove(3).ok());
    image = Image(index);
  }
  for (int round = 0; round < 2; ++round) {  // double recovery: idempotent
    vectordb::DurableVectorIndex recovered({});
    auto store = durability::DurableStore::Open(StoreOptions(dir.path(), "ix"),
                                                &recovered);
    ASSERT_TRUE(store.ok()) << "round " << round;
    EXPECT_EQ(Image(recovered), image) << "round " << round;
    EXPECT_EQ(store.value()->recovery_info().wal_records_replayed, 9u);
    EXPECT_EQ(store.value()->recovery_info().wal_discarded_bytes, 0u);
    EXPECT_EQ(recovered.Size(), 7u);
    EXPECT_FALSE(recovered.Contains(3));
  }
}

TEST(DurableStore, GroupCommitRecoversIdenticallyToUnbatched) {
  TempDir dir;
  dir.Track("plain.snap");
  dir.Track("plain.wal.0");
  dir.Track("grp.snap");
  dir.Track("grp.wal.0");
  // Same mutation stream through a write-through store and a group-commit
  // store; Sync flushes the batch, so the WALs must be byte-identical.
  auto run = [&](const std::string& name, size_t group_bytes) {
    vectordb::DurableVectorIndex index({});
    auto options = StoreOptions(dir.path(), name);
    options.group_commit_bytes = group_bytes;
    auto store = durability::DurableStore::Open(options, &index);
    EXPECT_TRUE(store.ok());
    index.AttachDurability(store.value().get());
    for (uint64_t i = 0; i < 12; ++i) {
      EXPECT_TRUE(index.Add(i, TestVector(i)).ok());
    }
    EXPECT_TRUE(index.Remove(5).ok());
    EXPECT_TRUE(store.value()->Sync().ok());
    return ReadFileBytes(store.value()->wal_path(0));
  };
  const std::string plain_wal = run("plain", 0);
  const std::string grouped_wal = run("grp", 1 << 20);  // one giant batch
  // Only the embedded epoch-bearing headers could differ — they don't: both
  // are epoch 0 — so the streams must match byte for byte.
  EXPECT_EQ(plain_wal, grouped_wal);

  // And recovery agrees: the grouped store replays to the same image.
  vectordb::DurableVectorIndex plain({}), grouped({});
  auto plain_store =
      durability::DurableStore::Open(StoreOptions(dir.path(), "plain"), &plain);
  auto grouped_options = StoreOptions(dir.path(), "grp");
  grouped_options.group_commit_bytes = 1 << 20;
  auto grouped_store =
      durability::DurableStore::Open(grouped_options, &grouped);
  ASSERT_TRUE(plain_store.ok());
  ASSERT_TRUE(grouped_store.ok());
  EXPECT_EQ(Image(plain), Image(grouped));
  EXPECT_EQ(grouped_store.value()->recovery_info().wal_records_replayed, 13u);
  EXPECT_EQ(grouped_store.value()->recovery_info().wal_discarded_bytes, 0u);
}

TEST(DurableStore, CheckpointRetiresTheWalAndAdvancesTheEpoch) {
  TempDir dir;
  dir.Track("ix.snap");
  dir.Track("ix.wal.0");
  dir.Track("ix.wal.1");
  vectordb::DurableVectorIndex index({});
  auto store = durability::DurableStore::Open(StoreOptions(dir.path(), "ix"),
                                              &index);
  ASSERT_TRUE(store.ok());
  index.AttachDurability(store.value().get());
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(index.Add(i, TestVector(i)).ok());
  }
  const std::string wal0 = store.value()->wal_path(0);
  ASSERT_TRUE(store.value()->Checkpoint().ok());
  EXPECT_EQ(store.value()->epoch(), 1u);
  EXPECT_FALSE(FileExists(wal0));  // retired
  EXPECT_TRUE(FileExists(store.value()->snapshot_path()));
  EXPECT_TRUE(FileExists(store.value()->wal_path(1)));
  // The fresh WAL is just a header: everything lives in the snapshot now.
  EXPECT_EQ(store.value()->wal_size_bytes(), durability::kWalHeaderSize);

  // Recovery from snapshot alone (plus post-checkpoint appends).
  ASSERT_TRUE(index.Add(100, TestVector(100)).ok());
  const std::string image = Image(index);
  store.value().reset();
  vectordb::DurableVectorIndex recovered({});
  auto reopened = durability::DurableStore::Open(
      StoreOptions(dir.path(), "ix"), &recovered);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened.value()->recovery_info().snapshot_loaded);
  EXPECT_EQ(reopened.value()->recovery_info().epoch, 1u);
  EXPECT_EQ(reopened.value()->recovery_info().wal_records_replayed, 1u);
  EXPECT_EQ(Image(recovered), image);
}

TEST(DurableStore, CorruptSnapshotFallsBackToEmptyButValid) {
  TempDir dir;
  dir.Track("ix.snap");
  dir.Track("ix.wal.0");
  WriteFileBytes(dir.path() + "/ix.snap", "garbage, not a snapshot");
  vectordb::DurableVectorIndex index({});
  auto store = durability::DurableStore::Open(StoreOptions(dir.path(), "ix"),
                                              &index);
  ASSERT_TRUE(store.ok());  // never a startup error
  EXPECT_TRUE(store.value()->recovery_info().snapshot_corrupt);
  EXPECT_FALSE(store.value()->recovery_info().snapshot_loaded);
  EXPECT_EQ(index.Size(), 0u);
  // The store is fully usable after the fallback.
  index.AttachDurability(store.value().get());
  EXPECT_TRUE(index.Add(1, TestVector(1)).ok());
  EXPECT_TRUE(store.value()->Checkpoint().ok());
}

TEST(DurableStore, WalWithMismatchedEmbeddedEpochIsNeverReplayed) {
  TempDir dir;
  dir.Track("ix.snap");
  dir.Track("ix.wal.1");
  // Publish a valid empty snapshot at epoch 1...
  std::string empty_image;
  {
    vectordb::DurableVectorIndex scratch({});
    ASSERT_TRUE(scratch.SaveSnapshot(&empty_image).ok());
  }
  ASSERT_TRUE(durability::WriteSnapshotFile(dir.path() + "/ix.snap", 1,
                                            empty_image, false)
                  .ok());
  // ...and hand-craft ix.wal.1 whose *embedded* epoch says 2, carrying one
  // structurally valid record. Recovery must not apply it: the record
  // belongs on a different base image.
  std::string payload;
  durability::AppendU8(&payload, 1);  // DurableVectorIndex WalOp::kAdd
  durability::AppendU64(&payload, 9);
  durability::AppendFloats(&payload, TestVector(9));
  std::string wal = "LDMWAL01";
  durability::AppendU32(&wal, durability::kWalVersion);
  durability::AppendU64(&wal, 2);  // lies about its epoch
  durability::AppendU32(&wal, static_cast<uint32_t>(payload.size()));
  durability::AppendU64(&wal, common::Fnv1a(payload));
  wal += payload;
  WriteFileBytes(dir.path() + "/ix.wal.1", wal);

  vectordb::DurableVectorIndex index({});
  auto store = durability::DurableStore::Open(StoreOptions(dir.path(), "ix"),
                                              &index);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->recovery_info().wal_records_replayed, 0u);
  EXPECT_EQ(store.value()->recovery_info().wal_discarded_bytes, wal.size());
  EXPECT_EQ(index.Size(), 0u);  // the foreign record never reached the index
}

TEST(DurableStore, SweepsOrphanWalsAndSnapshotTmps) {
  TempDir dir;
  dir.Track("ix.snap");
  dir.Track("ix.wal.0");
  dir.Track("other.keep");
  WriteFileBytes(dir.path() + "/ix.wal.7", "stale epoch wal");
  WriteFileBytes(dir.path() + "/ix.wal.12", "another stale wal");
  WriteFileBytes(dir.path() + "/ix.snap.tmp", "unpublished snapshot");
  WriteFileBytes(dir.path() + "/other.keep", "unrelated file");
  vectordb::DurableVectorIndex index({});
  auto store = durability::DurableStore::Open(StoreOptions(dir.path(), "ix"),
                                              &index);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->recovery_info().orphans_removed, 3u);
  EXPECT_FALSE(FileExists(dir.path() + "/ix.wal.7"));
  EXPECT_FALSE(FileExists(dir.path() + "/ix.wal.12"));
  EXPECT_FALSE(FileExists(dir.path() + "/ix.snap.tmp"));
  EXPECT_TRUE(FileExists(dir.path() + "/other.keep"));  // not ours, not touched
}

TEST(DurableStore, TornTailIsTruncatedOnceAndStaysGone) {
  TempDir dir;
  dir.Track("ix.snap");
  dir.Track("ix.wal.0");
  std::string image_before_tear;
  {
    vectordb::DurableVectorIndex index({});
    auto store = durability::DurableStore::Open(StoreOptions(dir.path(), "ix"),
                                                &index);
    ASSERT_TRUE(store.ok());
    index.AttachDurability(store.value().get());
    for (uint64_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(index.Add(i, TestVector(i)).ok());
      if (i == 4) image_before_tear = Image(index);
    }
  }
  // Tear the last record: cut 3 bytes off the file.
  const std::string wal_file = dir.path() + "/ix.wal.0";
  std::string bytes = ReadFileBytes(wal_file);
  WriteFileBytes(wal_file, std::string_view(bytes).substr(0, bytes.size() - 3));

  vectordb::DurableVectorIndex first({});
  auto open1 = durability::DurableStore::Open(StoreOptions(dir.path(), "ix"),
                                              &first);
  ASSERT_TRUE(open1.ok());
  EXPECT_TRUE(open1.value()->recovery_info().torn_tail);
  EXPECT_GT(open1.value()->recovery_info().wal_discarded_bytes, 0u);
  EXPECT_EQ(Image(first), image_before_tear);  // the clean 5-record prefix
  open1.value().reset();

  vectordb::DurableVectorIndex second({});
  auto open2 = durability::DurableStore::Open(StoreOptions(dir.path(), "ix"),
                                              &second);
  ASSERT_TRUE(open2.ok());
  EXPECT_FALSE(open2.value()->recovery_info().torn_tail);  // already repaired
  EXPECT_EQ(open2.value()->recovery_info().wal_discarded_bytes, 0u);
  EXPECT_EQ(Image(second), image_before_tear);
}

// ---------------------------------------------------------------------------
// Component recovery equivalence.

TEST(DurableComponents, SemanticCacheSurvivesInsertRefreshEvictCompact) {
  TempDir dir;
  dir.Track("cache.snap");
  dir.Track("cache.wal.0");
  optimize::SemanticCache::Options options;
  options.capacity = 6;
  options.num_shards = 2;
  options.compact_min_dead = 2;  // force compactions into the WAL stream
  std::string image;
  size_t live = 0;
  {
    optimize::SemanticCache cache(options);
    auto store = durability::DurableStore::Open(
        StoreOptions(dir.path(), "cache"), &cache);
    ASSERT_TRUE(store.ok());
    cache.AttachDurability(store.value().get());
    for (size_t i = 0; i < 40; ++i) {
      // 11 distinct queries over capacity 6: inserts, refreshes (repeats),
      // evictions, and compactions all hit the WAL.
      cache.Insert("query " + std::to_string(i % 11),
                   "answer " + std::to_string(i),
                   common::Money::FromMicros(100 + static_cast<int64_t>(i)));
    }
    image = Image(cache);
    live = cache.Size();
  }
  optimize::SemanticCache recovered(options);
  auto store = durability::DurableStore::Open(
      StoreOptions(dir.path(), "cache"), &recovered);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(Image(recovered), image);
  EXPECT_EQ(recovered.Size(), live);
  EXPECT_GT(live, 0u);
  // The recovered cache serves: the final op (op 39 refreshed "query 6")
  // hits with its latest response.
  auto hit = recovered.Lookup("query 6", common::Money::FromMicros(500));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->response, "answer 39");
}

TEST(DurableComponents, SemanticCacheRejectsSnapshotWithWrongShardCount) {
  TempDir dir;
  dir.Track("cache.snap");
  dir.Track("cache.wal.0");
  dir.Track("cache.wal.1");
  optimize::SemanticCache::Options options;
  options.num_shards = 2;
  {
    optimize::SemanticCache cache(options);
    auto store = durability::DurableStore::Open(
        StoreOptions(dir.path(), "cache"), &cache);
    ASSERT_TRUE(store.ok());
    cache.AttachDurability(store.value().get());
    cache.Insert("q", "r");
    ASSERT_TRUE(store.value()->Checkpoint().ok());
  }
  // A 4-shard cache cannot host a 2-shard image (slot ids shard-relative):
  // recovery treats it like corruption and starts empty rather than crash.
  options.num_shards = 4;
  optimize::SemanticCache reshaped(options);
  auto store = durability::DurableStore::Open(
      StoreOptions(dir.path(), "cache"), &reshaped);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store.value()->recovery_info().snapshot_corrupt);
  EXPECT_EQ(reshaped.Size(), 0u);
}

TEST(DurableComponents, PromptStoreRecoversUtilityTallies) {
  TempDir dir;
  dir.Track("ps.snap");
  dir.Track("ps.wal.0");
  optimize::PromptStore::Options options;
  options.capacity = 4;
  std::string image;
  size_t live = 0;
  {
    optimize::PromptStore store(options);
    auto durable = durability::DurableStore::Open(
        StoreOptions(dir.path(), "ps"), &store);
    ASSERT_TRUE(durable.ok());
    store.AttachDurability(durable.value().get());
    std::vector<uint64_t> ids;
    for (int i = 0; i < 7; ++i) {  // over capacity: evictions logged too
      ids.push_back(store.Add("example input " + std::to_string(i),
                              "example output " + std::to_string(i)));
      // Reward even prompts so retention keeps them over odd ones.
      store.RecordOutcome(ids.back(), i % 2 == 0);
      store.RecordOutcome(ids.back(), i % 2 == 0);
    }
    image = Image(store);
    live = store.Size();
  }
  optimize::PromptStore recovered(options);
  auto durable = durability::DurableStore::Open(StoreOptions(dir.path(), "ps"),
                                                &recovered);
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ(Image(recovered), image);
  EXPECT_EQ(recovered.Size(), live);
  // The learned tallies came back: prompt 6 earned two successes.
  auto p = recovered.Get(6);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->uses, 2u);
  EXPECT_EQ(p->successes, 2u);
}

TEST(DurableComponents, HnswIndexRecoversTheExactVectorSet) {
  TempDir dir;
  dir.Track("hx.snap");
  dir.Track("hx.wal.0");
  vectordb::DurableVectorIndex::Options options;
  options.kind = vectordb::DurableVectorIndex::Kind::kHnsw;
  std::vector<std::pair<uint64_t, vectordb::Vector>> want;
  {
    vectordb::DurableVectorIndex index(options);
    auto store = durability::DurableStore::Open(
        StoreOptions(dir.path(), "hx"), &index);
    ASSERT_TRUE(store.ok());
    index.AttachDurability(store.value().get());
    for (uint64_t i = 0; i < 30; ++i) {
      ASSERT_TRUE(index.Add(i, TestVector(i)).ok());
    }
    for (uint64_t i = 0; i < 30; i += 7) {
      ASSERT_TRUE(index.Remove(i).ok());
    }
    index.ForEach([&](uint64_t id, const vectordb::Vector& v) {
      want.emplace_back(id, v);
    });
  }
  vectordb::DurableVectorIndex recovered(options);
  auto store = durability::DurableStore::Open(StoreOptions(dir.path(), "hx"),
                                              &recovered);
  ASSERT_TRUE(store.ok());
  // The durable image is the vector *set*: identical ids and floats, even
  // though the rebuilt HNSW graph may wire them differently.
  std::vector<std::pair<uint64_t, vectordb::Vector>> got;
  recovered.ForEach([&](uint64_t id, const vectordb::Vector& v) {
    got.emplace_back(id, v);
  });
  EXPECT_EQ(got, want);
  // And search works over the rebuilt graph: results name live ids only.
  auto results = recovered.Search(TestVector(9), 3);
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) {
    EXPECT_TRUE(recovered.Contains(r.id));
  }
}

// ---------------------------------------------------------------------------
// serve::Server virtual-time maintenance hook (the checkpoint driver).

TEST(ServeMaintenance, HookFiresOncePerCrossedVirtualBoundary) {
  llm::ModelSpec spec;
  spec.name = "sim-maint";
  spec.capability = 0.9;
  spec.latency_ms_per_1k_tokens = 100.0;
  auto model = std::make_shared<llm::SimulatedLlm>(spec, 3);
  model->RegisterSkill(std::make_unique<llm::FreeformSkill>());

  size_t fires = 0;
  serve::Server::Options options;
  options.worker_threads = 2;
  options.shed_policy = serve::ShedPolicy::kNone;
  options.maintenance_interval_vms = 10.0;
  options.maintenance_hook = [&fires] { ++fires; };
  serve::Server server(model, options);

  // Boundaries at 10, 20, 30, ...: arrival 12 crosses one, 25 crosses 20,
  // 55 catches up across 30, 40, 50 — deterministic in arrival order, so
  // the count is a pure function of the arrival times.
  const double arrivals[] = {0.0, 5.0, 12.0, 25.0, 55.0};
  uint64_t id = 0;
  for (double at : arrivals) {
    serve::Request request;
    request.id = id++;
    request.input = "question";
    request.arrival_vms = at;
    server.Submit(request);
  }
  EXPECT_EQ(fires, 5u);
  auto responses = server.Drain();
  EXPECT_EQ(responses.size(), 5u);
  EXPECT_EQ(fires, 5u);  // Drain adds no phantom boundary crossings
}

TEST(ServeMaintenance, HookCanCheckpointADurableCacheUnderLoad) {
  // End-to-end shape of the durability wiring: a CachedLlm populates a
  // durable SemanticCache from worker threads while the *submitting* thread
  // periodically checkpoints through the maintenance hook — the commit gate
  // keeps snapshot and WAL consistent. Afterwards a fresh cache recovered
  // from disk must byte-match the live one.
  TempDir dir;
  dir.Track("mc.snap");
  for (int e = 0; e < 12; ++e) dir.Track("mc.wal." + std::to_string(e));

  llm::ModelSpec spec;
  spec.name = "sim-maint";
  spec.capability = 0.9;
  spec.latency_ms_per_1k_tokens = 100.0;
  auto model = std::make_shared<llm::SimulatedLlm>(spec, 3);
  model->RegisterSkill(std::make_unique<llm::FreeformSkill>());

  optimize::SemanticCache::Options cache_options;
  cache_options.capacity = 32;
  optimize::SemanticCache cache(cache_options);
  auto store = durability::DurableStore::Open(
      StoreOptions(dir.path(), "mc"), &cache);
  ASSERT_TRUE(store.ok());
  cache.AttachDurability(store.value().get());
  auto cached = std::make_shared<optimize::CachedLlm>(model, &cache);

  serve::Server::Options options;
  options.worker_threads = 4;
  options.shed_policy = serve::ShedPolicy::kNone;
  options.maintenance_interval_vms = 50.0;
  durability::DurableStore* raw_store = store.value().get();
  options.maintenance_hook = [raw_store] {
    ASSERT_TRUE(raw_store->Checkpoint().ok());
  };
  serve::Server server(cached, options);
  for (uint64_t i = 0; i < 60; ++i) {
    serve::Request request;
    request.id = i;
    request.input = "question " + std::to_string(i % 12);
    request.arrival_vms = static_cast<double>(i) * 7.0;
    server.Submit(request);
  }
  auto responses = server.Drain();
  ASSERT_EQ(responses.size(), 60u);
  EXPECT_GT(store.value()->epoch(), 0u);  // checkpoints actually ran

  const std::string image = Image(cache);
  optimize::SemanticCache recovered(cache_options);
  auto reopened = durability::DurableStore::Open(
      StoreOptions(dir.path(), "mc"), &recovered);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(Image(recovered), image);
}

}  // namespace
}  // namespace llmdm
