#include <gtest/gtest.h>

#include "common/string_util.h"
#include "data/nl2sql_workload.h"
#include "data/qa_workload.h"
#include "llm/deadline.h"
#include "llm/prefix_trie.h"
#include "llm/simulated.h"
#include "sql/database.h"
#include "text/tokenizer.h"

namespace llmdm::llm {
namespace {

class LlmTest : public ::testing::Test {
 protected:
  LlmTest() {
    common::Rng rng(101);
    kb_ = data::KnowledgeBase::Generate(60, rng);
    models_ = CreatePaperModelLadder(&kb_, 2024);
  }

  LlmModel& babbage() { return *models_[0]; }
  LlmModel& gpt35() { return *models_[1]; }
  LlmModel& gpt4() { return *models_[2]; }

  data::KnowledgeBase kb_;
  std::vector<std::shared_ptr<LlmModel>> models_;
};

TEST_F(LlmTest, PromptRenderAndTokens) {
  Prompt p = MakePrompt("qa", "Who is the advisor of Alice Adams?");
  p.system = "You are a helpful assistant.";
  p.examples.push_back({"Who is the mentor of Bob Baker?", "Carol Chen"});
  std::string rendered = p.Render();
  EXPECT_NE(rendered.find("[system]"), std::string::npos);
  EXPECT_NE(rendered.find("[example]"), std::string::npos);
  EXPECT_NE(rendered.find("[input]"), std::string::npos);
  EXPECT_GT(p.CountInputTokens(), 20u);
}

TEST_F(LlmTest, MemoizedTokenCountMatchesUncachedPath) {
  // CountInputTokens memoizes the prompt-prefix count (the metering
  // boundary counts the same system/few-shot prefix on every call); the
  // memoized total must equal counting the full rendered prompt directly,
  // for every shape of prompt — empty and non-empty sections, punctuation
  // and whitespace at the section seams, multi-line fields.
  std::vector<Prompt> prompts;
  prompts.push_back(MakePrompt("freeform", ""));
  prompts.push_back(MakePrompt("freeform", "plain input, no prefix at all"));
  {
    Prompt p = MakePrompt("qa", "?leading punctuation input");
    p.system = "You are a careful data engineer.";
    prompts.push_back(p);
  }
  {
    Prompt p = MakePrompt("nl2sql", "multi\nline\ninput text");
    p.instructions = "Translate the question to SQL;\nreturn SQL only.";
    p.examples.push_back({"stadiums that had concerts in 2014", "SELECT 1"});
    p.examples.push_back({"patients with high cholesterol?", "SELECT 2"});
    prompts.push_back(p);
  }
  {
    Prompt p = MakePrompt("qa", "   padded   input   ");
    p.system = "sys";
    p.instructions = "inst";
    p.examples.push_back({"", ""});  // empty example fields
    prompts.push_back(p);
  }
  for (const Prompt& p : prompts) {
    EXPECT_EQ(p.CountInputTokens(), text::CountTokens(p.Render()))
        << p.Render();
  }
  // Counting the same prompts again is served from the memo (hit delta),
  // and still agrees.
  auto before = text::GetTokenCountCacheStats();
  for (const Prompt& p : prompts) {
    EXPECT_EQ(p.CountInputTokens(), text::CountTokens(p.Render()));
  }
  auto after = text::GetTokenCountCacheStats();
  EXPECT_GE(after.hits - before.hits, prompts.size());
}

TEST_F(LlmTest, DeterministicCompletions) {
  Prompt p = MakePrompt("qa", "Who is the advisor of " + kb_.entities()[0] + "?");
  auto a = gpt35().Complete(p);
  auto b = gpt35().Complete(p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->text, b->text);
  EXPECT_EQ(a->cost, b->cost);
}

TEST_F(LlmTest, SampleSaltGivesIndependentDraws) {
  // Across many questions, at least some completions must differ by salt
  // (hard questions on the small model flip between right and wrong).
  int diffs = 0;
  for (int i = 0; i < 20; ++i) {
    std::string subject = kb_.entities()[i % kb_.entities().size()];
    Prompt p = MakePrompt(
        "qa", data::RenderChainQuestion({"advisor", "manager"}, subject));
    Prompt p2 = p;
    p2.sample_salt = 1;
    auto a = babbage().Complete(p);
    auto b = babbage().Complete(p2);
    ASSERT_TRUE(a.ok() && b.ok());
    if (a->text != b->text) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST_F(LlmTest, CostScalesWithModelAndTokens) {
  Prompt p = MakePrompt("qa", "Who is the advisor of " + kb_.entities()[1] + "?");
  auto small = babbage().Complete(p);
  auto large = gpt4().Complete(p);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(large->cost, small->cost);
  // Longer prompt costs more on the same model.
  Prompt longer = p;
  for (int i = 0; i < 5; ++i) {
    longer.examples.push_back({"Who is the mentor of X?", "Y"});
  }
  auto long_result = gpt4().Complete(longer);
  ASSERT_TRUE(long_result.ok());
  EXPECT_GT(long_result->cost, large->cost);
}

TEST_F(LlmTest, AccuracyOrderedByCapability) {
  common::Rng rng(7);
  auto workload = data::GenerateQaWorkload(kb_, 120, {1.0, 1.0, 1.0}, rng);
  auto accuracy = [&](LlmModel& model) {
    int correct = 0;
    for (const auto& item : workload) {
      Prompt p = MakePrompt("qa", item.question);
      auto c = model.Complete(p);
      EXPECT_TRUE(c.ok());
      if (c.ok() && c->text == item.answer) ++correct;
    }
    return static_cast<double>(correct) / workload.size();
  };
  double acc_small = accuracy(babbage());
  double acc_mid = accuracy(gpt35());
  double acc_large = accuracy(gpt4());
  EXPECT_LT(acc_small, acc_mid);
  EXPECT_LT(acc_mid, acc_large);
  EXPECT_LT(acc_small, 0.55);
  EXPECT_GT(acc_large, 0.80);
}

TEST_F(LlmTest, HopsMakeQuestionsHarder) {
  common::Rng rng(8);
  auto easy = data::GenerateQaWorkload(kb_, 80, {1.0}, rng);
  auto hard = data::GenerateQaWorkload(kb_, 80, {0.0, 0.0, 1.0}, rng);
  auto accuracy = [&](const std::vector<data::QaItem>& items) {
    int correct = 0;
    for (const auto& item : items) {
      auto c = gpt35().Complete(MakePrompt("qa", item.question));
      if (c.ok() && c->text == item.answer) ++correct;
    }
    return static_cast<double>(correct) / items.size();
  };
  EXPECT_GT(accuracy(easy), accuracy(hard) + 0.1);
}

TEST_F(LlmTest, UsageMeterAccumulates) {
  UsageMeter meter;
  Prompt p = MakePrompt("qa", "Who is the advisor of " + kb_.entities()[2] + "?");
  ASSERT_TRUE(gpt35().CompleteMetered(p, &meter).ok());
  ASSERT_TRUE(gpt4().CompleteMetered(p, &meter).ok());
  EXPECT_EQ(meter.calls(), 2u);
  EXPECT_GT(meter.cost().micros(), 0);
  EXPECT_EQ(meter.by_model().size(), 2u);
  meter.Reset();
  EXPECT_EQ(meter.calls(), 0u);
}

TEST_F(LlmTest, UnknownTagFallsBackToFreeform) {
  Prompt p = MakePrompt("no_such_skill", "do something");
  auto c = gpt4().Complete(p);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(c->text.find("Understood"), std::string::npos);
}

// ---- NL2SQL skill end-to-end against the SQL engine ------------------------

class Nl2SqlSkillTest : public ::testing::Test {
 protected:
  Nl2SqlSkillTest() {
    common::Rng rng(55);
    auto script = data::BuildStadiumDatabaseScript(10, {2014, 2015}, rng);
    auto r = db_.ExecuteScript(script);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    models_ = CreatePaperModelLadder(nullptr, 31337);
  }

  // Execution-match grading.
  bool Correct(const std::string& predicted_sql, const std::string& gold_sql) {
    auto gold = db_.Query(gold_sql);
    EXPECT_TRUE(gold.ok()) << gold_sql;
    auto pred = db_.Query(predicted_sql);
    if (!pred.ok()) return false;
    return gold.ok() && pred->BagEquals(*gold);
  }

  sql::Database db_;
  std::vector<std::shared_ptr<LlmModel>> models_;
};

TEST_F(Nl2SqlSkillTest, GoldSqlExecutes) {
  for (const auto& q : data::PaperQ1ToQ5()) {
    auto r = db_.Query(q.ToGoldSql());
    EXPECT_TRUE(r.ok()) << q.ToGoldSql() << " -> " << r.status().ToString();
  }
}

TEST_F(Nl2SqlSkillTest, NlRoundTripsThroughParser) {
  common::Rng rng(66);
  data::Nl2SqlWorkloadOptions options;
  options.num_queries = 30;
  auto workload = data::GenerateNl2SqlWorkload(options, rng);
  for (const auto& q : workload) {
    auto parsed = data::ParseNl2SqlQuestion(q.ToNaturalLanguage());
    ASSERT_TRUE(parsed.ok()) << q.ToNaturalLanguage();
    EXPECT_EQ(*parsed, q);
  }
}

TEST_F(Nl2SqlSkillTest, AccuracyImprovesWithModelSize) {
  common::Rng rng(67);
  data::Nl2SqlWorkloadOptions options;
  options.num_queries = 80;
  auto workload = data::GenerateNl2SqlWorkload(options, rng);
  auto accuracy = [&](LlmModel& model) {
    int correct = 0;
    for (const auto& q : workload) {
      Prompt p = MakePrompt("nl2sql", q.ToNaturalLanguage());
      auto c = model.Complete(p);
      EXPECT_TRUE(c.ok());
      if (c.ok() && Correct(c->text, q.ToGoldSql())) ++correct;
    }
    return static_cast<double>(correct) / workload.size();
  };
  double small = accuracy(*models_[0]);
  double large = accuracy(*models_[2]);
  EXPECT_LT(small, large);
  EXPECT_GT(large, 0.75);
}

TEST_F(Nl2SqlSkillTest, RelevantExamplesHelp) {
  common::Rng rng(68);
  data::Nl2SqlWorkloadOptions options;
  options.num_queries = 80;
  options.compound_rate = 1.0;
  auto workload = data::GenerateNl2SqlWorkload(options, rng);
  auto paper = data::PaperQ1ToQ5();
  auto accuracy = [&](bool with_examples) {
    int correct = 0;
    for (const auto& q : workload) {
      Prompt p = MakePrompt("nl2sql", q.ToNaturalLanguage());
      if (with_examples) {
        for (const auto& ex : paper) {
          p.examples.push_back({ex.ToNaturalLanguage(), ex.ToGoldSql()});
        }
      }
      auto c = models_[1]->Complete(p);
      if (c.ok() && Correct(c->text, q.ToGoldSql())) ++correct;
    }
    return static_cast<double>(correct) / workload.size();
  };
  EXPECT_GT(accuracy(true), accuracy(false));
}

// ---- tabular skills ------------------------------------------------------------

TEST(TabularSkillTest, PredictNumericViaIcl) {
  auto models = CreatePaperModelLadder(nullptr, 9);
  Prompt p = MakePrompt("tabular_predict", "x is 5");
  // y = 2x exactly; 5 -> 10.
  for (int x = 1; x <= 8; ++x) {
    if (x == 5) continue;
    p.examples.push_back({common::StrFormat("x is %d", x),
                          common::StrFormat("%d", 2 * x)});
  }
  auto c = models[2]->Complete(p);
  ASSERT_TRUE(c.ok());
  double v = 0;
  ASSERT_TRUE(common::ParseDouble(c->text, &v));
  EXPECT_NEAR(v, 10.0, 2.5);
}

TEST(TabularSkillTest, PredictCategoricalViaIcl) {
  auto models = CreatePaperModelLadder(nullptr, 10);
  Prompt p = MakePrompt("tabular_predict", "temp is 39.5; cough is yes");
  p.examples.push_back({"temp is 39.8; cough is yes", "flu"});
  p.examples.push_back({"temp is 39.2; cough is yes", "flu"});
  p.examples.push_back({"temp is 36.5; cough is no", "healthy"});
  p.examples.push_back({"temp is 36.8; cough is no", "healthy"});
  auto c = models[2]->Complete(p);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->text, "flu");
}

TEST(TabularSkillTest, GenerateMimicsSchema) {
  auto models = CreatePaperModelLadder(nullptr, 11);
  Prompt p = MakePrompt("tabular_generate", "generate one more row");
  p.examples.push_back({"age is 30; city is Boston", "ok"});
  p.examples.push_back({"age is 40; city is London", "ok"});
  p.examples.push_back({"age is 50; city is Boston", "ok"});
  auto c = models[2]->Complete(p);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(c->text.find("age is "), std::string::npos);
  EXPECT_NE(c->text.find("; city is "), std::string::npos);
}

TEST(Sql2NlSkillTest, DescribesAggregate) {
  auto models = CreatePaperModelLadder(nullptr, 12);
  Prompt p = MakePrompt("sql2nl",
                        "SELECT AVG(salary) FROM employee\n=> 500.0");
  auto c = models[2]->Complete(p);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(c->text.find("average"), std::string::npos);
  EXPECT_NE(c->text.find("employee"), std::string::npos);
  EXPECT_NE(c->text.find("500.0"), std::string::npos);
}

TEST(PrefixTrieTest, HandComputedSharedPrefixes) {
  // Exactness against a hand-computed trie over crafted strings:
  //
  //   insert "shared head: alpha"  -> trie empty, shares 0
  //   insert "shared head: beta"   -> walks "shared head: " (13), diverges
  //   insert "shared head: alpine" -> walks "shared head: alp" (16) along
  //                                   the "alpha" path before diverging
  //   insert "unrelated"           -> shares 0 with every path
  //   insert "shared head: beta"   -> exact duplicate: the whole string (17)
  PrefixTrie trie;
  EXPECT_EQ(trie.Insert("shared head: alpha"), 0u);
  EXPECT_EQ(trie.Insert("shared head: beta"), 13u);
  EXPECT_EQ(trie.Insert("shared head: alpine"), 16u);
  EXPECT_EQ(trie.Insert("unrelated"), 0u);
  EXPECT_EQ(trie.Insert("shared head: beta"), 17u);
  // The duplicate did not add a path.
  EXPECT_EQ(trie.size(), 4u);
  // A prefix of an existing path shares its whole length.
  EXPECT_EQ(trie.Insert("shared head:"), 12u);
}

TEST(PrefixTrieTest, EmptyStringAndSingleInsert) {
  PrefixTrie trie;
  EXPECT_EQ(trie.Insert(""), 0u);
  EXPECT_EQ(trie.Insert("x"), 0u);  // shares only the empty prefix
  EXPECT_EQ(trie.Insert(""), 0u);  // duplicate of the empty string
  EXPECT_EQ(trie.size(), 2u);
}

ModelSpec DiscountedSpec() {
  ModelSpec spec;
  spec.name = "sim-batch";
  spec.capability = 0.9;
  spec.input_price_per_1k = common::Money::FromDollars(0.010);
  spec.cached_input_price_per_1k = common::Money::FromDollars(0.001);
  spec.output_price_per_1k = common::Money::FromDollars(0.020);
  spec.latency_ms_per_1k_tokens = 1000.0;  // 1 ms per token: easy arithmetic
  return spec;
}

std::unique_ptr<SimulatedLlm> MakeDiscountedModel() {
  auto model = std::make_unique<SimulatedLlm>(DiscountedSpec(), 7);
  model->RegisterSkill(std::make_unique<FreeformSkill>());
  return model;
}

TEST(SimulatedLlmBatch, SharedPrefixPricedAtCachedTierExactly) {
  // Three crafted prompts whose rendered forms share hand-checkable
  // prefixes (freeform prompts render with identical instruction headers,
  // so the divergence point is inside the [input] section).
  auto model = MakeDiscountedModel();
  std::vector<Prompt> prompts;
  prompts.push_back(MakePrompt("freeform", "analyze shard alpha"));
  prompts.push_back(MakePrompt("freeform", "analyze shard beta"));
  prompts.push_back(MakePrompt("freeform", "totally different question"));
  auto results = model->CompleteBatch(prompts);
  ASSERT_EQ(results.size(), prompts.size());
  for (const auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();

  const ModelSpec spec = DiscountedSpec();
  auto price = [](common::Money per_1k, size_t tokens) {
    return common::Money::FromMicros(per_1k.micros() *
                                     static_cast<int64_t>(tokens) / 1000);
  };
  // Hand-compute each member's expected shared prefix with the prompts
  // inserted before it (the trie sees them in batch order).
  std::vector<std::string> rendered;
  for (const Prompt& p : prompts) rendered.push_back(p.Render());
  auto lcp = [](const std::string& a, const std::string& b) {
    size_t n = std::min(a.size(), b.size());
    size_t i = 0;
    while (i < n && a[i] == b[i]) ++i;
    return i;
  };
  const size_t expected_shared[3] = {
      0,                                // first path: nothing to share with
      lcp(rendered[1], rendered[0]),    // walks prompt 0's path
      std::max(lcp(rendered[2], rendered[0]), lcp(rendered[2], rendered[1]))};
  ASSERT_GT(expected_shared[1], 0u);  // the crafted prompts really do share
  ASSERT_GT(expected_shared[2], 0u);  // at least the instruction header

  for (size_t i = 0; i < prompts.size(); ++i) {
    const Completion& c = *results[i];
    auto per_call = model->Complete(prompts[i]);
    ASSERT_TRUE(per_call.ok());
    // Text and token counts are the per-call answer (batching only changes
    // how the input is billed, never what the model says).
    EXPECT_EQ(c.text, per_call->text);
    EXPECT_EQ(c.confidence, per_call->confidence);
    EXPECT_EQ(c.input_tokens, per_call->input_tokens);
    EXPECT_EQ(c.output_tokens, per_call->output_tokens);
    // The cached token count is the shared prefix re-tokenized (clamped to
    // the full input count), and the price splits exactly across tiers.
    const size_t expected_cached =
        std::min(text::CountTokens(std::string_view(rendered[i])
                                       .substr(0, expected_shared[i])),
                 c.input_tokens);
    EXPECT_EQ(c.prefix_cached_tokens, expected_cached) << "member " << i;
    const size_t fresh = c.input_tokens - expected_cached;
    EXPECT_EQ(c.cost, price(spec.input_price_per_1k, fresh) +
                          price(spec.cached_input_price_per_1k, expected_cached) +
                          price(spec.output_price_per_1k, c.output_tokens));
    // Cached prefill is skipped: 1 ms per fresh/output token.
    EXPECT_DOUBLE_EQ(c.latency_ms,
                     static_cast<double>(fresh + c.output_tokens));
  }
  EXPECT_EQ(results[0]->prefix_cached_tokens, 0u);
  EXPECT_GT(results[1]->prefix_cached_tokens, 0u);
  EXPECT_LT(results[1]->cost, model->Complete(prompts[1])->cost);
}

TEST(SimulatedLlmBatch, NoCachedPriceMeansPerCallBehaviour) {
  // cached_input_price_per_1k == 0 disables the discount entirely: the
  // batched path must be byte-identical to per-call completion, cost and
  // latency included (this is what keeps Tables I–III stable).
  ModelSpec spec = DiscountedSpec();
  spec.cached_input_price_per_1k = common::Money::Zero();
  auto model = std::make_unique<SimulatedLlm>(spec, 7);
  model->RegisterSkill(std::make_unique<FreeformSkill>());
  std::vector<Prompt> prompts;
  prompts.push_back(MakePrompt("freeform", "analyze shard alpha"));
  prompts.push_back(MakePrompt("freeform", "analyze shard beta"));
  auto results = model->CompleteBatch(prompts);
  ASSERT_EQ(results.size(), 2u);
  for (size_t i = 0; i < prompts.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    auto per_call = model->Complete(prompts[i]);
    ASSERT_TRUE(per_call.ok());
    EXPECT_EQ(results[i]->text, per_call->text);
    EXPECT_EQ(results[i]->cost, per_call->cost);
    EXPECT_DOUBLE_EQ(results[i]->latency_ms, per_call->latency_ms);
    EXPECT_EQ(results[i]->prefix_cached_tokens, 0u);
  }
}

TEST(SimulatedLlmBatch, ExhaustedDeadlineFailsFastAndStaysOutOfTrie) {
  auto model = MakeDiscountedModel();
  std::vector<Prompt> prompts;
  prompts.push_back(MakePrompt("freeform", "analyze shard alpha"));
  prompts.push_back(MakePrompt("freeform", "analyze shard alpine"));
  prompts.push_back(MakePrompt("freeform", "analyze shard alps"));
  // The middle member's budget is already gone: it must come back Timeout
  // — and must NOT have seeded the trie, so the third member's shared
  // prefix is computed against member 0 only.
  prompts[1].deadline = std::make_shared<Deadline>(0.0);
  auto results = model->CompleteBatch(prompts);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status().code(), common::StatusCode::kTimeout);
  ASSERT_TRUE(results[2].ok());

  // Recompute the run with the dead member absent: member 2's billing must
  // match a two-member batch of {alpha, alps}.
  auto control = MakeDiscountedModel();
  std::vector<Prompt> two;
  two.push_back(MakePrompt("freeform", "analyze shard alpha"));
  two.push_back(MakePrompt("freeform", "analyze shard alps"));
  auto control_results = control->CompleteBatch(two);
  ASSERT_TRUE(control_results[1].ok());
  EXPECT_EQ(results[2]->prefix_cached_tokens,
            control_results[1]->prefix_cached_tokens);
  EXPECT_EQ(results[2]->cost, control_results[1]->cost);
}

}  // namespace
}  // namespace llmdm::llm
