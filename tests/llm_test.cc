#include <gtest/gtest.h>

#include "common/string_util.h"
#include "data/nl2sql_workload.h"
#include "data/qa_workload.h"
#include "llm/simulated.h"
#include "sql/database.h"
#include "text/tokenizer.h"

namespace llmdm::llm {
namespace {

class LlmTest : public ::testing::Test {
 protected:
  LlmTest() {
    common::Rng rng(101);
    kb_ = data::KnowledgeBase::Generate(60, rng);
    models_ = CreatePaperModelLadder(&kb_, 2024);
  }

  LlmModel& babbage() { return *models_[0]; }
  LlmModel& gpt35() { return *models_[1]; }
  LlmModel& gpt4() { return *models_[2]; }

  data::KnowledgeBase kb_;
  std::vector<std::shared_ptr<LlmModel>> models_;
};

TEST_F(LlmTest, PromptRenderAndTokens) {
  Prompt p = MakePrompt("qa", "Who is the advisor of Alice Adams?");
  p.system = "You are a helpful assistant.";
  p.examples.push_back({"Who is the mentor of Bob Baker?", "Carol Chen"});
  std::string rendered = p.Render();
  EXPECT_NE(rendered.find("[system]"), std::string::npos);
  EXPECT_NE(rendered.find("[example]"), std::string::npos);
  EXPECT_NE(rendered.find("[input]"), std::string::npos);
  EXPECT_GT(p.CountInputTokens(), 20u);
}

TEST_F(LlmTest, MemoizedTokenCountMatchesUncachedPath) {
  // CountInputTokens memoizes the prompt-prefix count (the metering
  // boundary counts the same system/few-shot prefix on every call); the
  // memoized total must equal counting the full rendered prompt directly,
  // for every shape of prompt — empty and non-empty sections, punctuation
  // and whitespace at the section seams, multi-line fields.
  std::vector<Prompt> prompts;
  prompts.push_back(MakePrompt("freeform", ""));
  prompts.push_back(MakePrompt("freeform", "plain input, no prefix at all"));
  {
    Prompt p = MakePrompt("qa", "?leading punctuation input");
    p.system = "You are a careful data engineer.";
    prompts.push_back(p);
  }
  {
    Prompt p = MakePrompt("nl2sql", "multi\nline\ninput text");
    p.instructions = "Translate the question to SQL;\nreturn SQL only.";
    p.examples.push_back({"stadiums that had concerts in 2014", "SELECT 1"});
    p.examples.push_back({"patients with high cholesterol?", "SELECT 2"});
    prompts.push_back(p);
  }
  {
    Prompt p = MakePrompt("qa", "   padded   input   ");
    p.system = "sys";
    p.instructions = "inst";
    p.examples.push_back({"", ""});  // empty example fields
    prompts.push_back(p);
  }
  for (const Prompt& p : prompts) {
    EXPECT_EQ(p.CountInputTokens(), text::CountTokens(p.Render()))
        << p.Render();
  }
  // Counting the same prompts again is served from the memo (hit delta),
  // and still agrees.
  auto before = text::GetTokenCountCacheStats();
  for (const Prompt& p : prompts) {
    EXPECT_EQ(p.CountInputTokens(), text::CountTokens(p.Render()));
  }
  auto after = text::GetTokenCountCacheStats();
  EXPECT_GE(after.hits - before.hits, prompts.size());
}

TEST_F(LlmTest, DeterministicCompletions) {
  Prompt p = MakePrompt("qa", "Who is the advisor of " + kb_.entities()[0] + "?");
  auto a = gpt35().Complete(p);
  auto b = gpt35().Complete(p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->text, b->text);
  EXPECT_EQ(a->cost, b->cost);
}

TEST_F(LlmTest, SampleSaltGivesIndependentDraws) {
  // Across many questions, at least some completions must differ by salt
  // (hard questions on the small model flip between right and wrong).
  int diffs = 0;
  for (int i = 0; i < 20; ++i) {
    std::string subject = kb_.entities()[i % kb_.entities().size()];
    Prompt p = MakePrompt(
        "qa", data::RenderChainQuestion({"advisor", "manager"}, subject));
    Prompt p2 = p;
    p2.sample_salt = 1;
    auto a = babbage().Complete(p);
    auto b = babbage().Complete(p2);
    ASSERT_TRUE(a.ok() && b.ok());
    if (a->text != b->text) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST_F(LlmTest, CostScalesWithModelAndTokens) {
  Prompt p = MakePrompt("qa", "Who is the advisor of " + kb_.entities()[1] + "?");
  auto small = babbage().Complete(p);
  auto large = gpt4().Complete(p);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(large->cost, small->cost);
  // Longer prompt costs more on the same model.
  Prompt longer = p;
  for (int i = 0; i < 5; ++i) {
    longer.examples.push_back({"Who is the mentor of X?", "Y"});
  }
  auto long_result = gpt4().Complete(longer);
  ASSERT_TRUE(long_result.ok());
  EXPECT_GT(long_result->cost, large->cost);
}

TEST_F(LlmTest, AccuracyOrderedByCapability) {
  common::Rng rng(7);
  auto workload = data::GenerateQaWorkload(kb_, 120, {1.0, 1.0, 1.0}, rng);
  auto accuracy = [&](LlmModel& model) {
    int correct = 0;
    for (const auto& item : workload) {
      Prompt p = MakePrompt("qa", item.question);
      auto c = model.Complete(p);
      EXPECT_TRUE(c.ok());
      if (c.ok() && c->text == item.answer) ++correct;
    }
    return static_cast<double>(correct) / workload.size();
  };
  double acc_small = accuracy(babbage());
  double acc_mid = accuracy(gpt35());
  double acc_large = accuracy(gpt4());
  EXPECT_LT(acc_small, acc_mid);
  EXPECT_LT(acc_mid, acc_large);
  EXPECT_LT(acc_small, 0.55);
  EXPECT_GT(acc_large, 0.80);
}

TEST_F(LlmTest, HopsMakeQuestionsHarder) {
  common::Rng rng(8);
  auto easy = data::GenerateQaWorkload(kb_, 80, {1.0}, rng);
  auto hard = data::GenerateQaWorkload(kb_, 80, {0.0, 0.0, 1.0}, rng);
  auto accuracy = [&](const std::vector<data::QaItem>& items) {
    int correct = 0;
    for (const auto& item : items) {
      auto c = gpt35().Complete(MakePrompt("qa", item.question));
      if (c.ok() && c->text == item.answer) ++correct;
    }
    return static_cast<double>(correct) / items.size();
  };
  EXPECT_GT(accuracy(easy), accuracy(hard) + 0.1);
}

TEST_F(LlmTest, UsageMeterAccumulates) {
  UsageMeter meter;
  Prompt p = MakePrompt("qa", "Who is the advisor of " + kb_.entities()[2] + "?");
  ASSERT_TRUE(gpt35().CompleteMetered(p, &meter).ok());
  ASSERT_TRUE(gpt4().CompleteMetered(p, &meter).ok());
  EXPECT_EQ(meter.calls(), 2u);
  EXPECT_GT(meter.cost().micros(), 0);
  EXPECT_EQ(meter.by_model().size(), 2u);
  meter.Reset();
  EXPECT_EQ(meter.calls(), 0u);
}

TEST_F(LlmTest, UnknownTagFallsBackToFreeform) {
  Prompt p = MakePrompt("no_such_skill", "do something");
  auto c = gpt4().Complete(p);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(c->text.find("Understood"), std::string::npos);
}

// ---- NL2SQL skill end-to-end against the SQL engine ------------------------

class Nl2SqlSkillTest : public ::testing::Test {
 protected:
  Nl2SqlSkillTest() {
    common::Rng rng(55);
    auto script = data::BuildStadiumDatabaseScript(10, {2014, 2015}, rng);
    auto r = db_.ExecuteScript(script);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    models_ = CreatePaperModelLadder(nullptr, 31337);
  }

  // Execution-match grading.
  bool Correct(const std::string& predicted_sql, const std::string& gold_sql) {
    auto gold = db_.Query(gold_sql);
    EXPECT_TRUE(gold.ok()) << gold_sql;
    auto pred = db_.Query(predicted_sql);
    if (!pred.ok()) return false;
    return gold.ok() && pred->BagEquals(*gold);
  }

  sql::Database db_;
  std::vector<std::shared_ptr<LlmModel>> models_;
};

TEST_F(Nl2SqlSkillTest, GoldSqlExecutes) {
  for (const auto& q : data::PaperQ1ToQ5()) {
    auto r = db_.Query(q.ToGoldSql());
    EXPECT_TRUE(r.ok()) << q.ToGoldSql() << " -> " << r.status().ToString();
  }
}

TEST_F(Nl2SqlSkillTest, NlRoundTripsThroughParser) {
  common::Rng rng(66);
  data::Nl2SqlWorkloadOptions options;
  options.num_queries = 30;
  auto workload = data::GenerateNl2SqlWorkload(options, rng);
  for (const auto& q : workload) {
    auto parsed = data::ParseNl2SqlQuestion(q.ToNaturalLanguage());
    ASSERT_TRUE(parsed.ok()) << q.ToNaturalLanguage();
    EXPECT_EQ(*parsed, q);
  }
}

TEST_F(Nl2SqlSkillTest, AccuracyImprovesWithModelSize) {
  common::Rng rng(67);
  data::Nl2SqlWorkloadOptions options;
  options.num_queries = 80;
  auto workload = data::GenerateNl2SqlWorkload(options, rng);
  auto accuracy = [&](LlmModel& model) {
    int correct = 0;
    for (const auto& q : workload) {
      Prompt p = MakePrompt("nl2sql", q.ToNaturalLanguage());
      auto c = model.Complete(p);
      EXPECT_TRUE(c.ok());
      if (c.ok() && Correct(c->text, q.ToGoldSql())) ++correct;
    }
    return static_cast<double>(correct) / workload.size();
  };
  double small = accuracy(*models_[0]);
  double large = accuracy(*models_[2]);
  EXPECT_LT(small, large);
  EXPECT_GT(large, 0.75);
}

TEST_F(Nl2SqlSkillTest, RelevantExamplesHelp) {
  common::Rng rng(68);
  data::Nl2SqlWorkloadOptions options;
  options.num_queries = 80;
  options.compound_rate = 1.0;
  auto workload = data::GenerateNl2SqlWorkload(options, rng);
  auto paper = data::PaperQ1ToQ5();
  auto accuracy = [&](bool with_examples) {
    int correct = 0;
    for (const auto& q : workload) {
      Prompt p = MakePrompt("nl2sql", q.ToNaturalLanguage());
      if (with_examples) {
        for (const auto& ex : paper) {
          p.examples.push_back({ex.ToNaturalLanguage(), ex.ToGoldSql()});
        }
      }
      auto c = models_[1]->Complete(p);
      if (c.ok() && Correct(c->text, q.ToGoldSql())) ++correct;
    }
    return static_cast<double>(correct) / workload.size();
  };
  EXPECT_GT(accuracy(true), accuracy(false));
}

// ---- tabular skills ------------------------------------------------------------

TEST(TabularSkillTest, PredictNumericViaIcl) {
  auto models = CreatePaperModelLadder(nullptr, 9);
  Prompt p = MakePrompt("tabular_predict", "x is 5");
  // y = 2x exactly; 5 -> 10.
  for (int x = 1; x <= 8; ++x) {
    if (x == 5) continue;
    p.examples.push_back({common::StrFormat("x is %d", x),
                          common::StrFormat("%d", 2 * x)});
  }
  auto c = models[2]->Complete(p);
  ASSERT_TRUE(c.ok());
  double v = 0;
  ASSERT_TRUE(common::ParseDouble(c->text, &v));
  EXPECT_NEAR(v, 10.0, 2.5);
}

TEST(TabularSkillTest, PredictCategoricalViaIcl) {
  auto models = CreatePaperModelLadder(nullptr, 10);
  Prompt p = MakePrompt("tabular_predict", "temp is 39.5; cough is yes");
  p.examples.push_back({"temp is 39.8; cough is yes", "flu"});
  p.examples.push_back({"temp is 39.2; cough is yes", "flu"});
  p.examples.push_back({"temp is 36.5; cough is no", "healthy"});
  p.examples.push_back({"temp is 36.8; cough is no", "healthy"});
  auto c = models[2]->Complete(p);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->text, "flu");
}

TEST(TabularSkillTest, GenerateMimicsSchema) {
  auto models = CreatePaperModelLadder(nullptr, 11);
  Prompt p = MakePrompt("tabular_generate", "generate one more row");
  p.examples.push_back({"age is 30; city is Boston", "ok"});
  p.examples.push_back({"age is 40; city is London", "ok"});
  p.examples.push_back({"age is 50; city is Boston", "ok"});
  auto c = models[2]->Complete(p);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(c->text.find("age is "), std::string::npos);
  EXPECT_NE(c->text.find("; city is "), std::string::npos);
}

TEST(Sql2NlSkillTest, DescribesAggregate) {
  auto models = CreatePaperModelLadder(nullptr, 12);
  Prompt p = MakePrompt("sql2nl",
                        "SELECT AVG(salary) FROM employee\n=> 500.0");
  auto c = models[2]->Complete(p);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(c->text.find("average"), std::string::npos);
  EXPECT_NE(c->text.find("employee"), std::string::npos);
  EXPECT_NE(c->text.find("500.0"), std::string::npos);
}

}  // namespace
}  // namespace llmdm::llm
