// Tests for the network front door (src/net): the wire codec and its
// torn-frame / corruption guarantees, the epoll server end to end over
// loopback (byte-identity with a direct Submit() of the same workload,
// streaming reassembly, shed metadata on error frames, graceful drain,
// pipelining, duplicate-id refusal, watermark backpressure), and concurrent
// connections (the case the TSan build exists for).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "llm/simulated.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "serve/server.h"

namespace llmdm {
namespace {

// ---- Wire codec round trips ------------------------------------------------

net::WireRequest SampleRequest() {
  net::WireRequest r;
  r.id = 42;
  r.tenant = "tenant-a";
  r.skill = "freeform";
  r.input = "How many rows survived the merge?";
  r.priority = 2;
  r.deadline_ms = 250.0;
  r.arrival_vms = 1234.5;
  r.stream_chunk_bytes = 64;
  return r;
}

net::WireResponse SampleResponse() {
  net::WireResponse r;
  r.id = 42;
  r.status_code = 0;
  r.text = "The merge kept 1,204 rows.";
  r.model = "sim-davinci-003";
  r.cost_micros = 1375;
  r.queue_wait_vms = 12.25;
  r.service_vms = 88.5;
  r.latency_vms = 100.75;
  r.deadline_missed = true;
  r.hedged = true;
  r.hedge_won = false;
  r.coalesced = true;
  return r;
}

TEST(WireCodec, RequestRoundTrip) {
  net::WireRequest in = SampleRequest();
  std::string frame = net::EncodeRequestFrame(in);
  net::FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(frame).ok());
  net::Frame f;
  ASSERT_TRUE(decoder.Next(&f));
  EXPECT_EQ(f.type, net::FrameType::kRequest);
  auto out = net::DecodeRequest(f.payload);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, in);
}

TEST(WireCodec, ResponseRoundTripPreservesEveryFlag) {
  net::WireResponse in = SampleResponse();
  std::string frame = net::EncodeResponseFrame(in, /*streamed=*/true);
  net::FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(frame).ok());
  net::Frame f;
  ASSERT_TRUE(decoder.Next(&f));
  EXPECT_EQ(f.type, net::FrameType::kResponse);
  EXPECT_NE(f.flags & net::kFlagStreamed, 0);
  auto out = net::DecodeResponse(f.payload);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, in);
}

TEST(WireCodec, ChunkAndErrorRoundTrip) {
  net::WireChunk chunk;
  chunk.id = 7;
  chunk.seq = 3;
  chunk.data = std::string("partial text\0with embedded nul", 30);
  {
    net::FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(net::EncodeChunkFrame(chunk)).ok());
    net::Frame f;
    ASSERT_TRUE(decoder.Next(&f));
    auto out = net::DecodeChunk(f.payload);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, chunk);
  }
  net::WireError error;
  error.id = 9;
  error.status_code =
      static_cast<uint8_t>(common::StatusCode::kResourceExhausted);
  error.shed_cause = static_cast<uint8_t>(serve::ShedCause::kQuota);
  error.retry_after_vms = 74.5;
  error.message = "tenant quota exhausted";
  {
    net::FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(net::EncodeErrorFrame(error)).ok());
    net::Frame f;
    ASSERT_TRUE(decoder.Next(&f));
    auto out = net::DecodeError(f.payload);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, error);
  }
}

TEST(WireCodec, EncodingIsByteDeterministic) {
  EXPECT_EQ(net::EncodeRequestFrame(SampleRequest()),
            net::EncodeRequestFrame(SampleRequest()));
  EXPECT_EQ(net::EncodeResponseFrame(SampleResponse(), false),
            net::EncodeResponseFrame(SampleResponse(), false));
}

TEST(WireCodec, TruncatedPayloadRejectedAtEveryLength) {
  std::string frame = net::EncodeRequestFrame(SampleRequest());
  std::string_view payload(frame.data() + net::kFrameHeaderBytes,
                           frame.size() - net::kFrameHeaderBytes);
  for (size_t len = 0; len < payload.size(); ++len) {
    auto out = net::DecodeRequest(payload.substr(0, len));
    EXPECT_FALSE(out.ok()) << "prefix of " << len << " bytes decoded";
  }
  // Trailing garbage is rejected too — a payload must be fully consumed.
  std::string padded(payload);
  padded.push_back('\0');
  EXPECT_FALSE(net::DecodeRequest(padded).ok());
}

// ---- Torn frames and corruption -------------------------------------------

std::string MultiFrameStream() {
  std::string stream;
  stream += net::EncodeRequestFrame(SampleRequest());
  net::WireChunk chunk;
  chunk.id = 42;
  chunk.seq = 0;
  chunk.data = "first piece of a streamed completion";
  stream += net::EncodeChunkFrame(chunk);
  stream += net::EncodeResponseFrame(SampleResponse(), /*streamed=*/true);
  net::WireError error;
  error.id = 43;
  error.status_code =
      static_cast<uint8_t>(common::StatusCode::kResourceExhausted);
  error.shed_cause = static_cast<uint8_t>(serve::ShedCause::kQueue);
  error.retry_after_vms = 25.0;
  error.message = "queue full";
  stream += net::EncodeErrorFrame(error);
  return stream;
}

std::vector<net::Frame> DecodeAll(net::FrameDecoder* decoder) {
  std::vector<net::Frame> frames;
  net::Frame f;
  while (decoder->Next(&f)) frames.push_back(f);
  return frames;
}

bool SameFrames(const std::vector<net::Frame>& a,
                const std::vector<net::Frame>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].type != b[i].type || a[i].flags != b[i].flags ||
        a[i].payload != b[i].payload) {
      return false;
    }
  }
  return true;
}

// The acceptance sweep: a four-frame stream split at *every* byte boundary
// across two reads must reassemble to exactly the frames a one-shot feed
// yields.
TEST(FrameDecoder, TornFrameSweepEverySplitPoint) {
  std::string stream = MultiFrameStream();
  net::FrameDecoder reference;
  ASSERT_TRUE(reference.Feed(stream).ok());
  std::vector<net::Frame> expected = DecodeAll(&reference);
  ASSERT_EQ(expected.size(), 4u);

  for (size_t split = 0; split <= stream.size(); ++split) {
    net::FrameDecoder decoder;
    ASSERT_TRUE(
        decoder.Feed(std::string_view(stream).substr(0, split)).ok())
        << "split at " << split;
    ASSERT_TRUE(decoder.Feed(std::string_view(stream).substr(split)).ok())
        << "split at " << split;
    std::vector<net::Frame> got = DecodeAll(&decoder);
    ASSERT_TRUE(SameFrames(got, expected)) << "split at " << split;
    EXPECT_EQ(decoder.buffered_bytes(), 0u) << "split at " << split;
  }
}

TEST(FrameDecoder, OneByteAtATime) {
  std::string stream = MultiFrameStream();
  net::FrameDecoder reference;
  ASSERT_TRUE(reference.Feed(stream).ok());
  std::vector<net::Frame> expected = DecodeAll(&reference);

  net::FrameDecoder decoder;
  std::vector<net::Frame> got;
  for (char c : stream) {
    ASSERT_TRUE(decoder.Feed(std::string_view(&c, 1)).ok());
    net::Frame f;
    while (decoder.Next(&f)) got.push_back(f);
  }
  EXPECT_TRUE(SameFrames(got, expected));
}

TEST(FrameDecoder, BadMagicRejected) {
  std::string frame = net::EncodeRequestFrame(SampleRequest());
  frame[0] = 'X';
  net::FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(frame).ok());
  net::Frame f;
  EXPECT_FALSE(decoder.Next(&f));
}

TEST(FrameDecoder, BadVersionRejected) {
  std::string frame = net::EncodeRequestFrame(SampleRequest());
  frame[4] = static_cast<char>(net::kWireVersion + 1);
  net::FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(frame).ok());
}

TEST(FrameDecoder, UnknownFrameTypeRejected) {
  std::string frame = net::EncodeRequestFrame(SampleRequest());
  frame[5] = 0x7f;
  net::FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(frame).ok());
}

TEST(FrameDecoder, OversizedLengthRejected) {
  std::string frame = net::EncodeRequestFrame(SampleRequest());
  net::FrameDecoder::Options opts;
  opts.max_frame_bytes = 16;  // far below the sample request's payload
  net::FrameDecoder decoder(opts);
  common::Status s = decoder.Feed(frame);
  EXPECT_FALSE(s.ok());
}

TEST(FrameDecoder, ChecksumMismatchPoisonsTheDecoder) {
  std::string frame = net::EncodeRequestFrame(SampleRequest());
  frame[frame.size() - 1] ^= 0x01;  // corrupt the payload tail
  net::FrameDecoder decoder;
  common::Status first = decoder.Feed(frame);
  EXPECT_FALSE(first.ok());
  // Sticky: a perfectly valid follow-up frame is not decoded — a corrupted
  // stream is rejected, never resynchronized into plausible garbage.
  common::Status second = decoder.Feed(net::EncodeRequestFrame(SampleRequest()));
  EXPECT_FALSE(second.ok());
  net::Frame f;
  EXPECT_FALSE(decoder.Next(&f));
  EXPECT_FALSE(decoder.error().ok());
}

// Flip one bit in every byte of a frame: the decoder must either report an
// error or withhold output (a corrupted length can legitimately leave it
// waiting for bytes that never come) — it must never yield a frame.
TEST(FrameDecoder, EveryByteCorruptionIsDetectedOrWithheld) {
  std::string frame = net::EncodeRequestFrame(SampleRequest());
  for (size_t i = 0; i < frame.size(); ++i) {
    std::string corrupted = frame;
    corrupted[i] ^= 0x01;
    net::FrameDecoder decoder;
    common::Status s = decoder.Feed(corrupted);
    net::Frame f;
    bool decoded = decoder.Next(&f);
    EXPECT_FALSE(decoded) << "byte " << i << " flipped yet a frame decoded";
    if (s.ok()) {
      // No error means the decoder is waiting on a (corrupted, larger)
      // length — it must be holding the bytes, not silently dropping them.
      EXPECT_GT(decoder.buffered_bytes(), 0u) << "byte " << i;
    }
  }
}

// ---- Loopback end-to-end ---------------------------------------------------

struct TestBackendOptions {
  size_t model = 2;  // index into the paper ladder
  size_t worker_threads = 4;
  size_t virtual_concurrency = 4;
  size_t queue_depth = 64;
  serve::ShedPolicy shed_policy = serve::ShedPolicy::kQueueFull;
  serve::QosOptions qos;
};

serve::Server::Options MakeServeOptions(const TestBackendOptions& opts,
                                        bool retain) {
  serve::Server::Options so;
  so.worker_threads = opts.worker_threads;
  so.virtual_concurrency = opts.virtual_concurrency;
  so.queue_depth = opts.queue_depth;
  so.shed_policy = opts.shed_policy;
  so.qos = opts.qos;
  so.retain_responses = retain;
  return so;
}

// A NetServer + backend pair on an ephemeral port, plus an identically
// configured twin backend for direct Submit() comparison.
class LoopbackHarness {
 public:
  explicit LoopbackHarness(const TestBackendOptions& opts = {},
                           net::NetServer::Options net_options = {})
      : models_(llm::CreatePaperModelLadder(nullptr, 2024)),
        twin_models_(llm::CreatePaperModelLadder(nullptr, 2024)),
        backend_(models_[opts.model], MakeServeOptions(opts, false)),
        twin_(twin_models_[opts.model], MakeServeOptions(opts, true)),
        server_(&backend_, [&net_options] {
          net_options.port = 0;
          return net_options;
        }()) {
    common::Status s = server_.Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  ~LoopbackHarness() {
    server_.Shutdown();
    (void)backend_.Drain();
  }

  net::NetServer& server() { return server_; }
  serve::Server& twin() { return twin_; }

  net::Client::Options ClientOptions() const {
    net::Client::Options copts;
    copts.port = server_.port();
    return copts;
  }

 private:
  std::vector<std::shared_ptr<llm::LlmModel>> models_;
  std::vector<std::shared_ptr<llm::LlmModel>> twin_models_;
  serve::Server backend_;
  serve::Server twin_;
  net::NetServer server_;
};

std::vector<net::WireRequest> MakeWorkload(size_t n, double gap_vms,
                                           uint64_t first_id = 1) {
  std::vector<net::WireRequest> requests;
  for (size_t i = 0; i < n; ++i) {
    net::WireRequest r;
    r.id = first_id + i;
    r.input = "workload question #" + std::to_string(first_id + i);
    r.arrival_vms = static_cast<double>(i) * gap_vms;
    requests.push_back(r);
  }
  return requests;
}

serve::Request ToServeRequest(const net::WireRequest& r) {
  serve::Request req;
  req.id = r.id;
  req.tenant = r.tenant;
  req.skill = r.skill;
  req.input = r.input;
  req.priority = static_cast<serve::Priority>(r.priority);
  req.deadline_ms = r.deadline_ms;
  req.arrival_vms = r.arrival_vms;
  return req;
}

// The tentpole acceptance criterion: responses over loopback are
// byte-identical to a direct Submit() of the same workload — text, model,
// cost, and every virtual-time figure.
TEST(NetLoopback, ByteIdenticalToDirectSubmit) {
  LoopbackHarness harness;
  std::vector<net::WireRequest> workload = MakeWorkload(32, 5.0);

  net::Client client;
  ASSERT_TRUE(client.Connect(harness.ClientOptions()).ok());
  auto net_results = client.CallBatch(workload);
  ASSERT_TRUE(net_results.ok()) << net_results.status().ToString();

  for (const net::WireRequest& r : workload) {
    harness.twin().Submit(ToServeRequest(r));
  }
  std::vector<serve::Response> direct = harness.twin().Drain();
  ASSERT_EQ(direct.size(), workload.size());
  ASSERT_EQ(net_results->size(), workload.size());

  for (size_t i = 0; i < workload.size(); ++i) {
    const net::ClientResult& over_wire = (*net_results)[i];
    const serve::Response& in_process = direct[i];  // Drain() sorts by id
    ASSERT_EQ(over_wire.id, in_process.id);
    EXPECT_EQ(over_wire.status.code(), in_process.status.code());
    EXPECT_EQ(over_wire.text, in_process.text);
    EXPECT_EQ(over_wire.model, in_process.model);
    EXPECT_EQ(over_wire.cost, in_process.cost);
    EXPECT_EQ(over_wire.queue_wait_vms, in_process.queue_wait_vms);
    EXPECT_EQ(over_wire.service_vms, in_process.service_vms);
    EXPECT_EQ(over_wire.latency_vms, in_process.latency_vms);
    EXPECT_EQ(over_wire.shed, in_process.shed);
    EXPECT_FALSE(over_wire.shed);
  }
}

// Streaming is a transport rendering, not a different computation: the
// reassembled chunk text equals the non-streamed text for the same request,
// and no chunk exceeds the requested size.
TEST(NetLoopback, StreamingReassemblesTheExactText) {
  LoopbackHarness harness;
  net::Client client;
  ASSERT_TRUE(client.Connect(harness.ClientOptions()).ok());

  net::WireRequest plain;
  plain.id = 7;
  plain.input = "Describe the partition strategy in detail.";
  plain.arrival_vms = 0.0;
  auto whole = client.Call(plain);
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  ASSERT_TRUE(whole->status.ok());
  ASSERT_FALSE(whole->text.empty());

  net::WireRequest streamed = plain;  // same id: same salted completion
  streamed.arrival_vms = 1000.0;
  streamed.stream_chunk_bytes = 32;
  auto stream = client.CallStreaming(streamed);
  ASSERT_TRUE(stream.ok());
  std::string reassembled;
  std::string chunk;
  size_t chunks = 0;
  while (stream->Next(&chunk)) {
    EXPECT_LE(chunk.size(), 32u);
    EXPECT_FALSE(chunk.empty());
    reassembled += chunk;
    ++chunks;
  }
  auto final_result = stream->Finish();
  ASSERT_TRUE(final_result.ok()) << final_result.status().ToString();
  EXPECT_TRUE(final_result->streamed);
  EXPECT_EQ(reassembled, whole->text);
  EXPECT_EQ(final_result->text, whole->text);
  EXPECT_EQ(final_result->chunks, chunks);
  EXPECT_EQ(chunks, (whole->text.size() + 31) / 32);
  EXPECT_EQ(final_result->model, whole->model);
}

// Satellite 1 (queue half): a shed response crosses the wire as an error
// frame whose cause and retry_after_vms equal the direct-submit twin's.
TEST(NetLoopback, QueueShedCarriesCauseAndRetryAfter) {
  TestBackendOptions opts;
  opts.worker_threads = 2;
  opts.virtual_concurrency = 1;
  opts.queue_depth = 2;
  LoopbackHarness harness(opts);

  // Eight requests at one virtual instant against one slot + depth two:
  // the admission model must refuse most of them.
  std::vector<net::WireRequest> burst = MakeWorkload(8, 0.0, 10);

  net::Client client;
  ASSERT_TRUE(client.Connect(harness.ClientOptions()).ok());
  auto net_results = client.CallBatch(burst);
  ASSERT_TRUE(net_results.ok()) << net_results.status().ToString();

  for (const net::WireRequest& r : burst) {
    harness.twin().Submit(ToServeRequest(r));
  }
  std::vector<serve::Response> direct = harness.twin().Drain();
  ASSERT_EQ(direct.size(), burst.size());

  size_t shed = 0;
  for (size_t i = 0; i < burst.size(); ++i) {
    const net::ClientResult& over_wire = (*net_results)[i];
    const serve::Response& in_process = direct[i];
    ASSERT_EQ(over_wire.id, in_process.id);
    EXPECT_EQ(over_wire.shed, in_process.shed);
    EXPECT_EQ(over_wire.shed_cause, in_process.shed_cause);
    EXPECT_EQ(over_wire.retry_after_vms, in_process.retry_after_vms);
    if (over_wire.shed) {
      ++shed;
      EXPECT_EQ(over_wire.shed_cause, serve::ShedCause::kQueue);
      EXPECT_EQ(over_wire.status.code(),
                common::StatusCode::kResourceExhausted);
      EXPECT_GT(over_wire.retry_after_vms, 0.0);
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_LT(shed, burst.size());
  EXPECT_EQ(harness.server().stats().shed_tx, shed);
}

// Satellite 1 (quota half): QoS quota sheds carry the *per-tenant* retry
// hint — the metered tenant's errors say kQuota with its own bucket's refill
// time, while the unmetered tenant sails through untouched.
TEST(NetLoopback, QuotaShedCarriesPerTenantRetryAfter) {
  TestBackendOptions opts;
  serve::TenantConfig metered;
  metered.id = "metered";
  metered.weight = 1.0;
  // Burst covers one request (input tokens + the 48-token output estimate ≈
  // 53), refill is a trickle: the first metered request drains the bucket
  // and the rest shed with a finite refill-time retry hint.
  metered.quota_tokens_per_vs = 0.5;
  metered.quota_burst_tokens = 80.0;
  serve::TenantConfig unmetered;
  unmetered.id = "open";
  unmetered.weight = 1.0;
  opts.qos.tenants = {metered, unmetered};
  LoopbackHarness harness(opts);

  std::vector<net::WireRequest> workload;
  for (size_t i = 0; i < 6; ++i) {
    net::WireRequest r;
    r.id = 100 + i;
    r.tenant = (i % 2 == 0) ? "metered" : "open";
    r.input = "quota probe #" + std::to_string(i);
    r.arrival_vms = static_cast<double>(i);
    workload.push_back(r);
  }

  net::Client client;
  ASSERT_TRUE(client.Connect(harness.ClientOptions()).ok());
  auto net_results = client.CallBatch(workload);
  ASSERT_TRUE(net_results.ok()) << net_results.status().ToString();

  for (const net::WireRequest& r : workload) {
    harness.twin().Submit(ToServeRequest(r));
  }
  std::vector<serve::Response> direct = harness.twin().Drain();
  ASSERT_EQ(direct.size(), workload.size());

  size_t quota_shed = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    const net::ClientResult& over_wire = (*net_results)[i];
    const serve::Response& in_process = direct[i];
    ASSERT_EQ(over_wire.id, in_process.id);
    EXPECT_EQ(over_wire.shed, in_process.shed);
    EXPECT_EQ(over_wire.shed_cause, in_process.shed_cause);
    EXPECT_EQ(over_wire.retry_after_vms, in_process.retry_after_vms);
    if (workload[i].tenant == "open") {
      EXPECT_FALSE(over_wire.shed) << "unmetered tenant shed at " << i;
    } else if (over_wire.shed) {
      ++quota_shed;
      EXPECT_EQ(over_wire.shed_cause, serve::ShedCause::kQuota);
      EXPECT_GT(over_wire.retry_after_vms, 0.0);
    }
  }
  EXPECT_GT(quota_shed, 0u);
}

// Satellite (retry-at-hint): CallWithRetry must turn a quota shed into a
// success by waiting out the server's own retry_after_vms hint — one retry,
// arriving just past the bucket refill, instead of hammering the quota.
TEST(NetLoopback, QuotaShedThenRetryAfterHintSucceeds) {
  TestBackendOptions opts;
  serve::TenantConfig metered;
  metered.id = "metered";
  metered.weight = 1.0;
  // Burst admits exactly one request (~53 tokens of estimate); refill at 10
  // tokens/vs makes the hint finite and the retry admissible once waited.
  metered.quota_tokens_per_vs = 10.0;
  metered.quota_burst_tokens = 60.0;
  opts.qos.tenants = {metered};
  LoopbackHarness harness(opts);

  net::Client client;
  ASSERT_TRUE(client.Connect(harness.ClientOptions()).ok());

  net::WireRequest first;
  first.id = 1;
  first.tenant = "metered";
  first.input = "drain the bucket";
  first.arrival_vms = 0.0;
  auto drained = client.Call(first);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_FALSE(drained->shed);

  // Immediately behind it, the bucket is empty: a plain Call sheds with a
  // usable hint, and a CallWithRetry of the *same shape* succeeds on its
  // second attempt by waiting exactly that hint out.
  net::WireRequest probe;
  probe.id = 2;
  probe.tenant = "metered";
  probe.input = "retry me after the refill";
  probe.arrival_vms = 1.0;
  auto refused = client.Call(probe);
  ASSERT_TRUE(refused.ok()) << refused.status().ToString();
  ASSERT_TRUE(refused->shed);
  EXPECT_EQ(refused->shed_cause, serve::ShedCause::kQuota);
  ASSERT_GT(refused->retry_after_vms, 0.0);

  net::WireRequest retried = probe;
  retried.id = 3;
  // A shed consumed no quota, so the hinted wait from this arrival still
  // lands on a refilled bucket.
  retried.arrival_vms = 2.0;
  auto result = client.CallWithRetry(retried);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->shed) << result->status.message();
  EXPECT_TRUE(result->status.ok());
  EXPECT_EQ(result->attempts, 2u);  // one refusal, one hinted retry — no more
  EXPECT_FALSE(result->text.empty());
  EXPECT_GT(result->cost, common::Money::Zero());
}

// ---- Raw-socket helpers (protocol-level tests that need exact framing) ----

int ConnectRaw(uint16_t port, int rcvbuf_bytes = 0) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  int on = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
  if (rcvbuf_bytes > 0) {
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
               sizeof(rcvbuf_bytes));
  }
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr)),
            0)
      << strerror(errno);
  return fd;
}

void WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = write(fd, data.data() + off, data.size() - off);
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0) << strerror(errno);
    off += static_cast<size_t>(n);
  }
}

// Reads frames until `count` non-chunk frames arrived (chunks are folded
// into the returned list too).
std::vector<net::Frame> ReadFrames(int fd, size_t count) {
  std::vector<net::Frame> frames;
  net::FrameDecoder decoder;
  size_t terminal = 0;
  char buf[65536];
  while (terminal < count) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    EXPECT_GT(n, 0) << strerror(errno);
    if (n <= 0) break;
    common::Status s = decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (!s.ok()) break;
    net::Frame f;
    while (decoder.Next(&f)) {
      if (f.type != net::FrameType::kStreamChunk) ++terminal;
      frames.push_back(std::move(f));
    }
  }
  return frames;
}

// Two requests with the same id in one write(2): the second must be refused
// with kInvalidArgument while the first still completes normally.
TEST(NetLoopback, DuplicateInFlightIdRefused) {
  LoopbackHarness harness;
  int fd = ConnectRaw(harness.server().port());

  net::WireRequest req;
  req.id = 55;
  req.input = "original";
  req.arrival_vms = 0.0;
  std::string wire = net::EncodeRequestFrame(req);
  net::WireRequest dup = req;
  dup.input = "imposter with the same id";
  wire += net::EncodeRequestFrame(dup);
  WriteAll(fd, wire);

  std::vector<net::Frame> frames = ReadFrames(fd, 2);
  ASSERT_EQ(frames.size(), 2u);
  size_t errors = 0;
  size_t responses = 0;
  for (const net::Frame& f : frames) {
    if (f.type == net::FrameType::kError) {
      auto err = net::DecodeError(f.payload);
      ASSERT_TRUE(err.ok());
      EXPECT_EQ(err->id, 55u);
      EXPECT_EQ(err->status_code,
                static_cast<uint8_t>(common::StatusCode::kInvalidArgument));
      ++errors;
    } else if (f.type == net::FrameType::kResponse) {
      auto resp = net::DecodeResponse(f.payload);
      ASSERT_TRUE(resp.ok());
      EXPECT_EQ(resp->id, 55u);
      EXPECT_EQ(resp->status_code, 0);
      ++responses;
    }
  }
  EXPECT_EQ(errors, 1u);
  EXPECT_EQ(responses, 1u);
  close(fd);
}

// A client speaking garbage gets one best-effort error frame and then its
// connection closed, and the metric records why.
TEST(NetLoopback, ProtocolGarbageClosesTheConnection) {
  LoopbackHarness harness;
  int fd = ConnectRaw(harness.server().port());
  WriteAll(fd, "GET / HTTP/1.1\r\nHost: llmdm\r\n\r\n");
  std::string reply;
  char buf[4096];
  for (;;) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GE(n, 0) << strerror(errno);
    if (n == 0) break;  // the server hung up after its goodbye frame
    reply.append(buf, static_cast<size_t>(n));
  }
  close(fd);

  net::FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(reply).ok());
  net::Frame f;
  ASSERT_TRUE(decoder.Next(&f));
  EXPECT_EQ(f.type, net::FrameType::kError);
  auto err = net::DecodeError(f.payload);
  ASSERT_TRUE(err.ok());
  EXPECT_NE(err->status_code, 0);
  EXPECT_FALSE(decoder.Next(&f));  // nothing after the goodbye
  EXPECT_GE(harness.server().stats().protocol_errors, 1u);
}

// Satellite: graceful drain. Every request the server accepted before
// Shutdown() still gets its response flushed, with no forced closes.
TEST(NetLoopback, DrainCompletesEveryAcceptedRequest) {
  LoopbackHarness harness;
  net::Client client;
  ASSERT_TRUE(client.Connect(harness.ClientOptions()).ok());

  constexpr size_t kInFlight = 16;
  std::vector<net::WireRequest> workload = MakeWorkload(kInFlight, 1.0, 200);
  for (const net::WireRequest& r : workload) {
    ASSERT_TRUE(client.Send(r).ok());
  }
  // Wait until the loop thread has accepted all of them, so Shutdown()'s
  // drain has real in-flight work to finish.
  while (harness.server().stats().requests_rx < kInFlight) {
    std::this_thread::yield();
  }
  std::thread shutdown([&harness] { harness.server().Shutdown(); });

  size_t ok = 0;
  for (size_t i = 0; i < kInFlight; ++i) {
    auto result = client.Receive();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->status.ok()) << result->status.ToString();
    if (result->status.ok()) ++ok;
  }
  shutdown.join();
  EXPECT_EQ(ok, kInFlight);
  EXPECT_EQ(harness.server().stats().drain_forced_closes, 0u);
  EXPECT_EQ(harness.server().stats().responses_tx, kInFlight);
}

// Satellite: watermark backpressure. A tiny client receive window + a tiny
// server send buffer force the outbound buffer over the high watermark; the
// server must pause reading (counted) and still deliver every response once
// the client drains.
TEST(NetLoopback, BackpressurePausesReadsAndRecovers) {
  TestBackendOptions opts;
  // Unbounded admission: every request must come back as a full response
  // (sheds would shrink the byte volume the watermarks need).
  opts.shed_policy = serve::ShedPolicy::kNone;
  net::NetServer::Options net_options;
  net_options.sndbuf_bytes = 4096;
  net_options.high_watermark = 16 << 10;
  net_options.low_watermark = 4 << 10;
  LoopbackHarness harness(opts, net_options);

  int fd = ConnectRaw(harness.server().port(), /*rcvbuf_bytes=*/4096);
  constexpr size_t kRequests = 300;
  std::string wire;
  for (size_t i = 0; i < kRequests; ++i) {
    net::WireRequest r;
    r.id = 1000 + i;
    r.input = "backpressure probe #" + std::to_string(i) +
              std::string(64, 'x');
    r.arrival_vms = static_cast<double>(i);
    wire += net::EncodeRequestFrame(r);
  }
  WriteAll(fd, wire);

  // Let responses pile up against the small windows before draining.
  while (harness.server().stats().backpressure_pauses == 0 &&
         harness.server().stats().responses_tx < kRequests) {
    std::this_thread::yield();
  }
  std::vector<net::Frame> frames = ReadFrames(fd, kRequests);
  size_t responses = 0;
  for (const net::Frame& f : frames) {
    if (f.type == net::FrameType::kResponse) ++responses;
  }
  EXPECT_EQ(responses, kRequests);
  EXPECT_GE(harness.server().stats().backpressure_pauses, 1u);
  close(fd);
}

// ---- Concurrency (run this binary under -DLLMDM_TSAN=ON) -------------------

// Several connections submitting in parallel: every request answered, no
// data races between the loop thread, serve workers, and client threads.
TEST(NetConcurrency, ParallelConnectionsAllAnswered) {
  TestBackendOptions opts;
  // Admit everything: the test asserts every request gets an OK answer, so
  // the 160-request pile-up must queue rather than shed.
  opts.shed_policy = serve::ShedPolicy::kNone;
  LoopbackHarness harness(opts);
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 40;

  std::vector<std::thread> threads;
  std::vector<size_t> ok_counts(kThreads, 0);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&harness, &ok_counts, t] {
      net::Client client;
      if (!client.Connect(harness.ClientOptions()).ok()) return;
      for (size_t i = 0; i < kPerThread; ++i) {
        net::WireRequest r;
        r.id = (t + 1) * 100000 + i;  // id space partitioned per connection
        r.input = "parallel #" + std::to_string(r.id);
        r.arrival_vms = static_cast<double>(i);
        auto result = client.Call(r);
        if (result.ok() && result->status.ok()) ++ok_counts[t];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(ok_counts[t], kPerThread) << "thread " << t;
  }
  net::NetStats stats = harness.server().stats();
  EXPECT_EQ(stats.requests_rx, kThreads * kPerThread);
  EXPECT_EQ(stats.responses_tx, kThreads * kPerThread);
  EXPECT_EQ(stats.connections_accepted, kThreads);
}

// One connection, one thread Send()ing while another Receive()s — the
// full-duplex split the client documents for open-loop load generation.
TEST(NetConcurrency, FullDuplexSendAndReceiveThreads) {
  LoopbackHarness harness;
  net::Client client;
  ASSERT_TRUE(client.Connect(harness.ClientOptions()).ok());

  constexpr size_t kRequests = 64;
  std::thread sender([&client] {
    for (size_t i = 0; i < kRequests; ++i) {
      net::WireRequest r;
      r.id = 500 + i;
      r.input = "duplex #" + std::to_string(i);
      r.arrival_vms = static_cast<double>(i);
      ASSERT_TRUE(client.Send(r).ok());
    }
  });
  size_t ok = 0;
  for (size_t i = 0; i < kRequests; ++i) {
    auto result = client.Receive();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->status.ok()) ++ok;
  }
  sender.join();
  EXPECT_EQ(ok, kRequests);
}

// ---- Metrics ---------------------------------------------------------------

TEST(NetLoopback, MetricsCountTheConversation) {
  obs::Registry registry;
  TestBackendOptions opts;
  net::NetServer::Options net_options;
  net_options.registry = &registry;
  LoopbackHarness harness(opts, net_options);

  net::Client client;
  ASSERT_TRUE(client.Connect(harness.ClientOptions()).ok());
  net::WireRequest r;
  r.id = 1;
  r.input = "count me";
  auto result = client.Call(r);
  ASSERT_TRUE(result.ok());

  net::NetStats stats = harness.server().stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.requests_rx, 1u);
  EXPECT_EQ(stats.responses_tx, 1u);
  EXPECT_EQ(stats.frames_rx, 1u);
  EXPECT_GE(stats.bytes_rx, net::kFrameHeaderBytes);
  EXPECT_GE(stats.bytes_tx, net::kFrameHeaderBytes);

  std::string prom = registry.PrometheusText();
  EXPECT_NE(prom.find("llmdm_net_requests_rx_total"), std::string::npos);
  EXPECT_NE(prom.find("llmdm_net_request_wall_us"), std::string::npos);
}

}  // namespace
}  // namespace llmdm
