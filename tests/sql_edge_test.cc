// Deeper SQL-semantics coverage: the corners that distinguish a real engine
// from a demo — NULL propagation through joins, correlated sub-queries in
// several positions, grouped-query output rules, set-op chains, and the
// DML/DDL edges.
#include <gtest/gtest.h>

#include "sql/database.h"
#include "sql/parser.h"

namespace llmdm::sql {
namespace {

using data::Value;

class SqlEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Exec("CREATE TABLE dept (id INT, name TEXT)");
    Exec("CREATE TABLE emp (id INT, dept_id INT, name TEXT, salary INT, "
         "manager_id INT)");
    Exec("INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'empty')");
    Exec("INSERT INTO emp VALUES "
         "(1, 1, 'ana', 100, NULL), (2, 1, 'bo', 80, 1), "
         "(3, 2, 'cy', 90, 1), (4, 2, 'dee', 70, 3), (5, NULL, 'eve', 60, 3)");
  }

  void Exec(const std::string& sql) {
    auto r = db_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }
  data::Table Q(const std::string& sql) {
    auto r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : data::Table{};
  }

  Database db_;
};

TEST_F(SqlEdgeTest, SelfJoinWithAliases) {
  auto t = Q("SELECT e.name, m.name FROM emp e JOIN emp m "
             "ON e.manager_id = m.id ORDER BY e.name");
  ASSERT_EQ(t.NumRows(), 4u);
  EXPECT_EQ(t.at(0, 0).AsText(), "bo");
  EXPECT_EQ(t.at(0, 1).AsText(), "ana");
}

TEST_F(SqlEdgeTest, LeftJoinAggregatesCountNullsCorrectly) {
  // COUNT(column) skips the NULL-padded side; empty dept counts 0.
  auto t = Q("SELECT d.name, COUNT(e.id) FROM dept d LEFT JOIN emp e "
             "ON d.id = e.dept_id GROUP BY d.name ORDER BY d.name");
  ASSERT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.at(0, 0).AsText(), "empty");
  EXPECT_EQ(t.at(0, 1), Value::Int(0));
  EXPECT_EQ(t.at(1, 0).AsText(), "eng");
  EXPECT_EQ(t.at(1, 1), Value::Int(2));
}

TEST_F(SqlEdgeTest, NullJoinKeysNeverMatch) {
  // eve has NULL dept_id: inner join drops her.
  auto t = Q("SELECT COUNT(*) FROM emp e JOIN dept d ON e.dept_id = d.id");
  EXPECT_EQ(t.at(0, 0), Value::Int(4));
}

TEST_F(SqlEdgeTest, CorrelatedScalarSubqueryInSelectList) {
  auto t = Q("SELECT d.name, (SELECT MAX(salary) FROM emp e "
             "WHERE e.dept_id = d.id) FROM dept d ORDER BY d.name");
  ASSERT_EQ(t.NumRows(), 3u);
  EXPECT_TRUE(t.at(0, 1).is_null());              // empty dept -> NULL
  EXPECT_EQ(t.at(1, 1), Value::Int(100));         // eng
  EXPECT_EQ(t.at(2, 1), Value::Int(90));          // sales
}

TEST_F(SqlEdgeTest, CorrelatedSubqueryInWhere) {
  // Employees earning above their department's average.
  auto t = Q("SELECT name FROM emp e WHERE salary > (SELECT AVG(salary) "
             "FROM emp e2 WHERE e2.dept_id = e.dept_id) ORDER BY name");
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.at(0, 0).AsText(), "ana");
  EXPECT_EQ(t.at(1, 0).AsText(), "cy");
}

TEST_F(SqlEdgeTest, NotInWithNullSubqueryIsEmpty) {
  // dept_id of eve is NULL -> NOT IN over a set containing NULL is never
  // TRUE (classic three-valued-logic trap).
  auto t = Q("SELECT name FROM dept WHERE id NOT IN "
             "(SELECT dept_id FROM emp)");
  EXPECT_EQ(t.NumRows(), 0u);
  // Filtering the NULLs restores the intuitive answer.
  auto t2 = Q("SELECT name FROM dept WHERE id NOT IN "
              "(SELECT dept_id FROM emp WHERE dept_id IS NOT NULL)");
  ASSERT_EQ(t2.NumRows(), 1u);
  EXPECT_EQ(t2.at(0, 0).AsText(), "empty");
}

TEST_F(SqlEdgeTest, MultiKeyOrderByMixedDirections) {
  auto t = Q("SELECT dept_id, name FROM emp WHERE dept_id IS NOT NULL "
             "ORDER BY dept_id DESC, name ASC");
  ASSERT_EQ(t.NumRows(), 4u);
  EXPECT_EQ(t.at(0, 1).AsText(), "cy");   // dept 2: cy < dee
  EXPECT_EQ(t.at(1, 1).AsText(), "dee");
  EXPECT_EQ(t.at(2, 1).AsText(), "ana");  // dept 1
}

TEST_F(SqlEdgeTest, HavingOnAggregateNotInSelect) {
  auto t = Q("SELECT dept_id FROM emp WHERE dept_id IS NOT NULL "
             "GROUP BY dept_id HAVING SUM(salary) > 170");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.at(0, 0), Value::Int(1));
}

TEST_F(SqlEdgeTest, GroupByExpression) {
  auto t = Q("SELECT salary / 50, COUNT(*) FROM emp GROUP BY salary / 50 "
             "ORDER BY 1");
  // salaries 60,70,80,90,100 -> 1.2,1.4,1.6,1.8,2.0 — five groups.
  EXPECT_EQ(t.NumRows(), 5u);
}

TEST_F(SqlEdgeTest, SetOpChainsLeftAssociative) {
  auto t = Q("SELECT id FROM emp WHERE id <= 2 UNION "
             "SELECT id FROM emp WHERE id = 3 EXCEPT "
             "SELECT id FROM emp WHERE id = 1");
  // ((1,2) U (3)) \ (1) = {2,3}
  ASSERT_EQ(t.NumRows(), 2u);
}

TEST_F(SqlEdgeTest, LimitZeroAndLimitBeyond) {
  EXPECT_EQ(Q("SELECT * FROM emp LIMIT 0").NumRows(), 0u);
  EXPECT_EQ(Q("SELECT * FROM emp LIMIT 99").NumRows(), 5u);
}

TEST_F(SqlEdgeTest, CaseWithoutElseYieldsNull) {
  auto t = Q("SELECT CASE WHEN salary > 95 THEN 'high' END FROM emp "
             "ORDER BY salary DESC");
  EXPECT_EQ(t.at(0, 0).AsText(), "high");
  EXPECT_TRUE(t.at(1, 0).is_null());
}

TEST_F(SqlEdgeTest, CrossJoinCardinality) {
  auto t = Q("SELECT COUNT(*) FROM dept CROSS JOIN emp");
  EXPECT_EQ(t.at(0, 0), Value::Int(15));
  auto implicit = Q("SELECT COUNT(*) FROM dept, emp");
  EXPECT_EQ(implicit.at(0, 0), Value::Int(15));
}

TEST_F(SqlEdgeTest, DistinctOnExpressions) {
  auto t = Q("SELECT DISTINCT dept_id FROM emp WHERE dept_id IS NOT NULL");
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST_F(SqlEdgeTest, InsertColumnSubsetAndDefaults) {
  Exec("INSERT INTO emp (id, name) VALUES (9, 'zed')");
  auto t = Q("SELECT dept_id, salary FROM emp WHERE id = 9");
  EXPECT_TRUE(t.at(0, 0).is_null());
  EXPECT_TRUE(t.at(0, 1).is_null());
}

TEST_F(SqlEdgeTest, VarcharLengthAccepted) {
  Exec("CREATE TABLE v (s VARCHAR(32), n INTEGER)");
  Exec("INSERT INTO v VALUES ('hello', 1)");
  EXPECT_EQ(Q("SELECT s FROM v").at(0, 0).AsText(), "hello");
}

TEST_F(SqlEdgeTest, ExistsAndNotExistsCorrelated) {
  auto t = Q("SELECT name FROM dept d WHERE NOT EXISTS "
             "(SELECT 1 FROM emp e WHERE e.dept_id = d.id)");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.at(0, 0).AsText(), "empty");
}

TEST_F(SqlEdgeTest, UnionAllTypeWidening) {
  auto t = Q("SELECT salary FROM emp WHERE id = 1 UNION ALL "
             "SELECT salary / 2 FROM emp WHERE id = 1");
  ASSERT_EQ(t.NumRows(), 2u);
  // 100 (int) and 50.0 (double) coexist; schema degrades gracefully.
  EXPECT_EQ(t.at(0, 0).AsDouble() + t.at(1, 0).AsDouble(), 150.0);
}

TEST_F(SqlEdgeTest, DeleteEverythingThenReinsert) {
  Exec("DELETE FROM emp");
  EXPECT_EQ(Q("SELECT COUNT(*) FROM emp").at(0, 0), Value::Int(0));
  Exec("INSERT INTO emp VALUES (1, 1, 'new', 10, NULL)");
  EXPECT_EQ(Q("SELECT COUNT(*) FROM emp").at(0, 0), Value::Int(1));
}

TEST_F(SqlEdgeTest, UpdateAllRowsWithoutWhere) {
  auto r = db_.Execute("UPDATE emp SET salary = salary + 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->affected_rows, 5);
}

TEST_F(SqlEdgeTest, AggregateOfExpression) {
  auto t = Q("SELECT SUM(salary * 2), AVG(salary + 0.0) FROM emp");
  EXPECT_EQ(t.at(0, 0), Value::Int(800));
  EXPECT_DOUBLE_EQ(t.at(0, 1).AsDouble(), 80.0);
}

TEST_F(SqlEdgeTest, SubqueryInFromWithAggregates) {
  auto t = Q("SELECT MAX(team_total) FROM (SELECT dept_id, SUM(salary) AS "
             "team_total FROM emp WHERE dept_id IS NOT NULL GROUP BY "
             "dept_id) sums");
  EXPECT_EQ(t.at(0, 0), Value::Int(180));
}

TEST_F(SqlEdgeTest, QualifiedStarExpansion) {
  auto t = Q("SELECT e.* FROM emp e JOIN dept d ON e.dept_id = d.id "
             "WHERE d.name = 'eng'");
  EXPECT_EQ(t.NumColumns(), 5u);  // only emp's columns
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST_F(SqlEdgeTest, ComparisonTypeMismatchIsAnError) {
  EXPECT_FALSE(db_.Query("SELECT * FROM emp WHERE name > 5").ok());
  EXPECT_FALSE(db_.Query("SELECT name + 'x' FROM emp").ok());
}

TEST_F(SqlEdgeTest, DropTableIfExists) {
  EXPECT_TRUE(db_.Execute("DROP TABLE IF EXISTS no_such_table").ok());
  EXPECT_FALSE(db_.Execute("DROP TABLE no_such_table").ok());
}

}  // namespace
}  // namespace llmdm::sql
