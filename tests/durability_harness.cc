// Deterministic crash-injection harness for the durability subsystem.
//
// The contract under test: recovery after a crash yields exactly the state
// described by the snapshot plus the longest clean prefix of the WAL —
// nothing more, nothing less, at EVERY possible crash point.
//
//   sweep mode: run a scripted workload against a DurableStore (with a
//     mid-run checkpoint, so both the snapshot and the WAL carry state),
//     then for every truncation offset B of the resulting WAL — each byte
//     with --stride=1, sampled plus all record boundaries otherwise —
//     simulate the crash by copying the files with the WAL cut at B,
//     recover a fresh component, and compare its serialized image against a
//     reference built *independently*: this file re-parses the WAL's record
//     framing with its own scanner (lengths + FNV-1a checksums) and applies
//     the surviving payloads on top of the parsed snapshot. Recovery and
//     reference must agree byte-for-byte, and a second recovery from the
//     already-recovered files must be a no-op (idempotence).
//
//   point mode: instead of truncating files after the fact, arm
//     WalWriter::set_crash_after_bytes mid-workload so the writer itself
//     tears a record at --crash-after-bytes and refuses further writes —
//     the in-process shape of a power cut — then recover from whatever
//     actually reached the file and run the same comparison.
//
// Units: --unit=cache (SemanticCache: insert/refresh/evict/compact),
// prompts (PromptStore: add/evict/outcome), flat / hnsw (DurableVectorIndex:
// add/remove). Exit 0 when every offset agrees; 1 on the first divergence;
// 2 on usage errors.
//
// scripts/verify.sh runs the cache and prompts sweeps as its final stage.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/money.h"
#include "core/optimize/prompt_store.h"
#include "core/optimize/semantic_cache.h"
#include "durability/format.h"
#include "durability/snapshot.h"
#include "durability/store.h"
#include "durability/wal.h"
#include "vectordb/durable_index.h"

namespace llmdm {
namespace {

// ---------------------------------------------------------------------------
// Units: one scripted, deterministic workload per durable component.

class Unit {
 public:
  virtual ~Unit() = default;
  virtual durability::DurableState* state() = 0;
  virtual void Attach(durability::DurableStore* store) = 0;
  virtual void ApplyOp(size_t i) = 0;
};

class CacheUnit : public Unit {
 public:
  CacheUnit() : cache_(MakeOptions()) {}

  durability::DurableState* state() override { return &cache_; }
  void Attach(durability::DurableStore* store) override {
    cache_.AttachDurability(store);
  }

  // Cycles through a query set larger than capacity, so the stream exercises
  // fresh inserts, refreshes of resident queries, evictions, and (with the
  // low compact_min_dead) shard compactions — every WAL op kind.
  void ApplyOp(size_t i) override {
    const std::string query = "harness query " + std::to_string(i % 11);
    cache_.Insert(query, "response for op " + std::to_string(i),
                  common::Money::FromMicros(250 + static_cast<int64_t>(i) * 13));
  }

 private:
  static optimize::SemanticCache::Options MakeOptions() {
    optimize::SemanticCache::Options options;
    options.capacity = 6;
    options.num_shards = 2;
    options.compact_min_dead = 2;
    return options;
  }

  optimize::SemanticCache cache_;
};

class PromptUnit : public Unit {
 public:
  PromptUnit() : store_(MakeOptions()) {}

  durability::DurableState* state() override { return &store_; }
  void Attach(durability::DurableStore* store) override {
    store_.AttachDurability(store);
  }

  void ApplyOp(size_t i) override {
    if (i % 3 == 2) {
      // Feedback on an id that certainly exists by now (adds outnumber
      // outcomes), alternating success/failure.
      store_.RecordOutcome(i % (i / 3 * 2 + 1), i % 2 == 0);
    } else {
      store_.Add("worked example " + std::to_string(i),
                 "its answer " + std::to_string(i * 31 % 17));
    }
  }

 private:
  static optimize::PromptStore::Options MakeOptions() {
    optimize::PromptStore::Options options;
    options.capacity = 5;
    return options;
  }

  optimize::PromptStore store_;
};

class IndexUnit : public Unit {
 public:
  explicit IndexUnit(vectordb::DurableVectorIndex::Kind kind)
      : index_(MakeOptions(kind)) {}

  durability::DurableState* state() override { return &index_; }
  void Attach(durability::DurableStore* store) override {
    index_.AttachDurability(store);
  }

  void ApplyOp(size_t i) override {
    if (i % 5 == 4 && index_.Contains(i / 2)) {
      index_.Remove(i / 2).ok();
      return;
    }
    vectordb::Vector v(8);
    for (size_t j = 0; j < v.size(); ++j) {
      v[j] = static_cast<float>((i * 7 + j * 3) % 13) * 0.25f - 1.0f;
    }
    index_.Add(i, std::move(v)).ok();
  }

 private:
  static vectordb::DurableVectorIndex::Options MakeOptions(
      vectordb::DurableVectorIndex::Kind kind) {
    vectordb::DurableVectorIndex::Options options;
    options.kind = kind;
    return options;
  }

  vectordb::DurableVectorIndex index_;
};

std::unique_ptr<Unit> MakeUnit(const std::string& name) {
  if (name == "cache") return std::make_unique<CacheUnit>();
  if (name == "prompts") return std::make_unique<PromptUnit>();
  if (name == "flat") {
    return std::make_unique<IndexUnit>(vectordb::DurableVectorIndex::Kind::kFlat);
  }
  if (name == "hnsw") {
    return std::make_unique<IndexUnit>(vectordb::DurableVectorIndex::Kind::kHnsw);
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Filesystem helpers (plain POSIX; no dependency on the code under test).

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

bool WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool EnsureEmptyDir(const std::string& path) {
  ::mkdir(path.c_str(), 0755);  // EEXIST is fine; we clear it next
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return false;
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(dir);
  for (const std::string& name : names) {
    ::unlink((path + "/" + name).c_str());
  }
  return true;
}

// ---------------------------------------------------------------------------
// Independent WAL scanner. Deliberately NOT ReplayWalFile: the harness
// re-derives the record framing from the documented format so a bug in the
// production reader cannot hide behind itself.

uint64_t ReadLe(const char* p, size_t width) {
  uint64_t v = 0;
  for (size_t i = width; i-- > 0;) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

struct WalScan {
  bool header_valid = false;
  uint64_t epoch = 0;
  std::vector<std::string> payloads;  // the clean prefix, in order
  uint64_t valid_bytes = 0;           // header + complete verified records
};

WalScan ScanWalBytes(std::string_view bytes) {
  WalScan scan;
  if (bytes.size() < durability::kWalHeaderSize) return scan;
  if (bytes.substr(0, 8) != "LDMWAL01") return scan;
  if (ReadLe(bytes.data() + 8, 4) != durability::kWalVersion) return scan;
  scan.header_valid = true;
  scan.epoch = ReadLe(bytes.data() + 12, 8);
  size_t offset = durability::kWalHeaderSize;
  scan.valid_bytes = offset;
  while (bytes.size() - offset >= durability::kWalRecordOverhead) {
    const uint64_t len = ReadLe(bytes.data() + offset, 4);
    const uint64_t sum = ReadLe(bytes.data() + offset + 4, 8);
    const size_t body = offset + durability::kWalRecordOverhead;
    if (len > bytes.size() - body) break;  // torn: length outruns the file
    std::string_view payload = bytes.substr(body, len);
    if (common::Fnv1a(payload) != sum) break;  // torn or corrupt
    scan.payloads.emplace_back(payload);
    offset = body + len;
    scan.valid_bytes = offset;
  }
  return scan;
}

/// Record boundaries (file offsets where a clean prefix ends) of a pristine
/// WAL — the crash points most worth hitting when a stride skips bytes.
std::vector<uint64_t> RecordBoundaries(std::string_view bytes) {
  std::vector<uint64_t> offsets;
  WalScan scan = ScanWalBytes(bytes);
  if (!scan.header_valid) return offsets;
  size_t offset = durability::kWalHeaderSize;
  offsets.push_back(offset);
  for (const std::string& p : scan.payloads) {
    offset += durability::kWalRecordOverhead + p.size();
    offsets.push_back(offset);
  }
  return offsets;
}

// ---------------------------------------------------------------------------
// The check itself.

struct HarnessConfig {
  std::string mode = "sweep";
  std::string unit = "cache";
  std::string dir;
  size_t ops = 30;
  size_t stride = 1;
  int64_t crash_after_bytes = -1;
};

std::string Serialize(Unit& unit) {
  std::string image;
  unit.state()->SaveSnapshot(&image).ok();
  return image;
}

int Fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  return 1;
}

/// Runs the scripted workload with a checkpoint a third of the way in (so
/// recovery must combine snapshot and WAL). Returns false on setup errors.
bool RunWorkload(const HarnessConfig& config, Unit& unit,
                 durability::DurableStore* store) {
  for (size_t i = 0; i < config.ops; ++i) {
    if (i == config.ops / 3) {
      if (!store->Checkpoint().ok()) return false;
      if (config.mode == "point") {
        store->set_crash_after_bytes(config.crash_after_bytes);
      }
    }
    unit.ApplyOp(i);
  }
  store->Sync().ok();  // fails under point-mode injection, by design
  return true;
}

/// Recovers a fresh unit from `work_dir`, checks it against the
/// independently built reference for `wal_bytes`, and checks that a second
/// recovery of the now-repaired directory is a no-op. `label` names the
/// crash point in failure messages.
int CheckRecovery(const HarnessConfig& config, const std::string& work_dir,
                  const std::string& snap_bytes, std::string_view wal_bytes,
                  const std::string& label) {
  // Reference: parsed snapshot + clean WAL prefix, applied directly.
  WalScan scan = ScanWalBytes(wal_bytes);
  std::unique_ptr<Unit> ref = MakeUnit(config.unit);
  ref->state()->ResetToEmpty();
  durability::SnapshotView view = durability::ParseSnapshot(snap_bytes);
  if (!view.valid) return Fail(label + ": pristine snapshot failed to parse");
  durability::ByteReader reader(view.payload);
  if (!ref->state()->LoadSnapshot(reader).ok()) {
    return Fail(label + ": reference LoadSnapshot failed");
  }
  for (size_t k = 0; k < scan.payloads.size(); ++k) {
    if (!ref->state()->ApplyWalRecord(scan.payloads[k]).ok()) {
      return Fail(label + ": reference replay failed at record " +
                  std::to_string(k));
    }
  }
  const std::string want = Serialize(*ref);

  // Recovery under test.
  std::unique_ptr<Unit> recovered = MakeUnit(config.unit);
  durability::DurableStore::Options options;
  options.dir = work_dir;
  options.name = "unit";
  options.fsync = false;
  auto store = durability::DurableStore::Open(options, recovered->state());
  if (!store.ok()) {
    return Fail(label + ": recovery errored: " + store.status().ToString());
  }
  const durability::DurableStore::RecoveryInfo& info =
      store.value()->recovery_info();
  if (Serialize(*recovered) != want) {
    return Fail(label + ": recovered state != snapshot + clean WAL prefix (" +
                std::to_string(scan.payloads.size()) + " surviving records)");
  }
  if (!info.snapshot_loaded) {
    return Fail(label + ": recovery did not load the snapshot");
  }
  if (info.wal_records_replayed != scan.payloads.size()) {
    return Fail(label + ": replayed " +
                std::to_string(info.wal_records_replayed) + " records, scanner found " +
                std::to_string(scan.payloads.size()));
  }
  const uint64_t want_valid = scan.header_valid ? scan.valid_bytes : 0;
  if (info.wal_valid_bytes != want_valid ||
      info.wal_valid_bytes + info.wal_discarded_bytes != wal_bytes.size()) {
    return Fail(label + ": byte accounting off (valid " +
                std::to_string(info.wal_valid_bytes) + " + discarded " +
                std::to_string(info.wal_discarded_bytes) + " vs file " +
                std::to_string(wal_bytes.size()) + ")");
  }
  store.value().reset();  // close the writer before reopening the files

  // Idempotence: recovery already truncated the torn tail, so recovering
  // again must land on the identical image with nothing left to discard.
  std::unique_ptr<Unit> again = MakeUnit(config.unit);
  auto store2 = durability::DurableStore::Open(options, again->state());
  if (!store2.ok()) {
    return Fail(label + ": second recovery errored: " +
                store2.status().ToString());
  }
  if (Serialize(*again) != want) {
    return Fail(label + ": second recovery diverged (not idempotent)");
  }
  if (store2.value()->recovery_info().wal_discarded_bytes != 0) {
    return Fail(label + ": second recovery still discarding bytes");
  }
  return 0;
}

int RunSweep(const HarnessConfig& config, const std::string& snap_bytes,
             const std::string& wal_bytes, uint64_t epoch,
             const std::string& final_image) {
  // Offsets: every stride-th byte, always including 0, the file size, and
  // every record boundary (the clean-crash points a coarse stride would
  // jump over).
  std::set<uint64_t> offsets;
  for (uint64_t b = 0; b <= wal_bytes.size(); b += config.stride) {
    offsets.insert(b);
  }
  offsets.insert(wal_bytes.size());
  for (uint64_t b : RecordBoundaries(wal_bytes)) offsets.insert(b);

  const std::string work_dir = config.dir + "/work";
  size_t prev_records = 0;
  bool full_file_checked = false;
  for (uint64_t b : offsets) {
    if (!EnsureEmptyDir(work_dir)) {
      std::fprintf(stderr, "cannot create %s\n", work_dir.c_str());
      return 2;
    }
    if (!WriteFileBytes(work_dir + "/unit.snap", snap_bytes) ||
        !WriteFileBytes(work_dir + "/unit.wal." + std::to_string(epoch),
                        std::string_view(wal_bytes).substr(0, b))) {
      std::fprintf(stderr, "cannot stage crash files in %s\n",
                   work_dir.c_str());
      return 2;
    }
    const std::string label = "truncate@" + std::to_string(b);
    int rc = CheckRecovery(config, work_dir, snap_bytes,
                           std::string_view(wal_bytes).substr(0, b), label);
    if (rc != 0) return rc;

    // Longer prefixes can only ever add records: recovery is monotone in
    // the crash point.
    WalScan scan = ScanWalBytes(std::string_view(wal_bytes).substr(0, b));
    if (scan.payloads.size() < prev_records) {
      return Fail(label + ": surviving record count went backwards");
    }
    prev_records = scan.payloads.size();

    if (b == wal_bytes.size()) {
      // The uncut file must recover to exactly the pre-crash image.
      std::unique_ptr<Unit> whole = MakeUnit(config.unit);
      durability::DurableStore::Options options;
      options.dir = work_dir;
      options.name = "unit";
      options.fsync = false;
      auto store = durability::DurableStore::Open(options, whole->state());
      if (!store.ok() || Serialize(*whole) != final_image) {
        return Fail("full WAL does not recover the pre-crash state");
      }
      full_file_checked = true;
    }
  }
  if (!full_file_checked) return Fail("sweep never reached the full file");
  std::printf(
      "sweep unit=%s: %zu crash points over %zu WAL bytes "
      "(%zu records) all recover to the clean prefix\n",
      config.unit.c_str(), offsets.size(), wal_bytes.size(), prev_records);
  return 0;
}

int RunHarness(const HarnessConfig& config) {
  // Phase 1: pristine run — scripted workload with a mid-run checkpoint.
  const std::string pristine_dir = config.dir + "/pristine";
  if (!EnsureEmptyDir(config.dir) || !EnsureEmptyDir(pristine_dir)) {
    std::fprintf(stderr, "cannot create working dirs under %s\n",
                 config.dir.c_str());
    return 2;
  }
  std::unique_ptr<Unit> unit = MakeUnit(config.unit);
  std::string final_image;
  uint64_t epoch = 0;
  {
    durability::DurableStore::Options options;
    options.dir = pristine_dir;
    options.name = "unit";
    options.fsync = false;
    auto store = durability::DurableStore::Open(options, unit->state());
    if (!store.ok()) {
      std::fprintf(stderr, "pristine open failed: %s\n",
                   store.status().ToString().c_str());
      return 2;
    }
    unit->Attach(store.value().get());
    if (!RunWorkload(config, *unit, store.value().get())) {
      std::fprintf(stderr, "pristine workload failed\n");
      return 2;
    }
    final_image = Serialize(*unit);
    epoch = store.value()->epoch();
  }

  std::string snap_bytes, wal_bytes;
  if (!ReadFileBytes(pristine_dir + "/unit.snap", &snap_bytes) ||
      !ReadFileBytes(pristine_dir + "/unit.wal." + std::to_string(epoch),
                     &wal_bytes)) {
    std::fprintf(stderr, "pristine run left no snapshot/WAL pair\n");
    return 2;
  }

  if (config.mode == "sweep") {
    return RunSweep(config, snap_bytes, wal_bytes, epoch, final_image);
  }

  // Point mode: the workload above ran with set_crash_after_bytes armed, so
  // unit.wal.<epoch> on disk IS the crash artifact — recover it in place.
  // (final_image is the in-memory state the crash cut short; the recovered
  // state must instead match the clean prefix that reached the file.)
  int rc = CheckRecovery(
      config, pristine_dir, snap_bytes, wal_bytes,
      "crash-after-bytes=" + std::to_string(config.crash_after_bytes));
  if (rc != 0) return rc;
  WalScan scan = ScanWalBytes(wal_bytes);
  std::printf(
      "point unit=%s crash-after-bytes=%lld: %zu of the workload's records "
      "survived and recover cleanly\n",
      config.unit.c_str(),
      static_cast<long long>(config.crash_after_bytes), scan.payloads.size());
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: llmdm_durability_harness --mode=sweep|point "
      "--unit=cache|prompts|flat|hnsw --dir=DIR\n"
      "        [--ops=N] [--stride=N] [--crash-after-bytes=N]\n"
      "  sweep: truncate the WAL at every (stride-sampled) byte offset and\n"
      "         assert recovery equals snapshot + clean record prefix\n"
      "  point: arm the writer's crash injection at the given file size and\n"
      "         assert recovery of the torn file\n");
  return 2;
}

}  // namespace
}  // namespace llmdm

int main(int argc, char** argv) {
  llmdm::HarnessConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (const char* v = value("--mode")) {
      config.mode = v;
    } else if (const char* v = value("--unit")) {
      config.unit = v;
    } else if (const char* v = value("--dir")) {
      config.dir = v;
    } else if (const char* v = value("--ops")) {
      config.ops = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--stride")) {
      config.stride = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--crash-after-bytes")) {
      config.crash_after_bytes = std::strtoll(v, nullptr, 10);
    } else {
      return llmdm::Usage();
    }
  }
  if (config.dir.empty() || config.ops == 0 || config.stride == 0) {
    return llmdm::Usage();
  }
  if (config.mode != "sweep" && config.mode != "point") return llmdm::Usage();
  if (config.mode == "point" && config.crash_after_bytes < 0) {
    // Default leaves room for a few committed records, then tears one
    // mid-payload (every unit's records are well under 150 bytes).
    config.crash_after_bytes =
        static_cast<int64_t>(llmdm::durability::kWalHeaderSize) + 150;
  }
  if (llmdm::MakeUnit(config.unit) == nullptr) return llmdm::Usage();
  return llmdm::RunHarness(config);
}
