#include <gtest/gtest.h>

#include <cmath>

#include "core/privacy/dp.h"
#include "core/privacy/federated.h"
#include "data/tabular_gen.h"

namespace llmdm::privacy {
namespace {

ml::Dataset MakeDataset(size_t rows, uint64_t seed) {
  common::Rng rng(seed);
  data::PatientDataOptions options;
  options.num_rows = rows;
  data::Table patients = data::GeneratePatientTable(options, rng);
  auto ds = ml::DatasetFromTable(patients, "has_heart_disease");
  EXPECT_TRUE(ds.ok());
  ml::Standardize(&*ds);
  return *ds;
}

// ---- DP mechanisms ---------------------------------------------------------------

TEST(DpMechanism, BudgetAccounting) {
  DpMechanism mech(1.0, 42);
  EXPECT_TRUE(mech.LaplaceNoise(10.0, 1.0, 0.4).ok());
  EXPECT_TRUE(mech.LaplaceNoise(10.0, 1.0, 0.4).ok());
  EXPECT_NEAR(mech.remaining_budget(), 0.2, 1e-12);
  // Third query would overspend.
  EXPECT_FALSE(mech.LaplaceNoise(10.0, 1.0, 0.4).ok());
  EXPECT_EQ(mech.LaplaceNoise(10.0, 1.0, 0.4).status().code(),
            common::StatusCode::kResourceExhausted);
}

TEST(DpMechanism, RejectsBadParameters) {
  DpMechanism mech(10.0, 42);
  EXPECT_FALSE(mech.LaplaceNoise(1.0, 1.0, 0.0).ok());
  EXPECT_FALSE(mech.GaussianNoise(1.0, 1.0, 1.0, 0.0).ok());
  EXPECT_FALSE(mech.GaussianNoise(1.0, 1.0, 1.0, 1.5).ok());
}

TEST(DpMechanism, NoiseScalesInverselyWithEpsilon) {
  // Empirical spread at eps=0.1 must exceed spread at eps=10.
  auto spread = [](double epsilon) {
    DpMechanism mech(1e9, 7);
    double acc = 0;
    for (int i = 0; i < 400; ++i) {
      acc += std::abs(*mech.LaplaceNoise(0.0, 1.0, epsilon));
    }
    return acc / 400;
  };
  EXPECT_GT(spread(0.1), spread(10.0) * 10);
}

TEST(DpAggregator, NoisyStatsNearTruth) {
  common::Rng rng(81);
  data::PatientDataOptions options;
  options.num_rows = 300;
  data::Table patients = data::GeneratePatientTable(options, rng);
  DpAggregator agg(&patients, 10.0, 99);
  auto count = agg.NoisyCount("age", 2.0);
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(*count, 300.0, 15.0);
  auto mean = agg.NoisyMean("age", 20, 90, 4.0);
  ASSERT_TRUE(mean.ok());
  EXPECT_NEAR(*mean, 55.0, 10.0);  // ages uniform on [25,85]
  EXPECT_LT(agg.remaining_budget(), 10.0);
}

// ---- DP-SGD + membership inference -------------------------------------------------

TEST(DpTraining, NonPrivateModelLearns) {
  ml::Dataset train = MakeDataset(300, 1);
  ml::Dataset holdout = MakeDataset(150, 2);
  DpTrainingReport report = TrainWithDpAndAudit(train, holdout, 0.0, 0.0, 3);
  EXPECT_GT(report.holdout_accuracy, 0.7);
  EXPECT_DOUBLE_EQ(report.approx_epsilon, 0.0);
}

TEST(DpTraining, NoiseTradesUtilityForPrivacy) {
  ml::Dataset train = MakeDataset(300, 4);
  ml::Dataset holdout = MakeDataset(150, 5);
  DpTrainingReport clear = TrainWithDpAndAudit(train, holdout, 0.0, 0.0, 6);
  DpTrainingReport mild = TrainWithDpAndAudit(train, holdout, 0.5, 1.0, 6);
  DpTrainingReport heavy = TrainWithDpAndAudit(train, holdout, 8.0, 1.0, 6);
  // Attack advantage shrinks as noise grows.
  EXPECT_LE(heavy.attack.advantage(), clear.attack.advantage() + 0.02);
  // Utility degrades with heavy noise.
  EXPECT_GE(clear.holdout_accuracy, heavy.holdout_accuracy - 0.02);
  // Mild DP keeps most of the utility.
  EXPECT_GT(mild.holdout_accuracy, 0.6);
  // Epsilon proxy shrinks with more noise.
  EXPECT_GT(mild.approx_epsilon, heavy.approx_epsilon);
}

TEST(MembershipAttack, DetectsOverfitModel) {
  // A tiny training set overfits; the attack should get real advantage.
  ml::Dataset small_train = MakeDataset(30, 7);
  ml::Dataset fresh = MakeDataset(200, 8);
  ml::LogisticRegression model;
  ml::LogisticRegression::TrainOptions options;
  options.epochs = 400;
  options.l2 = 0.0;
  model.Train(small_train, options);
  auto attack = RunMembershipInferenceAttack(model, small_train, fresh);
  EXPECT_GT(attack.advantage(), 0.05);
}

// ---- federated learning --------------------------------------------------------------

TEST(Federated, IidClientsReachCentralizedQuality) {
  ml::Dataset all = MakeDataset(400, 9);
  ml::Dataset holdout = MakeDataset(200, 10);
  common::Rng rng(11);
  auto clients = MakeHeterogeneousClients(all, 4, 0.0, rng);
  FederatedTrainer::Options options;
  options.rounds = 12;
  FederatedTrainer trainer(options);
  auto report = trainer.Train(clients, holdout);
  ASSERT_TRUE(report.ok());
  ml::LogisticRegression central;
  ml::LogisticRegression::TrainOptions copts;
  central.Train(all, copts);
  EXPECT_GT(report->final_accuracy, central.Accuracy(holdout) - 0.08);
}

TEST(Federated, HeterogeneityHurtsAndAdaptationHelps) {
  ml::Dataset all = MakeDataset(400, 12);
  ml::Dataset holdout = MakeDataset(200, 13);
  common::Rng rng(14);
  auto skewed = MakeHeterogeneousClients(all, 4, 0.9, rng);
  common::Rng rng2(14);
  auto iid = MakeHeterogeneousClients(all, 4, 0.0, rng2);

  FederatedTrainer::Options plain;
  plain.rounds = 10;
  FederatedTrainer plain_trainer(plain);
  auto iid_report = plain_trainer.Train(iid, holdout);
  auto skew_report = plain_trainer.Train(skewed, holdout);
  ASSERT_TRUE(iid_report.ok() && skew_report.ok());
  EXPECT_GE(iid_report->final_accuracy, skew_report->final_accuracy - 0.02);

  FederatedTrainer::Options adaptive = plain;
  adaptive.adaptive_weighting = true;
  FederatedTrainer adaptive_trainer(adaptive);
  auto adaptive_report = adaptive_trainer.Train(skewed, holdout);
  ASSERT_TRUE(adaptive_report.ok());
  EXPECT_GE(adaptive_report->final_accuracy,
            skew_report->final_accuracy - 0.05);
}

TEST(Federated, ComposesWithDpSgd) {
  // DP-FedAvg: each client trains its local model with DP-SGD, then the
  // server averages — the combination Sec. III-D actually calls for
  // (collaboration without sharing data, AND noise against memorization).
  ml::Dataset all = MakeDataset(400, 18);
  ml::Dataset holdout = MakeDataset(200, 19);
  common::Rng rng(20);
  auto clients = MakeHeterogeneousClients(all, 4, 0.3, rng);
  std::vector<ml::LogisticRegression> locals;
  std::vector<size_t> sizes;
  for (const auto& client : clients) {
    ml::LogisticRegression local;
    ml::LogisticRegression::TrainOptions options;
    options.clip_norm = 1.0;
    options.noise_multiplier = 0.5;
    options.epochs = 30;
    options.seed = 21 + sizes.size();
    local.Train(client.shard, options);
    locals.push_back(std::move(local));
    sizes.push_back(client.shard.size());
  }
  ml::LogisticRegression global = ml::FederatedAverage(locals, sizes);
  // Averaging cancels much of the independent DP noise: the global model
  // must beat the average local model on the common holdout.
  double local_mean = 0;
  for (const auto& m : locals) local_mean += m.Accuracy(holdout);
  local_mean /= double(locals.size());
  EXPECT_GT(global.Accuracy(holdout), local_mean - 0.02);
  EXPECT_GT(global.Accuracy(holdout), 0.6);
}

TEST(Federated, ShardSizesSumToDataset) {
  ml::Dataset all = MakeDataset(200, 15);
  common::Rng rng(16);
  auto clients = MakeHeterogeneousClients(all, 5, 0.5, rng);
  size_t total = 0;
  for (const auto& c : clients) total += c.shard.size();
  EXPECT_EQ(total, all.size());
}

TEST(Federated, NoClientsRejected) {
  FederatedTrainer trainer(FederatedTrainer::Options{});
  EXPECT_FALSE(trainer.Train({}, MakeDataset(10, 17)).ok());
}

}  // namespace
}  // namespace llmdm::privacy
