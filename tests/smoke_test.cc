#include <gtest/gtest.h>

#include "common/status.h"

namespace llmdm {
namespace {

TEST(Smoke, StatusOk) { EXPECT_TRUE(common::Status::Ok().ok()); }

}  // namespace
}  // namespace llmdm
