#include <gtest/gtest.h>

#include <algorithm>

#include "core/optimize/cascade.h"
#include "core/optimize/decomposition.h"
#include "core/optimize/prompt_store.h"
#include "core/optimize/semantic_cache.h"
#include "data/nl2sql_workload.h"
#include "data/qa_workload.h"
#include "llm/simulated.h"
#include "sql/database.h"
#include "text/tokenizer.h"

namespace llmdm::optimize {
namespace {

class CascadeTest : public ::testing::Test {
 protected:
  CascadeTest() {
    common::Rng rng(303);
    kb_ = data::KnowledgeBase::Generate(50, rng);
    ladder_ = llm::CreatePaperModelLadder(&kb_, 777);
    workload_ = data::GenerateQaWorkload(kb_, 60, {1.0, 1.0, 0.6}, rng);
  }

  data::KnowledgeBase kb_;
  std::vector<std::shared_ptr<llm::LlmModel>> ladder_;
  std::vector<data::QaItem> workload_;
};

TEST_F(CascadeTest, EmptyLadderRejected) {
  LlmCascade cascade({}, LlmCascade::Options{});
  EXPECT_FALSE(cascade.Run(llm::MakePrompt("qa", "Who is X?")).ok());
}

TEST_F(CascadeTest, AcceptsAtSomeRungAndMeters) {
  LlmCascade cascade(ladder_, LlmCascade::Options{});
  llm::UsageMeter meter;
  auto r = cascade.Run(llm::MakePrompt("qa", workload_[0].question), &meter);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->answer.empty());
  EXPECT_FALSE(r->trace.empty());
  EXPECT_TRUE(r->trace.back().accepted);
  EXPECT_EQ(meter.calls(), r->total_calls);
  EXPECT_GT(r->cost.micros(), 0);
}

TEST_F(CascadeTest, ThresholdZeroAlwaysTakesSmallModel) {
  LlmCascade::Options options;
  options.accept_threshold = 0.0;
  LlmCascade cascade(ladder_, options);
  auto r = cascade.Run(llm::MakePrompt("qa", workload_[1].question));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->model, ladder_[0]->name());
  EXPECT_EQ(r->trace.size(), 1u);
}

TEST_F(CascadeTest, ImpossibleThresholdEscalatesToTop) {
  LlmCascade::Options options;
  options.accept_threshold = 1.1;
  LlmCascade cascade(ladder_, options);
  auto r = cascade.Run(llm::MakePrompt("qa", workload_[2].question));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->model, ladder_.back()->name());
  EXPECT_EQ(r->trace.size(), ladder_.size());
}

TEST_F(CascadeTest, MatchesBigModelAccuracyAtLowerCost) {
  // The Table I shape: cascade accuracy ~ gpt-4 accuracy, cost well below.
  LlmCascade::Options options;
  options.accept_threshold = 0.8;
  LlmCascade cascade(ladder_, options);

  int cascade_correct = 0, big_correct = 0;
  llm::UsageMeter cascade_meter, big_meter;
  for (const auto& item : workload_) {
    llm::Prompt p = llm::MakePrompt("qa", item.question);
    auto cr = cascade.Run(p, &cascade_meter);
    ASSERT_TRUE(cr.ok());
    if (cr->answer == item.answer) ++cascade_correct;
    auto br = ladder_.back()->CompleteMetered(p, &big_meter);
    ASSERT_TRUE(br.ok());
    if (br->text == item.answer) ++big_correct;
  }
  double cascade_acc = double(cascade_correct) / double(workload_.size());
  double big_acc = double(big_correct) / double(workload_.size());
  EXPECT_GT(cascade_acc, big_acc - 0.12);       // near-parity accuracy
  EXPECT_LT(cascade_meter.cost().dollars(),
            big_meter.cost().dollars() * 0.7);  // clear cost win
}

TEST(CalibrateThreshold, PrefersSeparatingThreshold) {
  // Scores above 0.6 are always right, below always wrong: the calibrated
  // threshold should fall in between (escalating the wrong ones).
  std::vector<CalibrationSample> samples;
  for (int i = 0; i < 50; ++i) {
    samples.push_back({0.9, true});
    samples.push_back({0.3, false});
  }
  double t = CalibrateAcceptThreshold(samples, /*escalation_accuracy=*/0.95,
                                      /*escalation_cost_ratio=*/20.0);
  EXPECT_GT(t, 0.3);
  EXPECT_LE(t, 0.9);
}

TEST(CalibrateThreshold, EmptySamplesFallBack) {
  EXPECT_DOUBLE_EQ(CalibrateAcceptThreshold({}, 0.9, 10.0), 0.7);
}

// ---- decomposition ------------------------------------------------------------

TEST(Decomposition, SplitsCompoundQuestion) {
  auto d = DecomposeQuestion(
      "What are the names of stadiums that had concerts in 2014 or had "
      "sports meetings in 2015?");
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->sub_questions.size(), 2u);
  EXPECT_EQ(d->sub_questions[0], "stadiums that had concerts in 2014");
  EXPECT_EQ(d->sub_questions[1], "stadiums that had sports meetings in 2015");
  EXPECT_EQ(d->combiner, data::Combiner::kOr);
}

TEST(Decomposition, AtomicStaysAtomic) {
  auto d = DecomposeQuestion(
      "What are the names of stadiums that had concerts in 2014?");
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->atomic());
}

TEST(Decomposition, RecombineUsesSetAlgebra) {
  EXPECT_EQ(RecombineSql({"A", "B"}, data::Combiner::kOr), "A UNION B");
  EXPECT_EQ(RecombineSql({"A", "B"}, data::Combiner::kAnd), "A INTERSECT B");
  EXPECT_EQ(RecombineSql({"A", "B"}, data::Combiner::kAndNot), "A EXCEPT B");
  EXPECT_EQ(RecombineSql({"A"}, data::Combiner::kOr), "A");
}

class BatchOptimizerTest : public ::testing::Test {
 protected:
  BatchOptimizerTest() {
    common::Rng rng(404);
    auto script = data::BuildStadiumDatabaseScript(12, {2014, 2015}, rng);
    EXPECT_TRUE(db_.ExecuteScript(script).ok());
    models_ = llm::CreatePaperModelLadder(nullptr, 909);
    // A workload with heavy sub-query sharing (small condition pool).
    data::Nl2SqlWorkloadOptions options;
    options.num_queries = 20;
    options.condition_pool = 4;
    options.compound_rate = 0.8;
    for (const auto& q : data::GenerateNl2SqlWorkload(options, rng)) {
      questions_.push_back(q.ToNaturalLanguage());
      gold_.push_back(q.ToGoldSql());
    }
  }

  double GradeAll(const std::vector<std::string>& sql) {
    int correct = 0;
    for (size_t i = 0; i < sql.size(); ++i) {
      auto gold = db_.Query(gold_[i]);
      auto pred = db_.Query(sql[i]);
      if (gold.ok() && pred.ok() && pred->BagEquals(*gold)) ++correct;
    }
    return double(correct) / double(sql.size());
  }

  sql::Database db_;
  std::vector<std::shared_ptr<llm::LlmModel>> models_;
  std::vector<std::string> questions_;
  std::vector<std::string> gold_;
};

TEST_F(BatchOptimizerTest, PlanDedupesSharedSubqueries) {
  QueryBatchOptimizer::Options options;
  options.enable_decomposition = true;
  QueryBatchOptimizer optimizer(options);
  BatchPlan plan = optimizer.Plan(questions_);
  // With a pool of 4 conditions, unique units must be far fewer than the sum
  // of all per-query units.
  size_t total_units = 0;
  for (const auto& item : plan.items) total_units += item.units.size();
  EXPECT_LT(plan.unique_units.size(), total_units);
  EXPECT_EQ(plan.items.size(), questions_.size());
}

TEST_F(BatchOptimizerTest, DirectPlanWhenDecompositionDisabled) {
  QueryBatchOptimizer::Options options;
  options.enable_decomposition = false;
  QueryBatchOptimizer optimizer(options);
  BatchPlan plan = optimizer.Plan(questions_);
  for (const auto& item : plan.items) {
    EXPECT_FALSE(item.decomposed);
    EXPECT_EQ(item.units.size(), 1u);
  }
}

TEST_F(BatchOptimizerTest, TableIIShape) {
  // Origin vs Decomposition vs Decomposition+Combination: accuracy must not
  // drop and cost must fall monotonically.
  auto examples = data::PaperQ1ToQ5();
  std::vector<llm::FewShotExample> few_shot;
  for (const auto& ex : examples) {
    few_shot.push_back({ex.ToNaturalLanguage(), ex.ToGoldSql()});
  }
  auto run = [&](bool decompose, bool combine) {
    QueryBatchOptimizer::Options options;
    options.enable_decomposition = decompose;
    options.enable_combination = combine;
    options.examples = few_shot;
    QueryBatchOptimizer optimizer(options);
    BatchPlan plan = optimizer.Plan(questions_);
    llm::UsageMeter meter;
    auto exec = optimizer.Execute(plan, *models_[1], &meter);
    EXPECT_TRUE(exec.ok());
    return std::make_pair(GradeAll(exec->sql), meter.cost().dollars());
  };
  auto [acc_origin, cost_origin] = run(false, false);
  auto [acc_decomp, cost_decomp] = run(true, false);
  auto [acc_comb, cost_comb] = run(true, true);

  EXPECT_GE(acc_decomp, acc_origin);        // decomposition helps accuracy
  EXPECT_LT(cost_decomp, cost_origin);      // and costs less
  EXPECT_NEAR(acc_comb, acc_decomp, 1e-9);  // combination: same answers
  EXPECT_LT(cost_comb, cost_decomp);        // at lower cost still
}

// ---- semantic cache -------------------------------------------------------------

TEST(SemanticCache, ExactishHitAboveThreshold) {
  SemanticCache cache(SemanticCache::Options{});
  cache.Insert("What are the names of stadiums that had concerts in 2014?",
               "SELECT ...", common::Money::FromDollars(0.01));
  auto hit = cache.Lookup(
      "What are the names of stadiums that had concerts in 2014?",
      common::Money::FromDollars(0.02));
  ASSERT_TRUE(hit.has_value());
  EXPECT_GT(hit->similarity, 0.99f);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().saved, common::Money::FromDollars(0.02));
}

TEST(SemanticCache, ParaphraseHitsNonExactMatch) {
  SemanticCache::Options options;
  options.similarity_threshold = 0.85;
  SemanticCache cache(options);
  cache.Insert("Show the names of stadiums that had concerts in 2014",
               "SELECT name ...");
  auto hit = cache.Lookup(
      "What are the names of stadiums that had concerts in 2014?");
  EXPECT_TRUE(hit.has_value());
}

TEST(SemanticCache, UnrelatedQueryMisses) {
  SemanticCache cache(SemanticCache::Options{});
  cache.Insert("stadium concerts question", "answer A");
  auto hit = cache.Lookup("completely different medical topic on insulin");
  EXPECT_FALSE(hit.has_value());
}

TEST(SemanticCache, EvictionRespectsCapacity) {
  SemanticCache::Options options;
  options.capacity = 4;
  options.policy = EvictionPolicy::kLru;
  SemanticCache cache(options);
  for (int i = 0; i < 10; ++i) {
    cache.Insert("query number " + std::to_string(i) + " about topic " +
                     std::to_string(i * 7),
                 "answer");
  }
  EXPECT_EQ(cache.Size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 6u);
}

TEST(SemanticCache, CostAwareKeepsReusedEntries) {
  SemanticCache::Options options;
  options.capacity = 2;
  options.policy = EvictionPolicy::kCostAware;
  SemanticCache cache(options);
  cache.Insert("alpha workload query about stadium capacity", "A");
  cache.Insert("beta workload query about patient cholesterol", "B");
  // Make alpha valuable through reuse hits.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(
        cache.Lookup("alpha workload query about stadium capacity").has_value());
  }
  cache.Insert("gamma workload query about federated learning", "C");
  // Alpha must survive; beta (no hits) is the victim.
  EXPECT_TRUE(
      cache.Lookup("alpha workload query about stadium capacity").has_value());
  EXPECT_FALSE(
      cache.Lookup("beta workload query about patient cholesterol").has_value());
}

TEST(SemanticCache, PredictiveAdmissionSkipsSingletons) {
  SemanticCache::Options options;
  options.capacity = 4;
  options.predictive_admission = true;
  SemanticCache cache(options);
  // One-off queries never enter the cache...
  for (int i = 0; i < 10; ++i) {
    cache.Insert("one-off query number " + std::to_string(i), "a");
  }
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_EQ(cache.stats().admission_rejections, 10u);
  // ...but a recurring query is admitted on its second sighting.
  cache.Insert("the recurring data prep question", "a");
  EXPECT_EQ(cache.Size(), 0u);
  cache.Insert("the recurring data prep question", "a");
  EXPECT_EQ(cache.Size(), 1u);
  EXPECT_TRUE(cache.Lookup("the recurring data prep question").has_value());
}

TEST(SemanticCache, PredictiveAdmissionProtectsHotEntries) {
  // Under a singleton-heavy stream with a tiny cache, the doorkeeper keeps
  // the one hot query resident while plain insertion churns it out.
  auto run = [](bool predictive) {
    SemanticCache::Options options;
    options.capacity = 2;
    options.predictive_admission = predictive;
    SemanticCache cache(options);
    common::Rng rng(13);
    size_t hot_hits = 0;
    for (int step = 0; step < 200; ++step) {
      std::string q = (step % 4 == 0)
                          ? std::string("the hot recurring question")
                          : "cold singleton " + std::to_string(step) +
                                " about subject " + std::to_string(step * 17);
      if (cache.Lookup(q).has_value()) {
        if (q == "the hot recurring question") ++hot_hits;
      } else {
        cache.Insert(q, "answer");
      }
    }
    return hot_hits;
  };
  EXPECT_GT(run(true), run(false));
}

TEST(SemanticCache, TopKAugmentationReturnsNeighbors) {
  SemanticCache cache(SemanticCache::Options{});
  cache.Insert("stadiums that had concerts in 2014", "SQL1");
  cache.Insert("stadiums that had concerts in 2015", "SQL2");
  cache.Insert("patients with high cholesterol", "SQL3");
  auto hits = cache.TopKForAugmentation("stadiums that had concerts in 2016", 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_NE(hits[0].response, "SQL3");
  EXPECT_NE(hits[1].response, "SQL3");
}

TEST(Doorkeeper, AdmitsOnSecondSightingWithinWindow) {
  Doorkeeper dk(8);
  EXPECT_FALSE(dk.SeenAndNote(42));  // first sighting
  EXPECT_TRUE(dk.SeenAndNote(42));   // second sighting, same epoch
  EXPECT_FALSE(dk.SeenAndNote(43));
}

TEST(Doorkeeper, EntriesStayBoundedByTwoEpochs) {
  constexpr size_t kEpoch = 64;
  Doorkeeper dk(kEpoch);
  for (uint64_t h = 0; h < 100000; ++h) {
    dk.SeenAndNote(h);
    ASSERT_LE(dk.entries(), 2 * kEpoch);
  }
  // A hash re-sighted while still inside the window is remembered...
  uint64_t recent = 100000;
  dk.SeenAndNote(recent);
  EXPECT_TRUE(dk.SeenAndNote(recent));
  // ...but one older than two epochs has been forgotten.
  EXPECT_FALSE(dk.SeenAndNote(0));
}

TEST(SemanticCache, DoorkeeperMemoryBoundedUnderSingletonFlood) {
  SemanticCache::Options options;
  options.capacity = 8;
  options.predictive_admission = true;
  options.doorkeeper_capacity = 32;
  SemanticCache cache(options);
  for (int i = 0; i < 10000; ++i) {
    cache.Insert("unique singleton " + std::to_string(i), "a");
    ASSERT_LE(cache.doorkeeper_entries(), 2 * 32u);
  }
  EXPECT_EQ(cache.Size(), 0u);  // all rejected at the door
  EXPECT_EQ(cache.stats().admission_rejections, 10000u);
}

// A workload with exact repeats and ample capacity: hit/miss outcomes depend
// only on each query's own history, never on eviction or shard layout, so
// every shard count must produce identical aggregate stats.
TEST(SemanticCache, ShardCountInvariantWithoutEvictionPressure) {
  auto run = [](size_t num_shards) {
    SemanticCache::Options options;
    options.capacity = 1024;
    options.similarity_threshold = 0.99;
    options.num_shards = num_shards;
    SemanticCache cache(options);
    for (int rep = 0; rep < 3; ++rep) {
      for (int i = 0; i < 40; ++i) {
        std::string q = "query " + std::to_string(i) + " about subject " +
                        std::to_string(i * 31 % 7);
        if (!cache.Lookup(q, common::Money::FromDollars(0.01)).has_value()) {
          cache.Insert(q, "answer " + std::to_string(i));
        }
      }
    }
    return cache.stats();
  };
  SemanticCache::Stats base = run(1);
  EXPECT_EQ(base.lookups, 120u);
  EXPECT_EQ(base.hits, 80u);  // each of 40 queries misses once, hits twice
  for (size_t shards : {2u, 4u, 8u}) {
    SemanticCache::Stats s = run(shards);
    EXPECT_EQ(s.lookups, base.lookups) << shards;
    EXPECT_EQ(s.hits, base.hits) << shards;
    EXPECT_EQ(s.insertions, base.insertions) << shards;
    EXPECT_EQ(s.evictions, base.evictions) << shards;
    EXPECT_EQ(s.saved, base.saved) << shards;
  }
}

TEST(SemanticCache, ShardedEvictionIsDeterministicAcrossRuns) {
  auto run = [] {
    SemanticCache::Options options;
    options.capacity = 10;  // heavy pressure: splits 3,3,2,2 across shards
    options.num_shards = 4;
    options.policy = EvictionPolicy::kCostAware;
    SemanticCache cache(options);
    for (int step = 0; step < 300; ++step) {
      std::string q = "stream query " + std::to_string(step % 40) +
                      " topic " + std::to_string(step * 13 % 11);
      if (!cache.Lookup(q).has_value()) cache.Insert(q, "a");
    }
    return cache.stats();
  };
  SemanticCache::Stats a = run();
  SemanticCache::Stats b = run();
  EXPECT_EQ(a.lookups, b.lookups);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.insertions, b.insertions);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_GT(a.evictions, 0u);
}

// The acceptance gate for the ANN backend: on the Table III workload shape
// (NL2SQL queries issued twice, threshold 0.99) the HNSW-backed cache must
// make exactly the hit/miss decisions the exact flat scan makes.
TEST(SemanticCache, AnnLookupAgreesWithFlatOnTableIIIWorkload) {
  common::Rng rng(20240706);
  data::Nl2SqlWorkloadOptions wopts;
  wopts.num_queries = 60;
  wopts.condition_pool = 6;
  wopts.compound_rate = 0.8;
  auto base = data::GenerateNl2SqlWorkload(wopts, rng);
  std::vector<std::string> stream;
  for (const auto& q : base) stream.push_back(q.ToNaturalLanguage());
  for (const auto& q : base) stream.push_back(q.ToNaturalLanguage());

  auto run = [&](CacheIndexKind kind) {
    SemanticCache::Options options;
    options.similarity_threshold = 0.99;
    options.capacity = 1024;
    options.index = kind;
    options.ann_min_size = 1;  // force the graph path from the first entry
    SemanticCache cache(options);
    std::vector<bool> decisions;
    for (const auto& q : stream) {
      bool hit = cache.Lookup(q).has_value();
      decisions.push_back(hit);
      if (!hit) cache.Insert(q, "sql");
    }
    return std::make_pair(decisions, cache.stats());
  };
  auto [flat_decisions, flat_stats] = run(CacheIndexKind::kFlat);
  auto [ann_decisions, ann_stats] = run(CacheIndexKind::kHnsw);
  EXPECT_EQ(ann_decisions, flat_decisions);
  EXPECT_EQ(ann_stats.hits, flat_stats.hits);
  EXPECT_EQ(ann_stats.insertions, flat_stats.insertions);
  EXPECT_GT(flat_stats.hits, 0u);
}

TEST(SemanticCache, LookupBatchMatchesSequentialLookups) {
  // The batched probe (arena embedding + per-shard grouping) must be
  // semantically identical to calling Lookup() once per query in order —
  // same hits, same saved credit, same stats — with and without int8.
  common::Rng rng(20240706);
  data::Nl2SqlWorkloadOptions wopts;
  wopts.num_queries = 40;
  wopts.condition_pool = 6;
  wopts.compound_rate = 0.8;
  auto base = data::GenerateNl2SqlWorkload(wopts, rng);
  std::vector<std::string> stream;
  for (const auto& q : base) stream.push_back(q.ToNaturalLanguage());

  for (bool quantize : {false, true}) {
    auto make_cache = [&] {
      SemanticCache::Options options;
      options.similarity_threshold = 0.95;
      options.capacity = 256;
      options.num_shards = 4;
      options.quantize = quantize;
      auto cache = std::make_unique<SemanticCache>(options);
      for (size_t i = 0; i + 1 < stream.size(); i += 2) {
        cache->Insert(stream[i], "sql", common::Money::FromDollars(0.002));
      }
      return cache;
    };

    auto sequential = make_cache();
    std::vector<std::optional<SemanticCache::Hit>> seq_hits;
    for (const auto& q : stream) {
      seq_hits.push_back(
          sequential->Lookup(q, common::Money::FromDollars(0.003)));
    }

    auto batched = make_cache();
    std::vector<std::string_view> views(stream.begin(), stream.end());
    std::vector<common::Money> avoided(stream.size(),
                                       common::Money::FromDollars(0.003));
    auto batch_hits = batched->LookupBatch(views, avoided);

    ASSERT_EQ(batch_hits.size(), seq_hits.size());
    size_t hits = 0;
    for (size_t i = 0; i < seq_hits.size(); ++i) {
      ASSERT_EQ(batch_hits[i].has_value(), seq_hits[i].has_value())
          << "quantize=" << quantize << " i=" << i;
      if (!seq_hits[i].has_value()) continue;
      ++hits;
      EXPECT_EQ(batch_hits[i]->query, seq_hits[i]->query);
      EXPECT_EQ(batch_hits[i]->response, seq_hits[i]->response);
      EXPECT_EQ(batch_hits[i]->similarity, seq_hits[i]->similarity);
      EXPECT_EQ(batch_hits[i]->saved, seq_hits[i]->saved);
    }
    EXPECT_GT(hits, 0u) << "quantize=" << quantize;
    auto s1 = sequential->stats();
    auto s2 = batched->stats();
    EXPECT_EQ(s1.lookups, s2.lookups);
    EXPECT_EQ(s1.hits, s2.hits);
    EXPECT_EQ(s1.saved, s2.saved);
  }
}

TEST(CachedLlm, HitAvoidsCostMissPopulates) {
  common::Rng rng(11);
  auto kb = data::KnowledgeBase::Generate(30, rng);
  auto models = llm::CreatePaperModelLadder(&kb, 123);
  SemanticCache cache(SemanticCache::Options{});
  CachedLlm cached(models[2], &cache);

  llm::Prompt p = llm::MakePrompt(
      "qa", data::RenderChainQuestion({"advisor"}, kb.entities()[0]));
  auto first = cached.Complete(p);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->cost.micros(), 0);
  auto second = cached.Complete(p);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cost.micros(), 0);
  EXPECT_EQ(second->text, first->text);
  EXPECT_EQ(cached.cache_hits(), 1u);
}

TEST(SemanticCache, SavingsLedgerCreditsInputAndOutput) {
  // Bugfix regression: a hit replaces the whole bill — the caller's
  // input-side estimate plus the cached response's output tokens at the
  // output price — not just the input half.
  SemanticCache cache(SemanticCache::Options{});
  const std::string response = "SELECT name FROM stadium WHERE year = 2014";
  cache.Insert("stadium concert names in 2014", response,
               common::Money::FromDollars(0.01));
  const common::Money input_side = common::Money::FromDollars(0.02);
  const common::Money output_price = common::Money::FromDollars(0.002);
  auto hit = cache.Lookup("stadium concert names in 2014", input_side,
                          output_price);
  ASSERT_TRUE(hit.has_value());
  const common::Money expected =
      input_side +
      common::Money::FromMicros(
          output_price.micros() *
          static_cast<int64_t>(text::CountTokens(response)) / 1000);
  EXPECT_EQ(hit->saved, expected);
  EXPECT_GT(hit->saved, input_side);  // the output credit is real
  EXPECT_EQ(cache.stats().saved, expected);
  // The two-argument form still credits exactly the caller's estimate, so
  // callers that price the whole bill themselves are unchanged.
  auto input_only = cache.Lookup("stadium concert names in 2014", input_side);
  ASSERT_TRUE(input_only.has_value());
  EXPECT_EQ(input_only->saved, input_side);
}

TEST(CachedLlm, SavingsLedgerCreditsInputAndOutput) {
  common::Rng rng(11);
  auto kb = data::KnowledgeBase::Generate(30, rng);
  auto models = llm::CreatePaperModelLadder(&kb, 123);
  SemanticCache cache(SemanticCache::Options{});
  CachedLlm cached(models[2], &cache);

  llm::Prompt p = llm::MakePrompt(
      "qa", data::RenderChainQuestion({"advisor"}, kb.entities()[0]));
  auto first = cached.Complete(p);
  ASSERT_TRUE(first.ok());
  auto second = cached.Complete(p);
  ASSERT_TRUE(second.ok());
  const llm::ModelSpec& spec = models[2]->spec();
  const common::Money expected =
      common::Money::FromMicros(
          spec.input_price_per_1k.micros() *
          static_cast<int64_t>(p.CountInputTokens()) / 1000) +
      common::Money::FromMicros(
          spec.output_price_per_1k.micros() *
          static_cast<int64_t>(text::CountTokens(first->text)) / 1000);
  EXPECT_EQ(cache.stats().saved, expected);
  EXPECT_GT(expected, common::Money::Zero());
}

TEST(SemanticCache, ChurnedShardsStayBoundedAndCompact) {
  // Bugfix regression for the tombstone leak: eviction used to only flip
  // live=false, so slots (and their payloads) accumulated for process
  // lifetime. Now payloads are released at eviction and the shard compacts
  // past the dead threshold, so memory is O(capacity) under any churn.
  SemanticCache::Options options;
  options.capacity = 8;
  options.compact_min_dead = 4;
  options.policy = EvictionPolicy::kLru;
  SemanticCache cache(options);
  constexpr size_t kInserts = 200;  // 25x capacity of distinct queries
  for (size_t i = 0; i < kInserts; ++i) {
    cache.Insert(
        "churn query " + std::to_string(i) + " topic " + std::to_string(i * 3),
        "answer " + std::to_string(i));
  }
  EXPECT_EQ(cache.Size(), options.capacity);
  EXPECT_EQ(cache.stats().evictions, kInserts - options.capacity);
  // Slots: live share + dead slots up to the compaction threshold.
  const size_t slot_bound =
      options.capacity + std::max(options.compact_min_dead, options.capacity) +
      1;
  EXPECT_LE(cache.TotalSlots(), slot_bound);
  // Payload bytes: a generous per-slot envelope (256-float embedding plus
  // short strings), nowhere near the ~kInserts entries the leak retained.
  EXPECT_LE(cache.RetainedBytes(), slot_bound * 8192);
  // The survivors are still found after all that index rebuilding.
  auto hit = cache.Lookup("churn query 199 topic 597",
                          common::Money::FromDollars(0.01));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->response, "answer 199");
}

TEST(SemanticCache, ChurnStatsAreByteStableAcrossRuns) {
  // Compaction remaps ids and rebuilds indexes mid-stream; the observable
  // behaviour (per-step hit decisions and the final ledger) must remain a
  // pure function of the input stream.
  auto run = [] {
    SemanticCache::Options options;
    options.capacity = 8;
    options.compact_min_dead = 4;
    SemanticCache cache(options);
    std::string log;
    for (size_t i = 0; i < 300; ++i) {
      std::string q = "churn query " + std::to_string(i % 40) + " topic " +
                      std::to_string((i * 7) % 11);
      bool hit = cache.Lookup(q, common::Money::FromDollars(0.01)).has_value();
      if (!hit) cache.Insert(q, "a");
      log += hit ? 'H' : 'M';
    }
    auto s = cache.stats();
    log += " " + std::to_string(s.hits) + "/" + std::to_string(s.evictions) +
           "/" + std::to_string(cache.TotalSlots());
    return log;
  };
  std::string a = run();
  EXPECT_EQ(a, run());
}

TEST(SemanticCache, EvictedNearestNeighbourDoesNotShadowSecond) {
  // Bugfix regression for dead-entry shadowing: when the nearest neighbour
  // of a probe has been evicted, the probe must step past it to the live
  // second-nearest instead of reporting a miss. Exercised on both index
  // kinds — HNSW only mark-removes, so its index can still surface dead ids.
  for (CacheIndexKind kind : {CacheIndexKind::kFlat, CacheIndexKind::kHnsw}) {
    SemanticCache::Options options;
    options.capacity = 2;
    options.policy = EvictionPolicy::kLru;
    options.similarity_threshold = 0.85;
    options.index = kind;
    options.ann_min_size = 1;  // force the graph path from the first entry
    SemanticCache cache(options);
    const std::string nearest =
        "What are the names of stadiums that had concerts in 2014?";
    const std::string second =
        "Show the names of stadiums that had concerts in 2014";
    cache.Insert(nearest, "answer nearest");
    cache.Insert(second, "answer second");
    // Touch `second` so `nearest` becomes the LRU victim...
    ASSERT_TRUE(cache.Lookup(second).has_value());
    // ...then push it out with an unrelated entry.
    cache.Insert("completely different medical topic on insulin", "other");
    EXPECT_EQ(cache.Size(), 2u);
    // The probe's top match is the evicted entry; the live paraphrase right
    // behind it must still hit.
    auto hit = cache.Lookup(nearest, common::Money::FromDollars(0.01));
    ASSERT_TRUE(hit.has_value()) << "index kind " << static_cast<int>(kind);
    EXPECT_EQ(hit->response, "answer second");
  }
}

// ---- prompt store -----------------------------------------------------------------

TEST(PromptStore, SelectsSimilarExamples) {
  PromptStore store(PromptStore::Options{});
  store.Add("stadiums that had concerts in 2014", "SQL-concert-2014");
  store.Add("stadiums that had sports meetings in 2015", "SQL-meeting-2015");
  store.Add("patients with diabetes diagnosis", "SQL-patients");
  auto examples = store.Select("stadiums that had concerts in 2015", 2,
                               PromptStore::Selection::kSimilarity);
  ASSERT_EQ(examples.size(), 2u);
  EXPECT_NE(examples[0].output, "SQL-patients");
}

TEST(PromptStore, UtilityWeightingDemotesFailures) {
  PromptStore store(PromptStore::Options{});
  uint64_t bad = store.Add("stadiums that had concerts in 2014", "BAD");
  uint64_t good = store.Add("stadiums that had concerts in 2015", "GOOD");
  for (int i = 0; i < 20; ++i) {
    store.RecordOutcome(bad, false);
    store.RecordOutcome(good, true);
  }
  auto examples = store.Select("stadiums that had concerts in 2016", 1,
                               PromptStore::Selection::kUtilityWeighted);
  ASSERT_EQ(examples.size(), 1u);
  EXPECT_EQ(examples[0].output, "GOOD");
}

TEST(PromptStore, BudgetedRetentionEvicts) {
  PromptStore::Options options;
  options.capacity = 3;
  PromptStore store(options);
  for (int i = 0; i < 10; ++i) {
    store.Add("historical prompt " + std::to_string(i), "out");
  }
  EXPECT_EQ(store.Size(), 3u);
}

TEST(PromptStore, LastSelectedIdsAlignWithExamples) {
  PromptStore store(PromptStore::Options{});
  store.Add("a question about stadium concerts", "A");
  store.Add("another question about stadium concerts", "B");
  auto examples = store.Select("question about stadium concerts", 2,
                               PromptStore::Selection::kSimilarity);
  EXPECT_EQ(store.last_selected_ids().size(), examples.size());
  for (size_t i = 0; i < examples.size(); ++i) {
    const auto p = store.Get(store.last_selected_ids()[i]);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->output, examples[i].output);
  }
}

}  // namespace
}  // namespace llmdm::optimize
