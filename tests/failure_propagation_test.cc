// Error-propagation tests: when the model endpoint itself fails (network
// blips, rate limits — the realities of hosted LLM APIs the paper's systems
// sit on), every orchestration layer must surface a clean Status, never a
// crash, a partial commit, or a poisoned cache.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/optimize/cascade.h"
#include "core/optimize/decomposition.h"
#include "core/optimize/semantic_cache.h"
#include "core/transform/nl2sql.h"
#include "core/transform/nl2transaction.h"
#include "data/nl2sql_workload.h"
#include "data/txn_workload.h"
#include "llm/simulated.h"
#include "sql/database.h"

namespace llmdm {
namespace {

// A model that fails every `fail_every`-th call with ResourceExhausted (the
// shape of a rate-limit error) and otherwise delegates to an inner model.
class FlakyModel : public llm::LlmModel {
 public:
  FlakyModel(std::shared_ptr<llm::LlmModel> inner, size_t fail_every)
      : inner_(std::move(inner)), fail_every_(fail_every) {}

  const llm::ModelSpec& spec() const override { return inner_->spec(); }

  common::Result<llm::Completion> Complete(const llm::Prompt& prompt) override {
    if (++calls_ % fail_every_ == 0) {
      return common::Status::ResourceExhausted("simulated rate limit");
    }
    return inner_->Complete(prompt);
  }

  size_t calls() const { return calls_; }

 private:
  std::shared_ptr<llm::LlmModel> inner_;
  size_t fail_every_;
  size_t calls_ = 0;
};

class FailurePropagationTest : public ::testing::Test {
 protected:
  FailurePropagationTest() {
    common::Rng rng(1);
    EXPECT_TRUE(db_.ExecuteScript(
                      data::BuildStadiumDatabaseScript(8, {2014, 2015}, rng))
                    .ok());
    inner_ = llm::CreatePaperModelLadder(nullptr, 2)[2];
  }

  sql::Database db_;
  std::shared_ptr<llm::LlmModel> inner_;
};

TEST_F(FailurePropagationTest, CascadeToleratesPartialSampleFailures) {
  auto flaky = std::make_shared<FlakyModel>(inner_, 2);
  // Two-rung ladder; the flaky first rung loses every 2nd consistency
  // sample. The cascade keeps the surviving votes and still answers,
  // recording the per-sample losses in the trace.
  optimize::LlmCascade cascade({flaky, inner_},
                               optimize::LlmCascade::Options{});
  auto r = cascade.Run(llm::MakePrompt("freeform", "anything"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->answer.empty());
  size_t samples_failed = 0;
  for (const auto& step : r->trace) samples_failed += step.samples_failed;
  EXPECT_GT(samples_failed, 0u);
}

TEST_F(FailurePropagationTest, CascadeSurfacesModelErrors) {
  // When every rung is fully dead there is nothing to degrade to: the last
  // model error comes back as a clean Status.
  auto dead = std::make_shared<FlakyModel>(inner_, 1);
  optimize::LlmCascade cascade({dead, dead}, optimize::LlmCascade::Options{});
  auto r = cascade.Run(llm::MakePrompt("freeform", "anything"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kResourceExhausted);
}

TEST_F(FailurePropagationTest, BatchOptimizerSurfacesModelErrors) {
  auto flaky = std::make_shared<FlakyModel>(inner_, 3);
  optimize::QueryBatchOptimizer optimizer(
      optimize::QueryBatchOptimizer::Options{});
  std::vector<std::string> questions;
  for (const auto& q : data::PaperQ1ToQ5()) {
    questions.push_back(q.ToNaturalLanguage());
  }
  auto plan = optimizer.Plan(questions);
  auto exec = optimizer.Execute(plan, *flaky);
  EXPECT_FALSE(exec.ok());
}

TEST_F(FailurePropagationTest, CachedLlmDoesNotCacheFailures) {
  optimize::SemanticCache cache(optimize::SemanticCache::Options{});
  auto flaky = std::make_shared<FlakyModel>(inner_, 1);  // always fails
  optimize::CachedLlm cached(flaky, &cache);
  llm::Prompt p = llm::MakePrompt("nl2sql",
                                  "What are the names of stadiums that had "
                                  "concerts in 2014?");
  EXPECT_FALSE(cached.Complete(p).ok());
  EXPECT_EQ(cache.Size(), 0u);  // the failure must not be cached
  // Once the model recovers, the query succeeds and populates the cache.
  optimize::CachedLlm healthy(inner_, &cache);
  EXPECT_TRUE(healthy.Complete(p).ok());
  EXPECT_EQ(cache.Size(), 1u);
}

TEST_F(FailurePropagationTest, Nl2TxnFailureLeavesBalancesUntouched) {
  sql::Database billing;
  ASSERT_TRUE(billing
                  .ExecuteScript(data::BuildAccountsDatabaseScript(
                      {"A", "B"}, 1000))
                  .ok());
  auto flaky = std::make_shared<FlakyModel>(inner_, 1);
  transform::Nl2TransactionEngine engine(
      flaky, transform::Nl2TransactionEngine::Options{});
  auto r = engine.Run("Transfer 100 dollars from A to B.", billing);
  EXPECT_FALSE(r.ok());
  auto total = billing.Query("SELECT SUM(balance) FROM accounts");
  EXPECT_EQ(total->at(0, 0), data::Value::Int(2000));
}

TEST_F(FailurePropagationTest, Nl2SqlEngineSurfacesModelErrors) {
  auto flaky = std::make_shared<FlakyModel>(inner_, 1);
  transform::Nl2SqlEngine engine(flaky, nullptr,
                                 transform::Nl2SqlEngine::Options{});
  auto r = engine.Translate(
      "What are the names of stadiums that had concerts in 2014?", db_);
  EXPECT_FALSE(r.ok());
}

TEST(Logging, ThresholdSuppressesBelowLevel) {
  common::LogLevel before = common::GetLogLevel();
  common::SetLogLevel(common::LogLevel::kError);
  EXPECT_EQ(common::GetLogLevel(), common::LogLevel::kError);
  LLMDM_LOG(Info, "suppressed %d", 1);   // must not crash; goes nowhere
  LLMDM_LOG(Error, "emitted %s", "ok");  // stderr; also must not crash
  common::SetLogLevel(before);
}

}  // namespace
}  // namespace llmdm
