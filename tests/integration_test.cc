#include <gtest/gtest.h>

#include "common/string_util.h"
#include "core/integration/cleaning.h"
#include "core/integration/column_annotation.h"
#include "core/integration/entity_resolution.h"
#include "core/integration/table_understanding.h"
#include "data/tabular_gen.h"
#include "llm/simulated.h"
#include "text/tokenizer.h"

namespace llmdm::integration {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : rng_(61) {
    models_ = llm::CreatePaperModelLadder(nullptr, 616);
  }

  common::Rng rng_;
  std::vector<std::shared_ptr<llm::LlmModel>> models_;
};

// ---- entity resolution ---------------------------------------------------------

TEST_F(IntegrationTest, ErClearPairsResolveCorrectly) {
  EntityResolver resolver(models_[2], EntityResolver::Options{});
  auto examples = data::GenerateErWorkload(6, 0.3, rng_);
  auto same = resolver.Match("Acme Laptop Model 450", "Acme Laptop Model 450",
                             examples);
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(*same);
  auto different = resolver.Match("Acme Laptop Model 450",
                                  "Umbrella Camera Model 900", examples);
  ASSERT_TRUE(different.ok());
  EXPECT_FALSE(*different);
}

TEST_F(IntegrationTest, ErBlockingSkipsDisjointPairs) {
  EntityResolver resolver(models_[2], EntityResolver::Options{4, true});
  llm::UsageMeter meter;
  auto r = resolver.Match("alpha beta", "gamma delta", {}, &meter);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  EXPECT_EQ(meter.calls(), 0u);  // blocked before reaching the model
}

TEST_F(IntegrationTest, ErQualityOrderedByModelSize) {
  auto examples = data::GenerateErWorkload(8, 0.5, rng_);
  auto workload = data::GenerateErWorkload(120, 0.5, rng_);
  auto f1 = [&](size_t model_index) {
    EntityResolver resolver(models_[model_index],
                            EntityResolver::Options{});
    auto metrics = resolver.Evaluate(workload, examples);
    EXPECT_TRUE(metrics.ok());
    return metrics->F1();
  };
  double small = f1(0);
  double large = f1(2);
  EXPECT_GT(large, small);
  EXPECT_GT(large, 0.8);
}

TEST(MatchMetrics, Arithmetic) {
  MatchMetrics m;
  m.true_positives = 8;
  m.false_positives = 2;
  m.false_negatives = 4;
  m.true_negatives = 6;
  EXPECT_DOUBLE_EQ(m.Precision(), 0.8);
  EXPECT_NEAR(m.Recall(), 8.0 / 12.0, 1e-12);
  EXPECT_NEAR(m.F1(), 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0), 1e-12);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 0.7);
}

// ---- schema matching -----------------------------------------------------------

TEST_F(IntegrationTest, SchemaMatcherFindsCorrespondences) {
  data::Table left("patients_a",
                   data::Schema({{"patient_name", data::ColumnType::kText, true},
                                 {"age_years", data::ColumnType::kInt64, true}}));
  left.AppendRowUnchecked({data::Value::Text("Alice Adams"), data::Value::Int(30)});
  left.AppendRowUnchecked({data::Value::Text("Bob Baker"), data::Value::Int(25)});
  data::Table right("patients_b",
                    data::Schema({{"name", data::ColumnType::kText, true},
                                  {"age", data::ColumnType::kInt64, true},
                                  {"city", data::ColumnType::kText, true}}));
  right.AppendRowUnchecked({data::Value::Text("Alice Adams"),
                            data::Value::Int(31), data::Value::Text("Boston")});
  right.AppendRowUnchecked({data::Value::Text("Bob Baker"),
                            data::Value::Int(26), data::Value::Text("Tokyo")});

  SchemaMatcher matcher(models_[2]);
  auto matches = matcher.MatchSchemas(left, right);
  ASSERT_TRUE(matches.ok());
  // patient_name <-> name must be among the matches (shared values).
  bool found_name = false;
  for (const auto& m : *matches) {
    if (m.left_column == "patient_name") {
      EXPECT_EQ(m.right_column, "name");
      found_name = true;
    }
    // 1:1 constraint.
    EXPECT_LE(matches->size(), 2u);
  }
  EXPECT_TRUE(found_name);
}

// ---- column type annotation ----------------------------------------------------

TEST_F(IntegrationTest, CtaPaperExample) {
  ColumnTypeAnnotator annotator(models_[2],
                                ColumnTypeAnnotator::Options{});
  std::vector<data::CtaExample> examples{
      {{"USA", "UK", "France"}, "country"},
      {{"Michael Jordan", "Serena Williams"}, "person"},
  };
  auto label = annotator.Annotate({"Basketball", "Badminton", "Table Tennis"},
                                  examples);
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(*label, "sports");
}

TEST_F(IntegrationTest, CtaAccuracyOrderedByModelSize) {
  common::Rng rng(62);
  auto examples = data::GenerateCtaWorkload(6, rng);
  auto workload = data::GenerateCtaWorkload(120, rng);
  ColumnTypeAnnotator small(models_[0], ColumnTypeAnnotator::Options{});
  ColumnTypeAnnotator large(models_[2], ColumnTypeAnnotator::Options{});
  auto acc_small = small.Evaluate(workload, examples);
  auto acc_large = large.Evaluate(workload, examples);
  ASSERT_TRUE(acc_small.ok() && acc_large.ok());
  EXPECT_GT(*acc_large, *acc_small);
  EXPECT_GT(*acc_large, 0.8);
}

// ---- cleaning -------------------------------------------------------------------

TEST_F(IntegrationTest, CleanerDetectsAllThreeIssueKinds) {
  data::Table t("mixed",
                data::Schema({{"visit", data::ColumnType::kText, true},
                              {"score", data::ColumnType::kInt64, true}}));
  for (int i = 0; i < 10; ++i) {
    t.AppendRowUnchecked({data::Value::Text(common::StrFormat(
                              "%d/%d/2023", (i % 9) + 1, (i % 27) + 1)),
                          data::Value::Int(50 + i)});
  }
  t.AppendRowUnchecked({data::Value::Text("Aug 14 2023"),  // format breaker
                        data::Value::Int(54)});
  t.AppendRowUnchecked({data::Value::Null(),               // missing
                        data::Value::Int(100000)});        // outlier
  DataCleaner cleaner(models_[2], DataCleaner::Options{});
  auto issues = cleaner.Detect(t);
  bool has_null = false, has_pattern = false, has_outlier = false;
  for (const auto& issue : issues) {
    has_null |= issue.kind == QualityIssue::Kind::kNull;
    has_pattern |= issue.kind == QualityIssue::Kind::kPatternMismatch;
    has_outlier |= issue.kind == QualityIssue::Kind::kNumericOutlier;
  }
  EXPECT_TRUE(has_null);
  EXPECT_TRUE(has_pattern);
  EXPECT_TRUE(has_outlier);
}

TEST_F(IntegrationTest, CleanerRepairsDateFormats) {
  data::Table t("visits",
                data::Schema({{"visit", data::ColumnType::kText, true}}));
  for (int i = 1; i <= 8; ++i) {
    t.AppendRowUnchecked(
        {data::Value::Text(common::StrFormat("%d/%d/2023", i, i + 2))});
  }
  t.AppendRowUnchecked({data::Value::Text("Aug 14 2023")});
  DataCleaner cleaner(models_[2], DataCleaner::Options{});
  auto report = cleaner.Repair(&t);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->values_reformatted, 1u);
  EXPECT_EQ(t.at(8, 0).AsText(), "8/14/2023");
}

// ---- table understanding ---------------------------------------------------------

class TableUnderstandingTest : public ::testing::Test {
 protected:
  TableUnderstandingTest() {
    models_ = llm::CreatePaperModelLadder(nullptr, 626);
    EXPECT_TRUE(db_.Execute("CREATE TABLE employee (name TEXT, salary INT)")
                    .ok());
    EXPECT_TRUE(db_.Execute("INSERT INTO employee VALUES ('a', 400), "
                            "('b', 600), ('c', 500)")
                    .ok());
  }

  std::vector<std::shared_ptr<llm::LlmModel>> models_;
  sql::Database db_;
};

TEST_F(TableUnderstandingTest, SerializationsCarrySemantics) {
  TableUnderstanding tu(models_[2]);
  const data::Table& t = **db_.catalog().GetTable("employee");
  std::string row = tu.SerializeRow(t, 0);
  EXPECT_NE(row.find("employee"), std::string::npos);
  EXPECT_NE(row.find("salary 400"), std::string::npos);
  std::string col = tu.SerializeColumn(t, 1);
  EXPECT_NE(col.find("salary"), std::string::npos);
  EXPECT_NE(col.find("(INT)"), std::string::npos);
}

TEST_F(TableUnderstandingTest, PaperAvgSalarySentence) {
  TableUnderstanding tu(models_[2]);
  auto sentence =
      tu.DescribeAggregate(db_, "SELECT AVG(salary) FROM employee");
  ASSERT_TRUE(sentence.ok());
  EXPECT_NE(sentence->find("average"), std::string::npos);
  EXPECT_NE(sentence->find("500"), std::string::npos);
  EXPECT_NE(sentence->find("employee"), std::string::npos);
}

TEST_F(TableUnderstandingTest, DescribeTableStatisticsBundle) {
  TableUnderstanding tu(models_[2]);
  auto sentences = tu.DescribeTableStatistics(db_, "employee");
  ASSERT_TRUE(sentences.ok());
  EXPECT_EQ(sentences->size(), 2u);  // COUNT(*) + AVG(salary)
}

TEST_F(TableUnderstandingTest, SplitRespectsTokenBudget) {
  common::Rng rng(63);
  data::PatientDataOptions options;
  options.num_rows = 80;
  data::Table patients = data::GeneratePatientTable(options, rng);
  TableUnderstanding tu(models_[2]);
  auto chunks = tu.SplitForPlm(patients, 200);
  EXPECT_GT(chunks.size(), 1u);
  size_t total = 0;
  for (const auto& chunk : chunks) {
    total += chunk.NumRows();
    size_t tokens = 0;
    for (size_t r = 0; r < chunk.NumRows(); ++r) {
      tokens += text::CountTokens(tu.SerializeRow(chunk, r));
    }
    EXPECT_LE(tokens, 200u);
  }
  EXPECT_EQ(total, patients.NumRows());
}

TEST_F(TableUnderstandingTest, RepresentativeRowsAreDiverse) {
  // Two clusters of rows: representatives must cover both.
  data::Table t("clustered",
                data::Schema({{"kind", data::ColumnType::kText, true},
                              {"v", data::ColumnType::kInt64, true}}));
  for (int i = 0; i < 10; ++i) {
    t.AppendRowUnchecked(
        {data::Value::Text("alpha cluster entry"), data::Value::Int(i)});
  }
  for (int i = 0; i < 10; ++i) {
    t.AppendRowUnchecked({data::Value::Text("totally different beta record"),
                          data::Value::Int(1000 + i)});
  }
  TableUnderstanding tu(models_[2]);
  auto reps = tu.SelectRepresentativeRows(t, 2);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_LT(reps[0], 10u);   // one from the alpha cluster
  EXPECT_GE(reps[1], 10u);   // one from the beta cluster
}

}  // namespace
}  // namespace llmdm::integration
