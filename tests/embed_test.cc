#include <gtest/gtest.h>

#include "common/hash.h"
#include "embed/embedder.h"
#include "text/tokenizer.h"

namespace llmdm::embed {
namespace {

TEST(Tokenizer, SplitsWordsAndPunct) {
  text::Tokenizer tok;
  auto pieces = tok.Tokenize("SELECT name, id FROM t;");
  EXPECT_EQ(pieces, (std::vector<std::string>{"SELECT", "name", ",", "id",
                                              "FROM", "t", ";"}));
}

TEST(Tokenizer, ChunksLongWords) {
  text::Tokenizer tok;
  auto pieces = tok.Tokenize("internationalization");
  EXPECT_GT(pieces.size(), 2u);
  std::string joined;
  for (const auto& p : pieces) joined += p;
  EXPECT_EQ(joined, "internationalization");
}

TEST(Tokenizer, CountMatchesTokenize) {
  text::Tokenizer tok;
  const char* samples[] = {
      "", "hello world", "a,b,,c", "the quick brown fox jumps over 42 dogs!",
      "SELECT COUNT(*) FROM stadium WHERE capacity > 50000",
  };
  for (const char* s : samples) {
    EXPECT_EQ(tok.CountTokens(s), tok.Tokenize(s).size()) << s;
  }
}

TEST(Tokenizer, CharNgrams) {
  auto grams = text::CharNgrams("ab", 3);
  // "^ab$" -> {"^ab", "ab$"}
  EXPECT_EQ(grams, (std::vector<std::string>{"^ab", "ab$"}));
}

// The seed implementation of Embed(), kept verbatim as a reference: word
// features via materialized lowercased tokens, n-gram features via
// materialized CharNgrams strings. EmbedInto() must reproduce its output
// bit for bit (same features, same accumulation order) while allocating
// none of those temporaries.
Vector ReferenceEmbed(std::string_view text,
                      const HashingEmbedder::Options& options) {
  Vector v(options.dimension, 0.0f);
  auto add_feature = [&](std::string_view feature, float weight) {
    uint64_t h = common::Fnv1a(feature, options.seed);
    size_t bucket = h % options.dimension;
    float sign = ((h >> 61) & 1) ? 1.0f : -1.0f;
    v[bucket] += sign * weight;
  };
  text::Tokenizer::Options tok_options;
  tok_options.lowercase = true;
  text::Tokenizer tokenizer(tok_options);
  for (const std::string& token : tokenizer.Tokenize(text)) {
    add_feature("w:" + token, options.word_weight);
  }
  for (size_t n : {3u, 4u}) {
    for (const std::string& gram : text::CharNgrams(text, n)) {
      add_feature("g:" + gram, 1.0f);
    }
  }
  L2Normalize(&v);
  return v;
}

TEST(Embedder, EmbedIntoBitIdenticalToReference) {
  const char* samples[] = {
      "",
      "a",
      "ab",
      "hello world",
      "MiXeD CaSe QuErY with PUNCTUATION!?; and_underscores",
      "internationalization of disproportionately long tokens",
      "SELECT COUNT(*) FROM stadium WHERE capacity > 50000;",
      "What are the names of stadiums that had concerts in 2014?",
      "  leading and trailing whitespace   ",
      "tabs\tand\nnewlines\r\nmixed",
      "numbers 1234567890123 and s1mb0l1c_w0rds",
  };
  for (auto& options :
       {HashingEmbedder::Options{}, HashingEmbedder::Options{64, 1.5f, 99}}) {
    HashingEmbedder e(options);
    for (const char* s : samples) {
      Vector expected = ReferenceEmbed(s, options);
      Vector via_embed = e.Embed(s);
      Vector reused;
      e.EmbedInto(s, &reused);
      EXPECT_EQ(via_embed, expected) << s;   // exact float equality
      EXPECT_EQ(reused, expected) << s;
      // The buffer really is reused: embedding again into the same vector
      // (now non-empty, wrong values) must fully overwrite it.
      e.EmbedInto("something else entirely", &reused);
      e.EmbedInto(s, &reused);
      EXPECT_EQ(reused, expected) << s;
    }
  }
}

TEST(Embedder, DeterministicAndNormalized) {
  HashingEmbedder e;
  Vector a = e.Embed("hello world");
  Vector b = e.Embed("hello world");
  EXPECT_EQ(a, b);
  float norm = 0;
  for (float x : a) norm += x * x;
  EXPECT_NEAR(norm, 1.0f, 1e-4f);
}

TEST(Embedder, SelfSimilarityIsOne) {
  HashingEmbedder e;
  EXPECT_NEAR(e.Similarity("some query text", "some query text"), 1.0f, 1e-5f);
}

TEST(Embedder, ParaphraseCloserThanUnrelated) {
  HashingEmbedder e;
  std::string base = "Show the names of stadiums that had concerts in 2014";
  std::string paraphrase =
      "What are the names of stadiums that had concerts in 2014?";
  std::string unrelated = "The patient was prescribed antibiotics for fever";
  EXPECT_GT(e.Similarity(base, paraphrase), 0.75f);
  EXPECT_LT(e.Similarity(base, unrelated), 0.35f);
  EXPECT_GT(e.Similarity(base, paraphrase), e.Similarity(base, unrelated));
}

TEST(Embedder, DifferentSeedsDifferentSpaces) {
  HashingEmbedder::Options o1, o2;
  o2.seed = 12345;
  HashingEmbedder e1(o1), e2(o2);
  Vector a = e1.Embed("query");
  Vector b = e2.Embed("query");
  EXPECT_LT(CosineSimilarity(a, b), 0.9f);
}

TEST(Distances, BasicIdentities) {
  Vector a{1, 0, 0}, b{0, 1, 0};
  EXPECT_FLOAT_EQ(CosineSimilarity(a, a), 1.0f);
  EXPECT_FLOAT_EQ(CosineSimilarity(a, b), 0.0f);
  EXPECT_FLOAT_EQ(L2DistanceSquared(a, b), 2.0f);
  EXPECT_FLOAT_EQ(DotProduct(a, b), 0.0f);
  Vector z{0, 0, 0};
  EXPECT_FLOAT_EQ(CosineSimilarity(a, z), 0.0f);
}

TEST(Distances, Normalize) {
  Vector v{3, 4};
  L2Normalize(&v);
  EXPECT_FLOAT_EQ(v[0], 0.6f);
  EXPECT_FLOAT_EQ(v[1], 0.8f);
  Vector z{0, 0};
  L2Normalize(&z);  // must not divide by zero
  EXPECT_FLOAT_EQ(z[0], 0.0f);
}

}  // namespace
}  // namespace llmdm::embed
