#include <gtest/gtest.h>

#include "core/validate/validators.h"
#include "data/nl2sql_workload.h"
#include "data/qa_workload.h"
#include "llm/simulated.h"

namespace llmdm::validate {
namespace {

class ValidateTest : public ::testing::Test {
 protected:
  ValidateTest() {
    common::Rng rng(91);
    EXPECT_TRUE(
        db_.ExecuteScript(data::BuildStadiumDatabaseScript(8, {2014, 2015}, rng))
            .ok());
    kb_ = data::KnowledgeBase::Generate(40, rng);
    models_ = llm::CreatePaperModelLadder(&kb_, 919);
  }

  sql::Database db_;
  data::KnowledgeBase kb_;
  std::vector<std::shared_ptr<llm::LlmModel>> models_;
};

TEST_F(ValidateTest, SqlSyntaxValidator) {
  EXPECT_TRUE(SqlValidator::ValidateSyntax("SELECT name FROM stadium").accepted);
  auto bad = SqlValidator::ValidateSyntax("SELEC name FROM stadium");
  EXPECT_FALSE(bad.accepted);
  EXPECT_FALSE(bad.reason.empty());
}

TEST_F(ValidateTest, SqlExecutionValidator) {
  EXPECT_TRUE(
      SqlValidator::ValidateExecutes("SELECT name FROM stadium", db_).accepted);
  // Parses but references a missing table: execution catches it.
  EXPECT_TRUE(SqlValidator::ValidateSyntax("SELECT x FROM missing").accepted);
  EXPECT_FALSE(
      SqlValidator::ValidateExecutes("SELECT x FROM missing", db_).accepted);
}

TEST_F(ValidateTest, NonEmptyResultValidator) {
  EXPECT_TRUE(SqlValidator::ValidateNonEmptyResult("SELECT name FROM stadium",
                                                   db_)
                  .accepted);
  auto empty = SqlValidator::ValidateNonEmptyResult(
      "SELECT name FROM stadium WHERE capacity < 0", db_);
  EXPECT_FALSE(empty.accepted);
  EXPECT_GT(empty.score, 0.0);  // soft failure: executed fine
}

TEST_F(ValidateTest, RowSchemaConformance) {
  data::Schema schema({{"age", data::ColumnType::kInt64, true},
                       {"name", data::ColumnType::kText, true},
                       {"smoker", data::ColumnType::kBool, true}});
  EXPECT_TRUE(
      ValidateRowAgainstSchema("age is 30; name is alice; smoker is true",
                               schema)
          .accepted);
  EXPECT_FALSE(
      ValidateRowAgainstSchema("age is thirty; name is alice", schema)
          .accepted);
  EXPECT_FALSE(ValidateRowAgainstSchema("height is 180", schema).accepted);
  EXPECT_FALSE(ValidateRowAgainstSchema("gibberish", schema).accepted);
  // Partial coverage is accepted with a lower score.
  auto partial = ValidateRowAgainstSchema("age is 30", schema);
  EXPECT_TRUE(partial.accepted);
  EXPECT_LT(partial.score, 1.0);
}

TEST_F(ValidateTest, SelfConsistencySeparatesEasyFromHard) {
  SelfConsistencyValidator validator(5, 0.8);
  // Easy 1-hop questions: the big model agrees with itself.
  llm::Prompt easy = llm::MakePrompt(
      "qa", data::RenderChainQuestion({"advisor"}, kb_.entities()[0]));
  auto easy_verdict = validator.Validate(*models_[2], easy);
  ASSERT_TRUE(easy_verdict.ok());
  EXPECT_TRUE(easy_verdict->accepted);
  // Hard 3-hop question on the small model: samples disagree.
  size_t rejected = 0;
  for (size_t i = 0; i < 10; ++i) {
    llm::Prompt hard = llm::MakePrompt(
        "qa", data::RenderChainQuestion({"mentor", "manager", "advisor"},
                                        kb_.entities()[i]));
    auto verdict = validator.Validate(*models_[0], hard);
    ASSERT_TRUE(verdict.ok());
    if (!verdict->accepted) ++rejected;
  }
  EXPECT_GT(rejected, 5u);
}

TEST_F(ValidateTest, CrowdMajorityTracksTruth) {
  CrowdValidator crowd(7, 0.8, 17);
  int right = 0;
  for (int i = 0; i < 100; ++i) {
    bool truth = i % 2 == 0;
    Verdict v = crowd.Judge(truth);
    if (v.accepted == truth) ++right;
  }
  EXPECT_GT(right, 85);  // 7 workers at 80% -> majority ~96% right
}

TEST_F(ValidateTest, CrowdQuorumBeatsSingleWorker) {
  CrowdValidator single(1, 0.7, 18);
  CrowdValidator quorum(9, 0.7, 18);
  int single_right = 0, quorum_right = 0;
  for (int i = 0; i < 300; ++i) {
    bool truth = i % 2 == 0;
    if (single.Judge(truth).accepted == truth) ++single_right;
    if (quorum.Judge(truth).accepted == truth) ++quorum_right;
  }
  EXPECT_GT(quorum_right, single_right);
}

TEST_F(ValidateTest, AttributionFlagsLoadBearingExample) {
  // tabular_predict is 3-NN over the examples: with two flu neighbours the
  // majority is "flu"; dropping one flu example flips the 3-NN majority to
  // "healthy", while dropping a far-away healthy example changes nothing.
  llm::Prompt p = llm::MakePrompt("tabular_predict", "temp is 39.6");
  p.examples.push_back({"temp is 39.5", "flu"});      // decisive
  p.examples.push_back({"temp is 39.4", "flu"});      // decisive
  p.examples.push_back({"temp is 36.5", "healthy"});
  p.examples.push_back({"temp is 36.6", "healthy"});
  auto attributions = AttributeExamples(*models_[2], p);
  ASSERT_TRUE(attributions.ok());
  ASSERT_EQ(attributions->size(), 4u);
  EXPECT_TRUE((*attributions)[0].answer_changed);
  EXPECT_FALSE((*attributions)[2].answer_changed);
  EXPECT_GT((*attributions)[0].importance, (*attributions)[2].importance);
}

TEST_F(ValidateTest, ValidationCatchesBadGeneratedSql) {
  // End-to-end: run the mid model over a workload; count how many wrong
  // answers the execute-validator screens out vs lets through.
  common::Rng rng(92);
  data::Nl2SqlWorkloadOptions options;
  options.num_queries = 40;
  auto workload = data::GenerateNl2SqlWorkload(options, rng);
  size_t caught = 0, produced_invalid = 0;
  for (const auto& q : workload) {
    auto c = models_[0]->Complete(
        llm::MakePrompt("nl2sql", q.ToNaturalLanguage()));
    ASSERT_TRUE(c.ok());
    Verdict v = SqlValidator::ValidateExecutes(c->text, db_);
    if (!v.accepted) {
      ++caught;
    }
    if (!SqlValidator::ValidateSyntax(c->text).accepted) ++produced_invalid;
  }
  // The small model must have produced some syntactically broken SQL, and
  // the validator must catch every one of those.
  EXPECT_GT(produced_invalid, 0u);
  EXPECT_GE(caught, produced_invalid);
}

}  // namespace
}  // namespace llmdm::validate
