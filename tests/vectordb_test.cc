#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/rng.h"
#include "vectordb/flat_index.h"
#include "vectordb/hnsw_index.h"
#include "vectordb/ivf_index.h"
#include "vectordb/vector_store.h"

namespace llmdm::vectordb {
namespace {

Vector RandomUnitVector(common::Rng& rng, size_t dim) {
  Vector v(dim);
  for (float& x : v) x = static_cast<float>(rng.Normal());
  embed::L2Normalize(&v);
  return v;
}

// Creates `n` random vectors keyed 0..n-1.
std::vector<Vector> MakeDataset(size_t n, size_t dim, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Vector> out;
  for (size_t i = 0; i < n; ++i) out.push_back(RandomUnitVector(rng, dim));
  return out;
}

// ---- shared conformance suite over all three index types -----------------

enum class IndexKind { kFlat, kIvf, kHnsw };

std::unique_ptr<VectorIndex> MakeIndex(IndexKind kind) {
  switch (kind) {
    case IndexKind::kFlat:
      return std::make_unique<FlatIndex>();
    case IndexKind::kIvf: {
      IvfIndex::Options o;
      o.nlist = 8;
      o.nprobe = 8;  // probe everything: exact for conformance checks
      return std::make_unique<IvfIndex>(o);
    }
    case IndexKind::kHnsw:
      return std::make_unique<HnswIndex>();
  }
  return nullptr;
}

class IndexConformanceTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(IndexConformanceTest, AddSearchRemove) {
  auto index = MakeIndex(GetParam());
  auto data = MakeDataset(50, 32, 1);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index->Add(i, data[i]).ok());
  }
  EXPECT_EQ(index->Size(), 50u);
  EXPECT_TRUE(index->Contains(7));
  EXPECT_FALSE(index->Contains(999));

  // The exact vector must be its own nearest neighbour.
  auto results = index->Search(data[7], 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 7u);
  EXPECT_NEAR(results[0].score, 1.0f, 1e-4f);

  ASSERT_TRUE(index->Remove(7).ok());
  EXPECT_FALSE(index->Contains(7));
  EXPECT_EQ(index->Size(), 49u);
  results = index->Search(data[7], 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NE(results[0].id, 7u);

  EXPECT_FALSE(index->Remove(7).ok());  // already gone
}

TEST_P(IndexConformanceTest, EmptyIndexReturnsNothing) {
  auto index = MakeIndex(GetParam());
  EXPECT_TRUE(index->Search(Vector{1.0f, 0.0f}, 5).empty());
}

TEST_P(IndexConformanceTest, KLargerThanSize) {
  auto index = MakeIndex(GetParam());
  auto data = MakeDataset(5, 16, 2);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index->Add(i, data[i]).ok());
  }
  auto results = index->Search(data[0], 50);
  EXPECT_EQ(results.size(), 5u);
}

TEST_P(IndexConformanceTest, ResultsSortedByScore) {
  auto index = MakeIndex(GetParam());
  auto data = MakeDataset(100, 32, 3);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index->Add(i, data[i]).ok());
  }
  auto results = index->Search(data[0], 10);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].score, results[i].score);
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, IndexConformanceTest,
                         ::testing::Values(IndexKind::kFlat, IndexKind::kIvf,
                                           IndexKind::kHnsw),
                         [](const auto& info) {
                           switch (info.param) {
                             case IndexKind::kFlat:
                               return "Flat";
                             case IndexKind::kIvf:
                               return "Ivf";
                             case IndexKind::kHnsw:
                               return "Hnsw";
                           }
                           return "?";
                         });

// ---- recall of the approximate indexes vs the flat oracle ---------------

double RecallAt10(VectorIndex& approx, FlatIndex& exact,
                  const std::vector<Vector>& queries) {
  size_t hits = 0, total = 0;
  for (const Vector& q : queries) {
    auto truth = exact.Search(q, 10);
    auto got = approx.Search(q, 10);
    std::set<uint64_t> truth_ids;
    for (const auto& r : truth) truth_ids.insert(r.id);
    for (const auto& r : got) hits += truth_ids.count(r.id);
    total += truth.size();
  }
  return static_cast<double>(hits) / static_cast<double>(total);
}

TEST(IvfIndex, RecallReasonableAndImprovesWithNprobe) {
  auto data = MakeDataset(2000, 32, 11);
  FlatIndex exact;
  IvfIndex::Options low_opts;
  low_opts.nlist = 32;
  low_opts.nprobe = 1;
  IvfIndex low(low_opts);
  IvfIndex::Options high_opts = low_opts;
  high_opts.nprobe = 16;
  IvfIndex high(high_opts);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(exact.Add(i, data[i]).ok());
    ASSERT_TRUE(low.Add(i, data[i]).ok());
    ASSERT_TRUE(high.Add(i, data[i]).ok());
  }
  auto queries = MakeDataset(30, 32, 99);
  double r_low = RecallAt10(low, exact, queries);
  double r_high = RecallAt10(high, exact, queries);
  EXPECT_GT(r_high, r_low);
  EXPECT_GT(r_high, 0.85);
}

TEST(HnswIndex, HighRecall) {
  auto data = MakeDataset(2000, 32, 13);
  FlatIndex exact;
  HnswIndex hnsw;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(exact.Add(i, data[i]).ok());
    ASSERT_TRUE(hnsw.Add(i, data[i]).ok());
  }
  auto queries = MakeDataset(30, 32, 98);
  EXPECT_GT(RecallAt10(hnsw, exact, queries), 0.9);
}

TEST(HnswIndex, ReplaceExistingId) {
  HnswIndex index;
  Vector a{1.0f, 0.0f};
  Vector b{0.0f, 1.0f};
  ASSERT_TRUE(index.Add(1, a).ok());
  ASSERT_TRUE(index.Add(1, b).ok());  // replace
  EXPECT_EQ(index.Size(), 1u);
  auto res = index.Search(b, 1);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_NEAR(res[0].score, 1.0f, 1e-5f);
}

// ---- hybrid store ----------------------------------------------------------

class VectorStoreTest : public ::testing::Test {
 protected:
  VectorStoreTest() : store_(std::make_unique<FlatIndex>()) {
    common::Rng rng(5);
    for (uint64_t i = 0; i < 200; ++i) {
      StoredItem item;
      item.id = i;
      item.vector = RandomUnitVector(rng, 32);
      item.payload = "item " + std::to_string(i);
      item.attributes["category"] =
          data::Value::Text(i % 4 == 0 ? "table" : "text");
      item.attributes["year"] = data::Value::Int(2014 + int64_t(i % 3));
      EXPECT_TRUE(store_.Insert(std::move(item)).ok());
    }
  }

  VectorStore store_;
};

TEST_F(VectorStoreTest, GetAndRemove) {
  ASSERT_NE(store_.Get(5), nullptr);
  EXPECT_EQ(store_.Get(5)->payload, "item 5");
  EXPECT_TRUE(store_.Remove(5).ok());
  EXPECT_EQ(store_.Get(5), nullptr);
  EXPECT_FALSE(store_.Remove(5).ok());
}

TEST_F(VectorStoreTest, HybridStrategiesAgreeOnResults) {
  common::Rng rng(77);
  auto predicate = [](const std::map<std::string, data::Value>& attrs) {
    return attrs.at("category").AsText() == "table";
  };
  for (int trial = 0; trial < 5; ++trial) {
    Vector q = RandomUnitVector(rng, 32);
    auto pre = store_.HybridSearch(q, 5, predicate,
                                   VectorStore::FilterStrategy::kPreFilter);
    auto post = store_.HybridSearch(q, 5, predicate,
                                    VectorStore::FilterStrategy::kPostFilter);
    ASSERT_EQ(pre.size(), post.size());
    for (size_t i = 0; i < pre.size(); ++i) {
      EXPECT_EQ(pre[i].id, post[i].id);
    }
    for (const auto& r : pre) {
      EXPECT_EQ(store_.Get(r.id)->attributes.at("category").AsText(), "table");
    }
  }
}

TEST_F(VectorStoreTest, AdaptiveChoosesPreFilterWhenSelective) {
  common::Rng rng(78);
  Vector q = RandomUnitVector(rng, 32);
  // Very selective predicate: only one id passes.
  auto predicate = [](const std::map<std::string, data::Value>& attrs) {
    return attrs.at("year").AsInt() == 2014 &&
           attrs.at("category").AsText() == "table";
  };
  VectorStore::HybridStats stats;
  auto res = store_.HybridSearch(q, 3, predicate,
                                 VectorStore::FilterStrategy::kAdaptive,
                                 &stats);
  EXPECT_EQ(stats.executed, VectorStore::FilterStrategy::kPreFilter);
  for (const auto& r : res) {
    EXPECT_TRUE(predicate(store_.Get(r.id)->attributes));
  }
}

TEST_F(VectorStoreTest, AdaptiveChoosesPostFilterWhenPermissive) {
  common::Rng rng(79);
  Vector q = RandomUnitVector(rng, 32);
  auto predicate = [](const std::map<std::string, data::Value>&) {
    return true;
  };
  VectorStore::HybridStats stats;
  store_.HybridSearch(q, 3, predicate,
                      VectorStore::FilterStrategy::kAdaptive, &stats);
  EXPECT_EQ(stats.executed, VectorStore::FilterStrategy::kPostFilter);
}

TEST(AdaptiveKPredictor, LearnsPassRate) {
  AdaptiveKPredictor pred(0.5, 1.5);
  // Observe a consistent 10% pass rate.
  for (int i = 0; i < 50; ++i) pred.Observe(100, 10);
  EXPECT_NEAR(pred.pass_rate(), 0.1, 0.02);
  // To get 10 survivors it should fetch ~10/0.1*1.5 = ~150.
  size_t k = pred.PredictFetchK(10);
  EXPECT_GE(k, 100u);
  EXPECT_LE(k, 250u);
}

TEST(AdaptiveKPredictor, PostFilterShortfallGrows) {
  // A store where only ~2% pass: post-filter must still find them.
  VectorStore store(std::make_unique<FlatIndex>());
  common::Rng rng(6);
  for (uint64_t i = 0; i < 500; ++i) {
    StoredItem item;
    item.id = i;
    item.vector = RandomUnitVector(rng, 16);
    item.attributes["rare"] = data::Value::Bool(i % 50 == 0);
    ASSERT_TRUE(store.Insert(std::move(item)).ok());
  }
  auto predicate = [](const std::map<std::string, data::Value>& attrs) {
    return attrs.at("rare").AsBool();
  };
  Vector q = RandomUnitVector(rng, 16);
  auto res = store.HybridSearch(q, 5, predicate,
                                VectorStore::FilterStrategy::kPostFilter);
  EXPECT_EQ(res.size(), 5u);  // grew fetch_k until it found them
}

}  // namespace
}  // namespace llmdm::vectordb
