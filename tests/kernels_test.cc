// Kernel-layer contract tests: bit-exact parity between the portable scalar
// path and whatever SIMD path dispatch selected on this machine, the int8
// quantization error model, and the recall gate for quantized search on the
// Table III workload. verify.sh runs these suites (Kernels*/QuantizedRecall*)
// as its kernel-parity stage.
#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/nl2sql_workload.h"
#include "embed/embedder.h"
#include "vectordb/flat_index.h"
#include "vectordb/hnsw_index.h"
#include "vectordb/ivf_index.h"
#include "vectordb/kernels.h"

namespace llmdm::vectordb::kernels {
namespace {

// Bitwise float equality: the parity contract is "same bits", not "close".
bool SameBits(float a, float b) {
  return std::memcmp(&a, &b, sizeof(float)) == 0;
}

std::vector<float> RandomVec(common::Rng& rng, size_t n) {
  std::vector<float> v(n);
  for (float& x : v) x = float(rng.Normal());
  return v;
}

/// Runs `fn` once pinned to scalar and once pinned to the machine's active
/// level, returning both results. When dispatch already resolves to scalar
/// (no SIMD on this machine, or -DLLMDM_FORCE_SCALAR) the two runs are the
/// same path and the comparison is trivially true — still worth running, it
/// covers the pin/unpin plumbing.
template <typename Fn>
auto ScalarVsActive(const Fn& fn) {
  PinDispatchForTesting(DispatchLevel::kScalar);
  auto scalar = fn();
  UnpinDispatchForTesting();
  auto active = fn();
  return std::make_pair(scalar, active);
}

TEST(Kernels, DotParityAcrossLengthsAndOffsets) {
  common::Rng rng(1234);
  // A shared pool longer than any tested length, so unaligned views slice
  // into the middle of a heap buffer (alignof(float), not 32).
  std::vector<float> pool_a = RandomVec(rng, 512 + 8);
  std::vector<float> pool_b = RandomVec(rng, 512 + 8);
  for (size_t len : {0, 1, 2, 3, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65,
                     127, 128, 129, 255, 256, 257}) {
    for (size_t offset = 0; offset < 8; ++offset) {
      const float* a = pool_a.data() + offset;
      const float* b = pool_b.data() + offset;
      auto [scalar, active] =
          ScalarVsActive([&] { return Dot(a, b, len); });
      EXPECT_TRUE(SameBits(scalar, active))
          << "Dot len=" << len << " offset=" << offset << " scalar=" << scalar
          << " active=" << active;
      auto [ls, la] = ScalarVsActive([&] { return L2Sq(a, b, len); });
      EXPECT_TRUE(SameBits(ls, la))
          << "L2Sq len=" << len << " offset=" << offset;
    }
  }
}

TEST(Kernels, DotParityOnZeroAndDenormalVectors) {
  for (size_t len : {5, 16, 37, 128}) {
    std::vector<float> zero(len, 0.0f);
    std::vector<float> denorm(len, 1e-40f);  // subnormal: flushes differently
                                             // only if a path cheats
    std::vector<float> mixed(len);
    for (size_t i = 0; i < len; ++i) {
      mixed[i] = (i % 3 == 0) ? 0.0f : (i % 3 == 1 ? 1e-40f : -2.5f);
    }
    for (const auto* v : {&zero, &denorm, &mixed}) {
      auto [s, a] = ScalarVsActive(
          [&] { return Dot(v->data(), mixed.data(), len); });
      EXPECT_TRUE(SameBits(s, a)) << "len=" << len;
    }
  }
}

TEST(Kernels, DotBatchMatchesPerRowCalls) {
  common::Rng rng(77);
  const size_t dim = 96, rows = 33;
  std::vector<float> base = RandomVec(rng, rows * dim);
  std::vector<float> query = RandomVec(rng, dim);
  std::vector<float> batched(rows);
  DotBatch(query.data(), base.data(), rows, dim, batched.data());
  for (size_t r = 0; r < rows; ++r) {
    float one = Dot(query.data(), base.data() + r * dim, dim);
    EXPECT_TRUE(SameBits(one, batched[r])) << "row " << r;
  }
}

TEST(Kernels, Int8DotIsExactAcrossDispatch) {
  common::Rng rng(9);
  for (size_t len : {0, 1, 15, 16, 17, 48, 100, 256, 301}) {
    std::vector<int8_t> a(len), b(len);
    for (size_t i = 0; i < len; ++i) {
      a[i] = int8_t(int64_t(rng.NextBelow(255)) - 127);
      b[i] = int8_t(int64_t(rng.NextBelow(255)) - 127);
    }
    // Integer ground truth: the kernel must be exact, not approximately
    // equal — quantized scores are then identical on every ISA.
    int32_t want = 0;
    for (size_t i = 0; i < len; ++i) {
      want += int32_t(a[i]) * int32_t(b[i]);
    }
    auto [s, act] =
        ScalarVsActive([&] { return DotI8(a.data(), b.data(), len); });
    EXPECT_EQ(s, want) << "len=" << len;
    EXPECT_EQ(act, want) << "len=" << len;
  }
}

TEST(Kernels, QuantizeReconstructionErrorWithinHalfScale) {
  common::Rng rng(5150);
  for (size_t len : {1, 7, 64, 256}) {
    std::vector<float> v = RandomVec(rng, len);
    std::vector<int8_t> codes(len);
    float scale = 0.0f;
    QuantizeSymmetric(v.data(), len, codes.data(), &scale);
    ASSERT_GT(scale, 0.0f);
    for (size_t i = 0; i < len; ++i) {
      EXPECT_GE(codes[i], -127);
      EXPECT_LE(codes[i], 127);
      // Round-to-nearest of v/scale: reconstruction error <= scale/2 (plus
      // one float ulp of slack for the scale multiply itself).
      EXPECT_LE(std::fabs(v[i] - float(codes[i]) * scale),
                scale * 0.5f + scale * 1e-5f)
          << "len=" << len << " i=" << i;
    }
  }
}

TEST(Kernels, QuantizeZeroVectorYieldsZeroScaleAndCodes) {
  std::vector<float> zero(19, 0.0f);
  std::vector<int8_t> codes(19, 42);
  float scale = 1.0f;
  QuantizeSymmetric(zero.data(), zero.size(), codes.data(), &scale);
  EXPECT_EQ(scale, 0.0f);
  for (int8_t c : codes) EXPECT_EQ(c, 0);
}

TEST(Kernels, TopKSelectorMatchesPartialSortIncludingTies) {
  common::Rng rng(31337);
  std::vector<ScoredId> items;
  for (uint64_t id = 0; id < 500; ++id) {
    // Coarse buckets force score ties so the id-ascending tie-break is
    // actually exercised.
    float score = float(rng.NextBelow(20)) / 10.0f;
    items.push_back(ScoredId{score, id});
  }
  for (size_t k : {1, 3, 10, 499, 500, 600}) {
    TopKSelector sel(k);
    for (const ScoredId& it : items) sel.Offer(it.score, it.id);
    std::vector<ScoredId> got = sel.TakeSorted();

    std::vector<ScoredId> want = items;
    std::sort(want.begin(), want.end(), [](const ScoredId& a, const ScoredId& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.id < b.id;
    });
    want.resize(std::min(k, want.size()));
    ASSERT_EQ(got.size(), want.size()) << "k=" << k;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "k=" << k << " i=" << i;
      EXPECT_TRUE(SameBits(got[i].score, want[i].score));
    }
  }
}

TEST(Kernels, PinIgnoresUnsupportedLevels) {
#if defined(__x86_64__)
  PinDispatchForTesting(DispatchLevel::kNeon);  // not this ISA: must be a no-op
  EXPECT_NE(ActiveDispatch(), DispatchLevel::kNeon);
#endif
  UnpinDispatchForTesting();
  EXPECT_TRUE(SupportsDispatch(DispatchLevel::kScalar));
  EXPECT_STREQ(DispatchName(DispatchLevel::kScalar), "scalar");
}

// ---- Quantized recall on the Table III workload -----------------------------

std::vector<embed::Vector> TableIIIEmbeddings() {
  common::Rng rng(20240706);
  data::Nl2SqlWorkloadOptions wopts;
  wopts.num_queries = 200;  // same distribution as the Table III cache bench,
                            // more queries for a meaningful recall denominator
  wopts.condition_pool = 6;
  wopts.compound_rate = 0.8;
  auto workload = data::GenerateNl2SqlWorkload(wopts, rng);
  std::set<std::string> seen;
  embed::HashingEmbedder embedder;
  std::vector<embed::Vector> out;
  for (const auto& q : workload) {
    std::string text = q.ToNaturalLanguage();
    if (!seen.insert(text).second) continue;  // duplicate text = identical
                                              // vector; ground truth would be
                                              // ambiguous under ties
    out.push_back(embedder.Embed(text));
  }
  return out;
}

double RecallAt10(const std::vector<embed::Vector>& data,
                  VectorIndex& exact, VectorIndex& approx) {
  size_t hits = 0, total = 0;
  for (const embed::Vector& q : data) {
    auto truth = exact.Search(q, 10);
    std::set<uint64_t> truth_ids;
    for (const auto& r : truth) truth_ids.insert(r.id);
    for (const auto& r : approx.Search(q, 10)) hits += truth_ids.count(r.id);
    total += truth.size();
  }
  return total > 0 ? double(hits) / double(total) : 0.0;
}

template <typename IndexT>
void FillIndex(const std::vector<embed::Vector>& data, IndexT* index) {
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index->Add(i, data[i]).ok());
  }
}

TEST(QuantizedRecall, FlatInt8RescoreOnTableIIIWorkload) {
  auto data = TableIIIEmbeddings();
  FlatIndex exact;
  FillIndex(data, &exact);
  FlatIndex::Options qopts;
  qopts.quantize = true;
  FlatIndex quantized(qopts);
  FillIndex(data, &quantized);
  EXPECT_GE(RecallAt10(data, exact, quantized), 0.99);
}

TEST(QuantizedRecall, HnswInt8RescoreOnTableIIIWorkload) {
  auto data = TableIIIEmbeddings();
  FlatIndex exact;
  FillIndex(data, &exact);
  HnswIndex::Options qopts;
  qopts.quantize = true;
  qopts.ef_search = 200;  // wide beam: isolates the quantization error from
                          // HNSW's own routing approximation
  HnswIndex quantized(qopts);
  FillIndex(data, &quantized);
  EXPECT_GE(RecallAt10(data, exact, quantized), 0.99);
}

TEST(QuantizedRecall, IvfInt8RescoreOnTableIIIWorkload) {
  auto data = TableIIIEmbeddings();
  FlatIndex exact;
  FillIndex(data, &exact);
  IvfIndex::Options qopts;
  qopts.quantize = true;
  qopts.nprobe = qopts.nlist;  // probe every cell: isolates quantization
                               // error from the IVF pruning approximation
  IvfIndex quantized(qopts);
  FillIndex(data, &quantized);
  EXPECT_GE(RecallAt10(data, exact, quantized), 0.99);
}

}  // namespace
}  // namespace llmdm::vectordb::kernels
