// Coverage for API corners not exercised by the mainline suites: error
// paths, formatting edges, and small utilities.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/integration/table_understanding.h"
#include "core/optimize/prompt_store.h"
#include "core/transform/nl2sql.h"
#include "core/validate/validators.h"
#include "data/csv.h"
#include "data/json.h"
#include "data/nl2sql_workload.h"
#include "data/xml.h"
#include "llm/simulated.h"
#include "sql/database.h"

namespace llmdm {
namespace {

TEST(RngMisc, ExponentialIsPositiveWithRightMean) {
  common::Rng rng(1);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    double x = rng.Exponential(2.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 5000.0, 0.5, 0.05);  // mean = 1/lambda
}

TEST(RngMisc, ForkedStreamsAreIndependent) {
  common::Rng parent(9);
  common::Rng a = parent.Fork(1);
  common::Rng b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(MoneyMisc, ToStringClampsDecimals) {
  common::Money m = common::Money::FromDollars(1.23456789);
  EXPECT_EQ(m.ToString(-3), "$1");
  EXPECT_EQ(m.ToString(99), "$1.234568");
  EXPECT_EQ((common::Money::FromDollars(-0.5)).ToString(2), "$-0.50");
}

TEST(CsvMisc, QuotingSurvivesNewlinesAndQuotes) {
  data::Table t("x", data::Schema({{"s", data::ColumnType::kText, true}}));
  t.AppendRowUnchecked({data::Value::Text("line1\nline2, with \"quotes\"")});
  std::string csv = data::WriteCsv(t);
  auto back = data::ParseCsv(csv);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->at(0, 0).AsText(), "line1\nline2, with \"quotes\"");
}

TEST(JsonMisc, SetOverwritesExistingKey) {
  data::JsonValue obj = data::JsonValue::MakeObject();
  obj.Set("k", data::JsonValue::MakeNumber(1));
  obj.Set("k", data::JsonValue::MakeNumber(2));
  EXPECT_EQ(obj.members().size(), 1u);
  EXPECT_DOUBLE_EQ(obj.Find("k")->AsNumber(), 2.0);
}

TEST(XmlMisc, AttributeEscapingRoundTrips) {
  data::XmlNode node;
  node.tag = "n";
  node.attributes.emplace_back("a", "x < y & \"z\"");
  auto back = data::ParseXml(node.ToString());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->Attribute("a"), "x < y & \"z\"");
}

TEST(CatalogMisc, DescribeForPromptListsTables) {
  sql::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE alpha (x INT)").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE beta (y TEXT, z DOUBLE)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO alpha VALUES (1), (2)").ok());
  std::string described = db.catalog().DescribeForPrompt();
  EXPECT_NE(described.find("alpha(x INT)"), std::string::npos);
  EXPECT_NE(described.find("2 rows"), std::string::npos);
  EXPECT_NE(described.find("beta(y TEXT, z DOUBLE)"), std::string::npos);
}

TEST(SkillMisc, MatchSkillRejectsMalformedInput) {
  auto models = llm::CreatePaperModelLadder(nullptr, 5);
  auto c = models[2]->Complete(llm::MakePrompt("match", "no separator here"));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->text, "no");
  EXPECT_LT(c->confidence, 0.2);
}

TEST(SkillMisc, CtaSkillHandlesEmptyInput) {
  auto models = llm::CreatePaperModelLadder(nullptr, 6);
  auto c = models[2]->Complete(llm::MakePrompt("cta", "   "));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->text, "unknown");
}

TEST(SkillMisc, Sql2NlNonAggregateFallsBack) {
  auto models = llm::CreatePaperModelLadder(nullptr, 7);
  auto c = models[2]->Complete(
      llm::MakePrompt("sql2nl", "SELECT name FROM stadium\n=> Olympic"));
  ASSERT_TRUE(c.ok());
  EXPECT_NE(c->text.find("Olympic"), std::string::npos);
  auto bad = models[2]->Complete(llm::MakePrompt("sql2nl", "no arrow marker"));
  ASSERT_TRUE(bad.ok());
  EXPECT_NE(bad->text.find("could not"), std::string::npos);
}

TEST(UsageMisc, ByModelBreakdownAndToString) {
  llm::UsageMeter meter;
  meter.Record("m1", 100, 10, common::Money::FromDollars(0.01), 5.0);
  meter.Record("m1", 200, 20, common::Money::FromDollars(0.02), 6.0);
  meter.Record("m2", 50, 5, common::Money::FromDollars(0.001), 1.0);
  EXPECT_EQ(meter.by_model().at("m1").calls, 2u);
  EXPECT_EQ(meter.by_model().at("m1").input_tokens, 300u);
  EXPECT_EQ(meter.by_model().at("m2").cost, common::Money::FromDollars(0.001));
  EXPECT_NE(meter.ToString().find("calls=3"), std::string::npos);
}

TEST(Nl2SqlEngineMisc, ParseOnlyModeSkipsExecution) {
  common::Rng rng(8);
  sql::Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    data::BuildStadiumDatabaseScript(8, {2014, 2015}, rng))
                  .ok());
  auto models = llm::CreatePaperModelLadder(nullptr, 9);
  transform::Nl2SqlEngine::Options options;
  options.execute = false;
  transform::Nl2SqlEngine engine(models[2], nullptr, options);
  auto r = engine.Translate(
      "What are the names of stadiums that had concerts in 2014?", db);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->executed);
  EXPECT_EQ(r->result.NumRows(), 0u);
}

TEST(PromptStoreMisc, EvictsTheWorstPerformer) {
  optimize::PromptStore::Options options;
  options.capacity = 2;
  optimize::PromptStore store(options);
  uint64_t loser = store.Add("first prompt about topic alpha", "L");
  uint64_t winner = store.Add("second prompt about topic beta", "W");
  for (int i = 0; i < 10; ++i) {
    store.RecordOutcome(loser, false);
    store.RecordOutcome(winner, true);
  }
  store.Add("third prompt about topic gamma", "N");  // forces one eviction
  EXPECT_FALSE(store.Get(loser).has_value());
  ASSERT_TRUE(store.Get(winner).has_value());
  EXPECT_EQ(store.Get(winner)->output, "W");
}

TEST(CrowdMisc, ZeroWorkersRejects) {
  validate::CrowdValidator crowd(0, 0.9, 1);
  validate::Verdict v = crowd.Judge(true);
  EXPECT_FALSE(v.accepted);
}

TEST(TableUnderstandingMisc, DescribeAggregateRejectsMultiCell) {
  sql::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2)").ok());
  auto models = llm::CreatePaperModelLadder(nullptr, 10);
  integration::TableUnderstanding tu(models[2]);
  EXPECT_FALSE(tu.DescribeAggregate(db, "SELECT a FROM t").ok());
  EXPECT_FALSE(tu.DescribeAggregate(db, "SELECT broken FROM").ok());
}

TEST(ValueMisc, HashConsistentWithEqualityForTextAndDate) {
  EXPECT_EQ(data::Value::Text("abc").Hash(), data::Value::Text("abc").Hash());
  EXPECT_NE(data::Value::Text("abc").Hash(), data::Value::Text("abd").Hash());
  EXPECT_EQ(data::Value::MakeDate(2024, 1, 2).Hash(),
            data::Value::MakeDate(2024, 1, 2).Hash());
  EXPECT_NE(data::Value::MakeDate(2024, 1, 2).Hash(),
            data::Value::MakeDate(2024, 2, 1).Hash());
}

TEST(PromptMisc, EmptyPromptStillRendersAndCounts) {
  llm::Prompt p;
  EXPECT_FALSE(p.Render().empty());  // the "[input]" frame is always there
  EXPECT_GT(p.CountInputTokens(), 0u);
}

}  // namespace
}  // namespace llmdm
