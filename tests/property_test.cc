// Property-based and parameterized sweeps across module invariants. Each
// suite runs over a set of seeds / sizes via TEST_P so that the invariants
// are exercised on many independently generated instances.
#include <gtest/gtest.h>

#include <set>

#include "common/money.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/generation/sql_generator.h"
#include "core/optimize/decomposition.h"
#include "core/optimize/semantic_cache.h"
#include "core/transform/column_pattern.h"
#include "core/transform/table_transform.h"
#include "data/nl2sql_workload.h"
#include "data/qa_workload.h"
#include "data/txn_workload.h"
#include "sql/database.h"
#include "sql/parser.h"
#include "text/tokenizer.h"

namespace llmdm {
namespace {

// ---- SQL engine: generated-query determinism & round-trip ------------------

class SqlPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlPropertyTest, GeneratedQueriesRoundTripAndAreDeterministic) {
  common::Rng rng(GetParam());
  sql::Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    data::BuildStadiumDatabaseScript(10, {2013, 2014, 2015},
                                                     rng))
                  .ok());
  generation::SqlGenerator generator(nullptr, GetParam() * 31 + 7);
  generation::SqlGenConstraints constraints;
  constraints.count = 15;
  auto queries = generator.Generate(db, constraints);
  ASSERT_TRUE(queries.ok());
  for (const auto& q : *queries) {
    // (1) parse -> unparse -> parse preserves execution semantics.
    auto parsed = sql::ParseStatement(q.sql);
    ASSERT_TRUE(parsed.ok()) << q.sql;
    std::string printed = parsed->ToString();
    auto reparsed = sql::ParseStatement(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    auto a = db.Query(q.sql);
    auto b = db.Query(printed);
    ASSERT_TRUE(a.ok() && b.ok()) << printed;
    EXPECT_TRUE(a->BagEquals(*b)) << q.sql << " vs " << printed;
    // (2) execution is deterministic.
    auto again = db.Query(q.sql);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(a->BagHash(), again->BagHash());
  }
}

TEST_P(SqlPropertyTest, EquivalencePairsHoldOnFreshData) {
  common::Rng rng(GetParam() ^ 0xABCDEF);
  sql::Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    data::BuildStadiumDatabaseScript(12, {2014, 2015}, rng))
                  .ok());
  generation::SqlGenerator generator(nullptr, GetParam() * 13 + 1);
  auto pairs = generator.GenerateEquivalentPairs(db, 10);
  ASSERT_TRUE(pairs.ok());
  for (const auto& [a, b] : *pairs) {
    auto ra = db.Query(a);
    auto rb = db.Query(b);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_TRUE(ra->BagEquals(*rb)) << a << " vs " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- NL2SQL workload: NL <-> structure <-> SQL coherence --------------------

class Nl2SqlPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Nl2SqlPropertyTest, NlRoundTripAndGoldExecutes) {
  common::Rng rng(GetParam());
  sql::Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    data::BuildStadiumDatabaseScript(12, {2014, 2015}, rng))
                  .ok());
  data::Nl2SqlWorkloadOptions options;
  options.num_queries = 25;
  options.condition_pool = 3 + GetParam() % 6;
  auto workload = data::GenerateNl2SqlWorkload(options, rng);
  for (const auto& q : workload) {
    // NL parses back to the same structure.
    auto parsed = data::ParseNl2SqlQuestion(q.ToNaturalLanguage());
    ASSERT_TRUE(parsed.ok()) << q.ToNaturalLanguage();
    EXPECT_EQ(*parsed, q);
    // Gold SQL executes.
    EXPECT_TRUE(db.Query(q.ToGoldSql()).ok()) << q.ToGoldSql();
    // Decomposition + client-side set algebra reproduces the gold result.
    auto d = optimize::DecomposeQuestion(q.ToNaturalLanguage());
    ASSERT_TRUE(d.ok());
    if (!d->atomic()) {
      std::vector<std::string> parts;
      for (const auto& sub : d->sub_questions) {
        auto sub_q = data::ParseNl2SqlQuestion(sub);
        ASSERT_TRUE(sub_q.ok()) << sub;
        parts.push_back(sub_q->ToGoldSql());
      }
      auto recombined = db.Query(optimize::RecombineSql(parts, d->combiner));
      auto gold = db.Query(q.ToGoldSql());
      ASSERT_TRUE(recombined.ok() && gold.ok());
      EXPECT_TRUE(recombined->BagEquals(*gold))
          << q.ToGoldSql() << " vs recombination";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Nl2SqlPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---- transactions: conservation invariant -----------------------------------

class TxnPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TxnPropertyTest, RenderParseRoundTripAndSqlBalance) {
  common::Rng rng(GetParam());
  auto workload = data::GenerateTxnWorkload(20, {"A", "B", "C", "D"}, rng);
  for (const auto& request : workload) {
    auto parsed = data::ParseTxnRequest(data::RenderTxnRequest(request));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, request);
    // The SQL sequence is structurally balanced: 3 statements per transfer,
    // with equal debit and credit amounts.
    auto sql = data::TxnToSql(request);
    EXPECT_EQ(sql.size(), request.transfers.size() * 3);
  }
}

TEST_P(TxnPropertyTest, AtomicExecutionConservesTotal) {
  common::Rng rng(GetParam() + 100);
  sql::Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    data::BuildAccountsDatabaseScript({"A", "B", "C"}, 10000))
                  .ok());
  auto total = [&]() {
    return db.Query("SELECT SUM(balance) FROM accounts")->at(0, 0).AsInt();
  };
  int64_t before = total();
  auto workload = data::GenerateTxnWorkload(15, {"A", "B", "C"}, rng);
  for (const auto& request : workload) {
    ASSERT_TRUE(db.ExecuteAtomically(data::TxnToSql(request)).ok());
    EXPECT_EQ(total(), before);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnPropertyTest,
                         ::testing::Values(3, 14, 159, 265));

// ---- pattern mining: the mined pattern covers its inputs ---------------------

class PatternPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PatternPropertyTest, MinedPatternMatchesEveryInput) {
  common::Rng rng(GetParam());
  // Random same-shape values: letters{a} sep digits{b} sep letters{c}.
  const char* separators[] = {"-", "/", " ", "."};
  const std::string sep = separators[rng.NextBelow(4)];
  std::vector<std::string> values;
  for (int i = 0; i < 12; ++i) {
    std::string v;
    int64_t letters = rng.UniformInt(1, 4);
    for (int64_t j = 0; j < letters; ++j) {
      v.push_back(static_cast<char>('a' + rng.NextBelow(26)));
    }
    v += sep;
    int64_t digits = rng.UniformInt(1, 5);
    for (int64_t j = 0; j < digits; ++j) {
      v.push_back(static_cast<char>('0' + rng.NextBelow(10)));
    }
    values.push_back(std::move(v));
  }
  auto pattern = transform::MineColumnPattern(values);
  ASSERT_TRUE(pattern.ok());
  for (const auto& v : values) {
    EXPECT_TRUE(transform::MatchesPattern(*pattern, v))
        << v << " vs " << transform::PatternToString(*pattern);
  }
  // A value with a different separator must not match.
  std::string breaker = "zz@123";
  EXPECT_FALSE(transform::MatchesPattern(*pattern, breaker));
}

TEST_P(PatternPropertyTest, DateReformatRoundTrips) {
  common::Rng rng(GetParam() * 7 + 5);
  for (int i = 0; i < 20; ++i) {
    data::Date d{int(rng.UniformInt(1990, 2030)), int(rng.UniformInt(1, 12)),
                 int(rng.UniformInt(1, 28))};
    std::string iso = d.ToString();
    for (auto style :
         {transform::DateStyle::kSlashMDY, transform::DateStyle::kMonthDY,
          transform::DateStyle::kDMonthY}) {
      auto there = transform::ReformatDate(iso, style);
      ASSERT_TRUE(there.ok());
      auto back = transform::ReformatDate(*there, transform::DateStyle::kIso);
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(*back, iso);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternPropertyTest,
                         ::testing::Values(7, 77, 777, 7777));

// ---- grid operator synthesis: score never decreases, programs verify ---------

class GridPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridPropertyTest, SynthesisNeverWorsensTheGrid) {
  common::Rng rng(GetParam());
  // Build a clean table, then damage it with a random mangle sequence.
  transform::Grid clean{{"name", "score", "year"}};
  for (int i = 0; i < 8; ++i) {
    clean.push_back({common::StrFormat("row%d", i),
                     std::to_string(rng.UniformInt(0, 100)),
                     std::to_string(rng.UniformInt(2000, 2024))});
  }
  transform::Grid damaged = clean;
  if (rng.Bernoulli(0.5)) {
    damaged = transform::ApplyOp(damaged, transform::TableOp::kTranspose);
  }
  damaged.push_back(std::vector<std::string>(damaged[0].size(), ""));
  double before = transform::RelationalScore(damaged);
  auto result = transform::SynthesizeRelationalization(damaged);
  EXPECT_GE(result.score, before - 1e-9);
  // Replaying the program from the damaged grid reproduces the result.
  transform::Grid replay = damaged;
  for (auto op : result.program) replay = transform::ApplyOp(replay, op);
  EXPECT_EQ(replay, result.transformed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridPropertyTest,
                         ::testing::Values(1, 10, 100, 1000));

// ---- semantic cache: structural invariants under load ------------------------

class CachePropertyTest
    : public ::testing::TestWithParam<optimize::EvictionPolicy> {};

TEST_P(CachePropertyTest, CapacityAndStatsInvariants) {
  optimize::SemanticCache::Options options;
  options.capacity = 8;
  options.policy = GetParam();
  optimize::SemanticCache cache(options);
  common::Rng rng(42);
  size_t manual_hits = 0, manual_lookups = 0;
  for (int step = 0; step < 300; ++step) {
    std::string q = common::StrFormat(
        "query about topic %llu with qualifier %llu",
        (unsigned long long)rng.NextBelow(25),
        (unsigned long long)rng.NextBelow(3));
    ++manual_lookups;
    if (cache.Lookup(q, common::Money::FromMicros(100)).has_value()) {
      ++manual_hits;
    } else {
      cache.Insert(q, "answer");
    }
    // Invariant: live size never exceeds capacity.
    ASSERT_LE(cache.Size(), options.capacity);
  }
  EXPECT_EQ(cache.stats().lookups, manual_lookups);
  EXPECT_EQ(cache.stats().hits, manual_hits);
  EXPECT_EQ(cache.stats().saved,
            common::Money::FromMicros(100 * int64_t(manual_hits)));
  // insertions = misses; evictions = insertions - live (all inserts unique
  // enough to not refresh).
  EXPECT_EQ(cache.stats().insertions, manual_lookups - manual_hits);
  EXPECT_EQ(cache.stats().evictions, cache.stats().insertions - cache.Size());
}

INSTANTIATE_TEST_SUITE_P(Policies, CachePropertyTest,
                         ::testing::Values(optimize::EvictionPolicy::kLru,
                                           optimize::EvictionPolicy::kLfu,
                                           optimize::EvictionPolicy::kCostAware));

// ---- tokenizer: counting and reconstruction ----------------------------------

class TokenizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TokenizerPropertyTest, CountEqualsTokenizeAndPiecesReassemble) {
  common::Rng rng(GetParam());
  text::Tokenizer tok;
  for (int trial = 0; trial < 50; ++trial) {
    // Random text over words, punctuation and whitespace.
    std::string s;
    int64_t parts = rng.UniformInt(0, 30);
    for (int64_t i = 0; i < parts; ++i) {
      switch (rng.NextBelow(4)) {
        case 0: {
          int64_t len = rng.UniformInt(1, 14);
          for (int64_t j = 0; j < len; ++j) {
            s.push_back(static_cast<char>('a' + rng.NextBelow(26)));
          }
          break;
        }
        case 1:
          s.push_back(",.;:!?"[rng.NextBelow(6)]);
          break;
        case 2:
          s += std::to_string(rng.UniformInt(0, 99999));
          break;
        default:
          s.push_back(" \t\n"[rng.NextBelow(3)]);
      }
    }
    auto pieces = tok.Tokenize(s);
    EXPECT_EQ(pieces.size(), tok.CountTokens(s)) << s;
    // Concatenated pieces equal the input minus whitespace.
    std::string reassembled;
    for (const auto& p : pieces) reassembled += p;
    std::string no_ws;
    for (char c : s) {
      if (!std::isspace(static_cast<unsigned char>(c))) no_ws.push_back(c);
    }
    EXPECT_EQ(reassembled, no_ws);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerPropertyTest,
                         ::testing::Values(1, 2, 4, 8));

// ---- QA knowledge base: chain answers compose --------------------------------

class KbPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KbPropertyTest, ChainsComposeAndQuestionsRoundTrip) {
  common::Rng rng(GetParam());
  auto kb = data::KnowledgeBase::Generate(40, rng);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::string> chain;
    int64_t hops = rng.UniformInt(1, 3);
    for (int64_t h = 0; h < hops; ++h) chain.push_back(rng.Choice(kb.relations()));
    const std::string& subject = rng.Choice(kb.entities());
    // Composition: chain answer equals iterated single-hop lookups.
    std::string step = subject;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      auto next = kb.Lookup(*it, step);
      ASSERT_TRUE(next.ok());
      step = *next;
    }
    auto direct = kb.AnswerChain(chain, subject);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(*direct, step);
    // Question text round-trips.
    auto parsed =
        data::ParseChainQuestion(data::RenderChainQuestion(chain, subject));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->first, chain);
    EXPECT_EQ(parsed->second, subject);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KbPropertyTest,
                         ::testing::Values(5, 50, 500));

// ---- money: exactness under random walks --------------------------------------

TEST(MoneyProperty, SumOfPartsIsExact) {
  common::Rng rng(2718);
  for (int trial = 0; trial < 100; ++trial) {
    int64_t n = rng.UniformInt(1, 50);
    common::Money sum = common::Money::Zero();
    int64_t micros_total = 0;
    for (int64_t i = 0; i < n; ++i) {
      int64_t micros = rng.UniformInt(-100000, 100000);
      sum += common::Money::FromMicros(micros);
      micros_total += micros;
    }
    EXPECT_EQ(sum, common::Money::FromMicros(micros_total));
  }
}

}  // namespace
}  // namespace llmdm
