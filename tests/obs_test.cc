// Tests for the unified observability subsystem (src/obs): the metrics
// registry and its determinism contract (byte-identical exports across runs
// and thread counts), trace span trees, and the integration points where the
// legacy stats structs became views over registry instruments.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/optimize/cascade.h"
#include "core/optimize/semantic_cache.h"
#include "llm/fault_injection.h"
#include "llm/resilient.h"
#include "llm/simulated.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "text/tokenizer.h"

namespace llmdm {
namespace {

// ---- Registry and instruments ----------------------------------------------

TEST(MetricsRegistry, CounterGaugeBasics) {
  obs::Registry registry;
  obs::Counter* c = registry.GetCounter("llmdm_test_events_total");
  ASSERT_NE(c, nullptr);
  c->Add();
  c->Add(4);
  EXPECT_EQ(c->value(), 5u);

  obs::Gauge* g = registry.GetGauge("llmdm_test_depth");
  g->Set(7);
  g->Add(-2);
  EXPECT_EQ(g->value(), 5);
  g->SetMax(3);  // below current: no-op
  EXPECT_EQ(g->value(), 5);
  g->SetMax(11);
  EXPECT_EQ(g->value(), 11);
}

TEST(MetricsRegistry, SameSeriesReturnsSameInstrument) {
  obs::Registry registry;
  obs::Counter* a =
      registry.GetCounter("llmdm_test_total", {{"shard", "0"}, {"kind", "x"}});
  // Label order must not matter: the registry canonicalizes to sorted keys.
  obs::Counter* b =
      registry.GetCounter("llmdm_test_total", {{"kind", "x"}, {"shard", "0"}});
  EXPECT_EQ(a, b);
  obs::Counter* other =
      registry.GetCounter("llmdm_test_total", {{"shard", "1"}, {"kind", "x"}});
  EXPECT_NE(a, other);
  EXPECT_EQ(registry.instrument_count(), 2u);
}

TEST(MetricsRegistry, KindMismatchReturnsNull) {
  obs::Registry registry;
  ASSERT_NE(registry.GetCounter("llmdm_test_series"), nullptr);
  EXPECT_EQ(registry.GetGauge("llmdm_test_series"), nullptr);
  EXPECT_EQ(registry.GetHistogram("llmdm_test_series", {}, {1.0}), nullptr);
}

TEST(Histogram, BucketsAreUpperEdgeInclusive) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (<= 1)
  h.Observe(1.0);    // bucket 0 (edges are le-inclusive)
  h.Observe(10.0);   // bucket 1
  h.Observe(10.5);   // bucket 2
  h.Observe(1000.0); // +Inf bucket
  auto snap = h.TakeSnapshot();
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum(), 1022.0);
}

TEST(Histogram, SumIsExactIntegerMicros) {
  // The running sum accumulates integer micro-units so that threaded
  // observation order cannot perturb it (float addition does not commute).
  obs::Histogram h(obs::Histogram::LatencyBoundsVms());
  h.Observe(0.1);
  h.Observe(0.2);
  h.Observe(0.3);
  auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.sum_micros, 600000);
  EXPECT_DOUBLE_EQ(snap.sum(), 0.6);
}

TEST(MetricsRegistry, PrometheusTextIsStableAndOrdered) {
  obs::Registry registry;
  registry.GetCounter("llmdm_b_total", {{"shard", "1"}})->Add(2);
  registry.GetCounter("llmdm_b_total", {{"shard", "0"}})->Add(1);
  registry.GetGauge("llmdm_a_depth")->Set(3);
  std::string text = registry.PrometheusText();
  EXPECT_EQ(text, registry.PrometheusText());  // byte-stable re-export
  // Series ordered by (name, labels): the gauge first, then shard 0, shard 1.
  size_t a = text.find("llmdm_a_depth 3");
  size_t b0 = text.find("llmdm_b_total{shard=\"0\"} 1");
  size_t b1 = text.find("llmdm_b_total{shard=\"1\"} 2");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b0, std::string::npos);
  ASSERT_NE(b1, std::string::npos);
  EXPECT_LT(a, b0);
  EXPECT_LT(b0, b1);
}

TEST(MetricsRegistry, JsonSnapshotListsEverySeries) {
  obs::Registry registry;
  registry.GetCounter("llmdm_events_total", {{"kind", "x"}})->Add(3);
  registry.GetHistogram("llmdm_lat_vms", {}, {1.0, 2.0})->Observe(1.5);
  std::string json = registry.JsonSnapshot();
  EXPECT_NE(json.find("\"llmdm_events_total\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"x\""), std::string::npos);
  EXPECT_NE(json.find("\"llmdm_lat_vms\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[0,1,0]"), std::string::npos);
  EXPECT_EQ(json, registry.JsonSnapshot());
}

TEST(MetricsRegistry, ExportIsByteIdenticalAcrossThreadCounts) {
  // The determinism contract: a fixed workload observed through any number
  // of threads exports byte-identical text. Counters and histogram sums are
  // integer accumulations, so order cannot matter.
  auto run = [](size_t threads) {
    obs::Registry registry;
    obs::Counter* events = registry.GetCounter("llmdm_events_total");
    obs::Histogram* lat = registry.GetHistogram(
        "llmdm_latency_vms", {}, obs::Histogram::LatencyBoundsVms());
    constexpr size_t kTotal = 960;  // divides evenly by 1..8 threads
    std::vector<std::thread> pool;
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        const size_t per = kTotal / threads;
        for (size_t i = 0; i < per; ++i) {
          size_t k = t * per + i;
          events->Add(1);
          lat->Observe(0.5 * static_cast<double>(k % 100));
        }
      });
    }
    for (auto& t : pool) t.join();
    return registry.PrometheusText();
  };
  std::string one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(8));
}

// ---- Trace spans ------------------------------------------------------------

TEST(Trace, SpanTreeStructureAndJson) {
  obs::TraceContext trace("request", 100.0);
  trace.SetAttr(nullptr, "id", "7");
  obs::Span* queue = trace.StartSpan("queue", 100.0);
  trace.EndSpan(queue, 120.0);
  obs::Span* attempt = trace.StartSpan("attempt", 120.0);
  obs::Span* retry = trace.StartSpan("backoff", 130.0, attempt);
  trace.EndSpan(retry, 140.0);
  trace.EndSpan(attempt, 150.0);
  trace.EndSpan(nullptr, 150.0);

  EXPECT_EQ(trace.span_count(), 4u);
  EXPECT_EQ(trace.SpanStart(nullptr), 100.0);
  EXPECT_EQ(trace.SpanStart(attempt), 120.0);

  std::string json = trace.ToJson();
  EXPECT_EQ(json, trace.ToJson());
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"7\""), std::string::npos);
  // backoff is nested inside attempt, which is nested inside request.
  size_t req = json.find("\"name\":\"request\"");
  size_t att = json.find("\"name\":\"attempt\"");
  size_t back = json.find("\"name\":\"backoff\"");
  ASSERT_NE(att, std::string::npos);
  ASSERT_NE(back, std::string::npos);
  EXPECT_LT(req, att);
  EXPECT_LT(att, back);
}

// ---- Layer integration -------------------------------------------------------

std::shared_ptr<llm::SimulatedLlm> MakeModel(const std::string& name,
                                             double latency_ms_per_1k,
                                             uint64_t seed) {
  llm::ModelSpec spec;
  spec.name = name;
  spec.capability = 0.9;
  spec.input_price_per_1k = common::Money::FromDollars(0.001);
  spec.output_price_per_1k = common::Money::FromDollars(0.002);
  spec.latency_ms_per_1k_tokens = latency_ms_per_1k;
  auto model = std::make_shared<llm::SimulatedLlm>(spec, seed);
  model->RegisterSkill(std::make_unique<llm::FreeformSkill>());
  return model;
}

TEST(ObsIntegration, ServerStatsIsViewOverRegistry) {
  // ServerStats and a registry export must be the same numbers: the struct
  // is re-implemented as a view over the instruments.
  obs::Registry registry;
  serve::Server::Options options;
  options.worker_threads = 4;
  options.shed_policy = serve::ShedPolicy::kQueueFull;
  options.virtual_concurrency = 1;
  options.queue_depth = 4;
  options.registry = &registry;
  serve::Server server(MakeModel("sim-serve", 2000.0, 3), options);
  for (size_t i = 0; i < 40; ++i) {
    serve::Request req;
    req.id = i;
    req.arrival_vms = static_cast<double>(i) * 0.1;
    req.input = common::StrFormat("burst %zu", i);
    server.Submit(req);
  }
  server.Drain();
  auto stats = server.stats();
  EXPECT_GT(stats.shed, 0u);
  EXPECT_EQ(stats.submitted,
            registry.GetCounter("llmdm_serve_submitted_total")->value());
  EXPECT_EQ(stats.admitted,
            registry.GetCounter("llmdm_serve_admitted_total")->value());
  EXPECT_EQ(stats.shed,
            registry.GetCounter("llmdm_serve_shed_total")->value());
  EXPECT_EQ(stats.completed,
            registry.GetCounter("llmdm_serve_completed_total")->value());
  EXPECT_EQ(static_cast<int64_t>(stats.max_queue_len),
            registry.GetGauge("llmdm_serve_max_queue_len")->value());
  // The latency histogram saw every non-shed response.
  auto lat = registry
                 .GetHistogram("llmdm_serve_latency_vms", {},
                               obs::Histogram::LatencyBoundsVms())
                 ->TakeSnapshot();
  EXPECT_EQ(lat.count, stats.completed + stats.failed);
}

TEST(ObsIntegration, ServerTracePublishesSpanTree) {
  serve::Server::Options options;
  options.worker_threads = 2;
  options.shed_policy = serve::ShedPolicy::kNone;
  options.tracing = true;
  serve::Server server(MakeModel("sim-serve", 100.0, 3), options);
  for (size_t i = 0; i < 5; ++i) {
    serve::Request req;
    req.id = i;
    req.arrival_vms = static_cast<double>(i) * 10.0;
    req.input = common::StrFormat("traced %zu", i);
    server.Submit(req);
  }
  auto responses = server.Drain();
  ASSERT_EQ(responses.size(), 5u);
  for (const auto& r : responses) {
    ASSERT_NE(r.trace, nullptr);
    std::string json = r.trace->ToJson();
    EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"queue\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"attempt\""), std::string::npos);
    EXPECT_NE(json.find("\"outcome\":\"ok\""), std::string::npos);
  }
}

TEST(ObsIntegration, ResilientSpansHangUnderServeAttempt) {
  // One trace carries spans from two layers: the server's queue/attempt and
  // the resilient decorator's retries underneath the attempt.
  auto faulty = std::make_shared<llm::FaultInjectingLlm>(
      MakeModel("sim-flaky", 100.0, 3), llm::FaultProfile::Uniform(0.6), 11);
  llm::ResilientLlm::Options resilience;
  resilience.retry.max_attempts = 4;
  resilience.retry.initial_backoff_ms = 10.0;
  resilience.seed = 5;
  auto resilient = std::make_shared<llm::ResilientLlm>(faulty, resilience);

  serve::Server::Options options;
  options.worker_threads = 2;
  options.shed_policy = serve::ShedPolicy::kNone;
  options.tracing = true;
  serve::Server server(resilient, options);
  for (size_t i = 0; i < 20; ++i) {
    serve::Request req;
    req.id = i;
    req.arrival_vms = static_cast<double>(i) * 10.0;
    req.input = common::StrFormat("flaky traced %zu", i);
    server.Submit(req);
  }
  bool saw_retry_span = false;
  for (const auto& r : server.Drain()) {
    ASSERT_NE(r.trace, nullptr);
    std::string json = r.trace->ToJson();
    EXPECT_NE(json.find("resilient:sim-flaky"), std::string::npos);
    if (json.find("\"name\":\"backoff\"") != std::string::npos) {
      saw_retry_span = true;
    }
  }
  // At 60% faults some request retried; its backoff landed in the tree.
  EXPECT_TRUE(saw_retry_span);
}

TEST(ObsIntegration, ResilientStatsIsViewOverRegistry) {
  obs::Registry registry;
  auto faulty = std::make_shared<llm::FaultInjectingLlm>(
      MakeModel("sim-flaky", 100.0, 3), llm::FaultProfile::Uniform(0.5), 11);
  llm::ResilientLlm::Options options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 10.0;
  options.registry = &registry;
  llm::ResilientLlm resilient(faulty, options);
  for (size_t i = 0; i < 30; ++i) {
    llm::Prompt prompt =
        llm::MakePrompt("freeform", common::StrFormat("question %zu", i));
    prompt.sample_salt = i;
    resilient.Complete(prompt).ok();
  }
  auto stats = resilient.stats();
  EXPECT_GT(stats.attempts, 0u);
  const obs::Labels labels{{"model", "sim-flaky"}};
  EXPECT_EQ(stats.attempts,
            registry.GetCounter("llmdm_llm_attempts_total", labels)->value());
  EXPECT_EQ(stats.retries,
            registry.GetCounter("llmdm_llm_retries_total", labels)->value());
  EXPECT_EQ(
      stats.transient_errors,
      registry.GetCounter("llmdm_llm_transient_errors_total", labels)->value());
}

TEST(ObsIntegration, CacheStatsIsViewOverRegistry) {
  obs::Registry registry;
  optimize::SemanticCache::Options options;
  options.num_shards = 4;
  options.registry = &registry;
  optimize::SemanticCache cache(options);
  for (size_t i = 0; i < 20; ++i) {
    std::string q = common::StrFormat("query %zu about topic %zu", i, i % 5);
    if (!cache.Lookup(q, common::Money::FromDollars(0.01)).has_value()) {
      cache.Insert(q, "answer");
    }
    cache.Lookup(q, common::Money::FromDollars(0.01));
  }
  auto stats = cache.stats();
  uint64_t lookups = 0, hits = 0, insertions = 0;
  for (size_t s = 0; s < cache.num_shards(); ++s) {
    const obs::Labels labels{{"shard", std::to_string(s)}};
    lookups += registry.GetCounter("llmdm_cache_lookups_total", labels)->value();
    hits += registry.GetCounter("llmdm_cache_hits_total", labels)->value();
    insertions +=
        registry.GetCounter("llmdm_cache_insertions_total", labels)->value();
  }
  EXPECT_EQ(stats.lookups, lookups);
  EXPECT_EQ(stats.hits, hits);
  EXPECT_EQ(stats.insertions, insertions);
  EXPECT_GT(hits, 0u);
}

TEST(ObsIntegration, CascadeRungCountersAndSpans) {
  obs::Registry registry;
  auto cheap = MakeModel("sim-cheap", 50.0, 1);
  auto big = MakeModel("sim-big", 500.0, 2);
  optimize::LlmCascade::Options options;
  options.accept_threshold = 0.0;  // rung 0 always accepts
  options.registry = &registry;
  optimize::LlmCascade cascade({cheap, big}, options);

  auto trace = std::make_shared<obs::TraceContext>("request", 0.0);
  llm::Prompt prompt = llm::MakePrompt("freeform", "cascade traced question");
  prompt.trace = trace;
  ASSERT_TRUE(cascade.Run(prompt).ok());

  const obs::Labels rung0{{"rung", "0"}, {"model", "sim-cheap"}};
  const obs::Labels rung1{{"rung", "1"}, {"model", "sim-big"}};
  EXPECT_EQ(registry.GetCounter("llmdm_cascade_queries_total")->value(), 1u);
  EXPECT_EQ(
      registry.GetCounter("llmdm_cascade_rung_visits_total", rung0)->value(),
      1u);
  EXPECT_EQ(
      registry.GetCounter("llmdm_cascade_rung_accepts_total", rung0)->value(),
      1u);
  EXPECT_EQ(
      registry.GetCounter("llmdm_cascade_rung_visits_total", rung1)->value(),
      0u);
  std::string json = trace->ToJson();
  EXPECT_NE(json.find("cascade_rung:sim-cheap"), std::string::npos);
  EXPECT_NE(json.find("\"result\":\"accepted\""), std::string::npos);
}

TEST(ObsIntegration, TokenCountCacheReportsThroughGlobalRegistry) {
  // The tokenizer memo is process-wide, so its series live in the global
  // registry; the legacy struct is a view over those counters.
  auto before = text::GetTokenCountCacheStats();
  llm::Prompt prompt = llm::MakePrompt("freeform", "count cache probe");
  prompt.system = "a shared system prefix that recurs across calls";
  prompt.CountInputTokens();
  prompt.CountInputTokens();
  auto after = text::GetTokenCountCacheStats();
  EXPECT_GT(after.hits + after.misses, before.hits + before.misses);
  EXPECT_EQ(after.hits,
            obs::Registry::Global()
                .GetCounter("llmdm_text_token_cache_hits_total")
                ->value());
  EXPECT_EQ(after.misses,
            obs::Registry::Global()
                .GetCounter("llmdm_text_token_cache_misses_total")
                ->value());
}

}  // namespace
}  // namespace llmdm
