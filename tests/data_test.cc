#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/json.h"
#include "data/table.h"
#include "data/xml.h"

namespace llmdm::data {
namespace {

TEST(Value, NullSemantics) {
  Value n = Value::Null();
  EXPECT_TRUE(n.is_null());
  EXPECT_EQ(n, Value::Null());
  EXPECT_FALSE(n == Value::Int(0));
  EXPECT_EQ(n.ToString(), "NULL");
}

TEST(Value, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int(3), Value::Real(3.0));
  EXPECT_FALSE(Value::Int(3) == Value::Real(3.5));
  EXPECT_EQ(Value::Int(3).Hash(), Value::Real(3.0).Hash());
}

TEST(Value, Ordering) {
  EXPECT_LT(Value::Null(), Value::Int(0));
  EXPECT_LT(Value::Int(1), Value::Real(1.5));
  EXPECT_LT(Value::Text("a"), Value::Text("b"));
  EXPECT_LT(Value::MakeDate(2023, 8, 13), Value::MakeDate(2023, 8, 14));
}

TEST(Value, DateToString) {
  EXPECT_EQ(Value::MakeDate(2023, 8, 14).ToString(), "2023-08-14");
}

TEST(Schema, CaseInsensitiveLookup) {
  Schema s({{"Name", ColumnType::kText, true},
            {"Age", ColumnType::kInt64, true}});
  EXPECT_EQ(s.Find("name"), 0u);
  EXPECT_EQ(s.Find("AGE"), 1u);
  EXPECT_FALSE(s.Find("missing").has_value());
}

Table MakeSampleTable() {
  Table t("people", Schema({{"name", ColumnType::kText, true},
                            {"age", ColumnType::kInt64, true}}));
  EXPECT_TRUE(t.AppendRow({Value::Text("alice"), Value::Int(30)}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Text("bob"), Value::Int(25)}).ok());
  return t;
}

TEST(Table, AppendValidates) {
  Table t = MakeSampleTable();
  EXPECT_FALSE(t.AppendRow({Value::Text("x")}).ok());  // arity
  EXPECT_FALSE(t.AppendRow({Value::Int(1), Value::Int(2)}).ok());  // type
  EXPECT_TRUE(t.AppendRow({Value::Null(), Value::Null()}).ok());  // nullable
}

TEST(Table, NonNullableRejectsNull) {
  Table t("t", Schema({{"id", ColumnType::kInt64, false}}));
  EXPECT_FALSE(t.AppendRow({Value::Null()}).ok());
}

TEST(Table, IntWidensIntoDoubleColumn) {
  Table t("t", Schema({{"x", ColumnType::kDouble, true}}));
  ASSERT_TRUE(t.AppendRow({Value::Int(3)}).ok());
  EXPECT_TRUE(t.at(0, 0).is_double());
  EXPECT_DOUBLE_EQ(t.at(0, 0).AsDouble(), 3.0);
}

TEST(Table, BagEqualsIgnoresOrder) {
  Table a = MakeSampleTable();
  Table b("other", a.schema());
  ASSERT_TRUE(b.AppendRow({Value::Text("bob"), Value::Int(25)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Text("alice"), Value::Int(30)}).ok());
  EXPECT_TRUE(a.BagEquals(b));
  EXPECT_EQ(a.BagHash(), b.BagHash());
}

TEST(Table, BagEqualsDetectsDifferences) {
  Table a = MakeSampleTable();
  Table b = MakeSampleTable();
  ASSERT_TRUE(b.AppendRow({Value::Text("carol"), Value::Int(41)}).ok());
  EXPECT_FALSE(a.BagEquals(b));
  Table c("c", a.schema());
  ASSERT_TRUE(c.AppendRow({Value::Text("alice"), Value::Int(31)}).ok());
  ASSERT_TRUE(c.AppendRow({Value::Text("bob"), Value::Int(25)}).ok());
  EXPECT_FALSE(a.BagEquals(c));
}

TEST(Table, ProjectReorders) {
  Table t = MakeSampleTable();
  auto p = t.Project({"age", "name"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->schema().column(0).name, "age");
  EXPECT_EQ(p->at(0, 0), Value::Int(30));
  EXPECT_FALSE(t.Project({"nope"}).ok());
}

TEST(Table, SerializeRowAsText) {
  Table t = MakeSampleTable();
  EXPECT_EQ(t.SerializeRowAsText(0), "name is alice; age is 30");
}

// --- CSV ---------------------------------------------------------------

TEST(Csv, RoundTrip) {
  Table t = MakeSampleTable();
  std::string csv = WriteCsv(t);
  auto parsed = ParseCsv(csv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->BagEquals(t));
  EXPECT_EQ(parsed->schema().column(1).type, ColumnType::kInt64);
}

TEST(Csv, QuotedFields) {
  auto t = ParseCsv("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->at(0, 0).AsText(), "x,y");
  EXPECT_EQ(t->at(0, 1).AsText(), "he said \"hi\"");
}

TEST(Csv, TypeInference) {
  auto t = ParseCsv("i,d,b,dt,s\n1,1.5,true,2023-08-14,x\n2,2.5,false,2024-01-01,y\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().column(0).type, ColumnType::kInt64);
  EXPECT_EQ(t->schema().column(1).type, ColumnType::kDouble);
  EXPECT_EQ(t->schema().column(2).type, ColumnType::kBool);
  EXPECT_EQ(t->schema().column(3).type, ColumnType::kDate);
  EXPECT_EQ(t->schema().column(4).type, ColumnType::kText);
}

TEST(Csv, EmptyCellsBecomeNull) {
  auto t = ParseCsv("a,b\n1,\n,2\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->at(0, 1).is_null());
  EXPECT_TRUE(t->at(1, 0).is_null());
}

TEST(Csv, RaggedRejected) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
}

TEST(Csv, IsoDateParsing) {
  Date d;
  EXPECT_TRUE(ParseIsoDate("2023-08-14", &d));
  EXPECT_EQ(d.year, 2023);
  EXPECT_FALSE(ParseIsoDate("2023-13-14", &d));
  EXPECT_FALSE(ParseIsoDate("08/14/2023", &d));
}

// --- JSON ---------------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_DOUBLE_EQ(ParseJson("-2.5e2")->AsNumber(), -250.0);
  EXPECT_EQ(ParseJson("\"hi\\nthere\"")->AsString(), "hi\nthere");
}

TEST(Json, ParsesNested) {
  auto v = ParseJson(R"({"a": [1, {"b": "x"}], "c": null})");
  ASSERT_TRUE(v.ok());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->items().size(), 2u);
  EXPECT_EQ(a->items()[1].Find("b")->AsString(), "x");
  EXPECT_TRUE(v->Find("c")->is_null());
}

TEST(Json, PreservesKeyOrder) {
  auto v = ParseJson(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->members()[0].first, "z");
  EXPECT_EQ(v->members()[1].first, "a");
  EXPECT_EQ(v->members()[2].first, "m");
}

TEST(Json, RoundTrip) {
  std::string doc = R"({"a":[1,2,3],"b":{"c":"d"},"e":true})";
  auto v = ParseJson(doc);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToString(), doc);
}

TEST(Json, RejectsGarbage) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
}

TEST(Json, UnicodeEscape) {
  auto v = ParseJson("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "A\xc3\xa9");
}

// --- XML ---------------------------------------------------------------

TEST(Xml, ParsesElements) {
  auto root = ParseXml(R"(<?xml version="1.0"?>
<patients>
  <patient id="1"><name>Alice</name><age>30</age></patient>
  <patient id="2"><name>Bob</name></patient>
</patients>)");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->tag, "patients");
  auto kids = (*root)->FindChildren("patient");
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0]->Attribute("id"), "1");
  EXPECT_EQ(kids[0]->FindChild("name")->text, "Alice");
  EXPECT_EQ(kids[1]->FindChild("age"), nullptr);
}

TEST(Xml, Entities) {
  auto root = ParseXml("<a b=\"x &amp; y\">1 &lt; 2</a>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->Attribute("b"), "x & y");
  EXPECT_EQ((*root)->text, "1 < 2");
}

TEST(Xml, SelfClosingAndComments) {
  auto root = ParseXml("<r><!-- note --><x/><y a='1'/></r>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->children.size(), 2u);
  EXPECT_EQ((*root)->children[1]->Attribute("a"), "1");
}

TEST(Xml, MismatchedTagRejected) {
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
}

TEST(Xml, RoundTripParsesBack) {
  auto root = ParseXml("<r><x a=\"1\">hi</x><y/></r>");
  ASSERT_TRUE(root.ok());
  std::string serialized = (*root)->ToString();
  auto again = ParseXml(serialized);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->children.size(), 2u);
  EXPECT_EQ((*again)->children[0]->text, "hi");
}

}  // namespace
}  // namespace llmdm::data
