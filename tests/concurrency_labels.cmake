# Runs at ctest time, after gtest test discovery (appended to
# TEST_INCLUDE_FILES behind the generated discovery include). Attaches both
# labels to every discovered concurrency test; gtest_discover_tests itself
# flattens list-valued PROPERTIES, so LABELS with two entries cannot be set
# directly there.
foreach(t IN LISTS llmdm_concurrency_test_names)
  set_tests_properties(${t} PROPERTIES LABELS "robustness;concurrency")
endforeach()
