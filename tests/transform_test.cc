#include <gtest/gtest.h>

#include "core/transform/column_pattern.h"
#include "core/transform/nl2sql.h"
#include "core/transform/nl2transaction.h"
#include "core/transform/pipeline_rec.h"
#include "core/transform/table_transform.h"
#include "data/tabular_gen.h"
#include "data/txn_workload.h"
#include "llm/simulated.h"
#include "text/tokenizer.h"

namespace llmdm::transform {
namespace {

// ---- NL2SQL engine ---------------------------------------------------------

class Nl2SqlEngineTest : public ::testing::Test {
 protected:
  Nl2SqlEngineTest() {
    common::Rng rng(21);
    auto script = data::BuildStadiumDatabaseScript(10, {2014, 2015}, rng);
    EXPECT_TRUE(db_.ExecuteScript(script).ok());
    models_ = llm::CreatePaperModelLadder(nullptr, 555);
  }

  sql::Database db_;
  std::vector<std::shared_ptr<llm::LlmModel>> models_;
};

TEST_F(Nl2SqlEngineTest, TranslatesAndExecutes) {
  Nl2SqlEngine engine(models_[2], nullptr, Nl2SqlEngine::Options{});
  llm::UsageMeter meter;
  size_t executed = 0;
  auto paper = data::PaperQ1ToQ5();
  for (const auto& q : paper) {
    auto r = engine.Translate(q.ToNaturalLanguage(), db_, &meter);
    ASSERT_TRUE(r.ok());
    if (r->executed) ++executed;
  }
  // The big model may still fumble an individual query (it is a model, not
  // an oracle), but the engine must land most of the paper's Q1-Q5.
  EXPECT_GE(executed, paper.size() - 1);
  EXPECT_GT(meter.calls(), 0u);
}

TEST_F(Nl2SqlEngineTest, PromptStoreFeedbackLoop) {
  optimize::PromptStore store(optimize::PromptStore::Options{});
  for (const auto& q : data::PaperQ1ToQ5()) {
    store.Add(q.ToNaturalLanguage(), q.ToGoldSql());
  }
  Nl2SqlEngine engine(models_[1], &store, Nl2SqlEngine::Options{});
  auto r = engine.Translate(
      "What are the names of stadiums that had sports meetings in 2014?", db_);
  ASSERT_TRUE(r.ok());
  // The store must have accumulated outcome feedback.
  size_t uses = 0;
  for (uint64_t id = 0; id < 5; ++id) {
    const auto p = store.Get(id);
    if (p.has_value()) uses += p->uses;
  }
  EXPECT_GT(uses, 0u);
}

// Deterministic fault model: breaks on compound questions, perfect on
// atomic ones — isolates the chain-of-thought fallback path.
class CompoundBreakerModel : public llm::LlmModel {
 public:
  CompoundBreakerModel() {
    spec_.name = "compound-breaker";
    spec_.capability = 1.0;
    spec_.input_price_per_1k = common::Money::FromDollars(0.001);
    spec_.output_price_per_1k = common::Money::FromDollars(0.001);
  }
  const llm::ModelSpec& spec() const override { return spec_; }
  common::Result<llm::Completion> Complete(const llm::Prompt& p) override {
    llm::Completion c;
    c.model = spec_.name;
    c.input_tokens = p.CountInputTokens();
    auto parsed = data::ParseNl2SqlQuestion(p.input);
    if (!parsed.ok()) {
      c.text = "-- cannot translate";
    } else if (parsed->second.has_value()) {
      c.text = "SELEC broken FROM nowhere";  // compound: syntax damage
    } else {
      c.text = parsed->ToGoldSql();  // atomic: perfect
    }
    c.output_tokens = text::CountTokens(c.text);
    return c;
  }

 private:
  llm::ModelSpec spec_;
};

TEST_F(Nl2SqlEngineTest, CotFallbackOnBrokenDirectAnswer) {
  Nl2SqlEngine::Options options;
  options.enable_cot_fallback = true;
  Nl2SqlEngine engine(std::make_shared<CompoundBreakerModel>(), nullptr,
                      options);
  auto r = engine.Translate(
      "What are the names of stadiums that had concerts in 2014 or had "
      "sports meetings in 2015?",
      db_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->used_decomposition);
  EXPECT_TRUE(r->parse_valid);
  EXPECT_TRUE(r->executed);
  // The recombined set-algebra SQL must match the gold compound SQL.
  auto gold = db_.Query(data::PaperQ1ToQ5()[0].ToGoldSql());
  ASSERT_TRUE(gold.ok());
  EXPECT_TRUE(r->result.BagEquals(*gold));
}

TEST_F(Nl2SqlEngineTest, FallbackDisabledLeavesBrokenSql) {
  Nl2SqlEngine::Options options;
  options.enable_cot_fallback = false;
  Nl2SqlEngine engine(std::make_shared<CompoundBreakerModel>(), nullptr,
                      options);
  auto r = engine.Translate(
      "What are the names of stadiums that had concerts in 2014 or had "
      "sports meetings in 2015?",
      db_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->parse_valid);
  EXPECT_FALSE(r->executed);
}

// ---- NL2Transaction -----------------------------------------------------------

class Nl2TxnTest : public ::testing::Test {
 protected:
  Nl2TxnTest() {
    EXPECT_TRUE(db_.ExecuteScript(data::BuildAccountsDatabaseScript(
                                      {"Alice", "Bob", "Express"}, 5000))
                    .ok());
    models_ = llm::CreatePaperModelLadder(nullptr, 556);
  }

  int64_t Balance(const std::string& owner) {
    auto r = db_.Query("SELECT balance FROM accounts WHERE owner = '" + owner +
                       "'");
    EXPECT_TRUE(r.ok());
    return r->at(0, 0).AsInt();
  }

  sql::Database db_;
  std::vector<std::shared_ptr<llm::LlmModel>> models_;
};

TEST_F(Nl2TxnTest, PaperExampleCommitsAtomically) {
  Nl2TransactionEngine engine(models_[2], Nl2TransactionEngine::Options{});
  // The paper's laptop purchase: $1000 Alice->Bob, $5 Bob->Express freight.
  auto r = engine.Run(
      "Transfer 1000 dollars from Alice to Bob. Then transfer 5 dollars from "
      "Bob to Express.",
      db_);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->committed) << r->failure;
  EXPECT_EQ(Balance("Alice"), 4000);
  EXPECT_EQ(Balance("Bob"), 5995);
  EXPECT_EQ(Balance("Express"), 5005);
  auto ledger = db_.Query("SELECT COUNT(*) FROM transfers");
  EXPECT_EQ(ledger->at(0, 0).AsInt(), 2);
}

TEST_F(Nl2TxnTest, MoneyConservedAcrossWorkload) {
  // Whatever the model does (including its corrupted outputs), the total
  // money in the system must be conserved for every *committed* transaction;
  // structural checks + atomicity are the guardrails that guarantee it.
  Nl2TransactionEngine engine(models_[0], Nl2TransactionEngine::Options{});
  common::Rng rng(23);
  auto workload =
      data::GenerateTxnWorkload(25, {"Alice", "Bob", "Express"}, rng);
  int64_t total_before =
      db_.Query("SELECT SUM(balance) FROM accounts")->at(0, 0).AsInt();
  size_t committed = 0;
  for (const auto& request : workload) {
    auto r = engine.Run(data::RenderTxnRequest(request), db_);
    ASSERT_TRUE(r.ok());
    if (r->committed) ++committed;
    int64_t total_now =
        db_.Query("SELECT SUM(balance) FROM accounts")->at(0, 0).AsInt();
    EXPECT_EQ(total_now, total_before) << "money leaked or minted";
  }
  EXPECT_GT(committed, 0u);
}

TEST_F(Nl2TxnTest, GarbageRequestFailsCleanly) {
  Nl2TransactionEngine engine(models_[2], Nl2TransactionEngine::Options{});
  auto r = engine.Run("Please summarize this paper.", db_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->committed);
}

// ---- table transforms ------------------------------------------------------------

TEST(XmlToTable, RelationalizesRecords) {
  auto root = data::ParseXml(R"(<patients>
    <patient id="1"><name>Alice</name><age>34</age></patient>
    <patient id="2"><name>Bob</name></patient>
    <patient id="3"><name>Carol</name><age>41</age></patient>
  </patients>)");
  ASSERT_TRUE(root.ok());
  auto table = XmlToTable(**root);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 3u);
  EXPECT_EQ(table->NumColumns(), 3u);  // id, name, age
  EXPECT_EQ(table->schema().Find("age").has_value(), true);
  // Missing age -> NULL; types inferred.
  size_t age = *table->schema().Find("age");
  EXPECT_TRUE(table->at(1, age).is_null());
  EXPECT_EQ(table->at(0, age), data::Value::Int(34));
}

TEST(JsonToTable, FlattensNestedObjects) {
  auto doc = data::ParseJson(
      R"([{"name":"Alice","address":{"city":"Boston","zip":"02134"}},
          {"name":"Bob","address":{"city":"Tokyo"}}])");
  ASSERT_TRUE(doc.ok());
  auto table = JsonToTable(*doc);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 2u);
  ASSERT_TRUE(table->schema().Find("address.city").has_value());
  size_t zip = *table->schema().Find("address.zip");
  EXPECT_TRUE(table->at(1, zip).is_null());
}

TEST(JsonToTable, RejectsNonArray) {
  auto doc = data::ParseJson(R"({"a": 1})");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(JsonToTable(*doc).ok());
}

TEST(GridOps, FillDownAndDropEmpty) {
  Grid grid{{"region", "sales"}, {"east", "10"}, {"", "20"}, {"west", "30"},
            {"", ""}};
  Grid filled = ApplyOp(grid, TableOp::kFillDown);
  EXPECT_EQ(filled[2][0], "east");
  Grid dropped = ApplyOp(grid, TableOp::kDropEmptyRows);
  EXPECT_EQ(dropped.size(), 4u);
}

TEST(GridOps, TransposeTwiceIsIdentity) {
  Grid grid{{"a", "b", "c"}, {"1", "2", "3"}};
  EXPECT_EQ(ApplyOp(ApplyOp(grid, TableOp::kTranspose), TableOp::kTranspose),
            grid);
}

TEST(GridOps, UnpivotMeltsWideTable) {
  Grid grid{{"store", "q1", "q2"}, {"north", "5", "7"}, {"south", "3", "4"}};
  Grid melted = ApplyOp(grid, TableOp::kUnpivot);
  ASSERT_EQ(melted.size(), 5u);  // header + 4 (store, quarter, value) rows
  EXPECT_EQ(melted[1], (std::vector<std::string>{"north", "q1", "5"}));
}

TEST(RelationalScore, PrefersCleanTables) {
  Grid clean{{"name", "age"}, {"alice", "30"}, {"bob", "25"}};
  Grid messy{{"Report for 2023", ""}, {"", ""}, {"alice", "30"}};
  EXPECT_GT(RelationalScore(clean), RelationalScore(messy));
}

TEST(Synthesize, RepairsTransposedTable) {
  // A table stored sideways: synthesis should discover the transpose.
  Grid sideways{{"name", "alice", "bob", "carol"},
                {"age", "30", "25", "41"},
                {"city", "Boston", "Tokyo", "Berlin"}};
  SynthesisResult result = SynthesizeRelationalization(sideways);
  ASSERT_FALSE(result.program.empty());
  EXPECT_EQ(result.program[0], TableOp::kTranspose);
  auto table = GridToTable(result.transformed, "people");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 3u);
  EXPECT_EQ(table->schema().column(1).name, "age");
  EXPECT_EQ(table->schema().column(1).type, data::ColumnType::kInt64);
}

TEST(Synthesize, CleansMergedCellSpreadsheet) {
  Grid merged{{"region", "store", "sales"},
              {"east", "a", "10"},
              {"", "b", "20"},
              {"west", "c", "30"},
              {"", "", ""}};
  SynthesisResult result = SynthesizeRelationalization(merged);
  auto table = GridToTable(result.transformed, "sales");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 3u);
  // Fill-down must have repaired the merged region cells.
  auto region = table->ColumnValues("region");
  ASSERT_TRUE(region.ok());
  EXPECT_EQ((*region)[1], data::Value::Text("east"));
}

// ---- column patterns -----------------------------------------------------------

TEST(ColumnPattern, MinesPaperExample) {
  auto p = MineColumnPattern({"Aug 14 2023", "Sep 02 2023", "Jan 31 2024"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(PatternToString(*p), "<letter>{3} <digit>{2} <digit>{4}");
  EXPECT_TRUE(MatchesPattern(*p, "Dec 25 2025"));
  EXPECT_FALSE(MatchesPattern(*p, "8/14/2023"));
}

TEST(ColumnPattern, LengthRangesGeneralize) {
  auto p = MineColumnPattern({"a1", "ab12", "abc123"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(PatternToString(*p), "<letter>{1,3}<digit>{1,3}");
  EXPECT_TRUE(MatchesPattern(*p, "xy99"));
  EXPECT_FALSE(MatchesPattern(*p, "xyzw9999"));
}

TEST(ColumnPattern, StructureMismatchFails) {
  EXPECT_FALSE(MineColumnPattern({"Aug 14 2023", "8/14/2023"}).ok());
}

TEST(ColumnTransform, SynthesizesDateReformat) {
  auto t = ColumnTransform::Synthesize({{"Aug 14 2023", "8/14/2023"},
                                        {"Jan 02 2024", "1/2/2024"}});
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  auto applied = t->Apply("Dec 25 2025");
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, "12/25/2025");
  EXPECT_EQ(t->Describe(), "date: month_d_y -> slash_mdy");
}

TEST(ColumnTransform, SynthesizesIsoConversion) {
  auto t = ColumnTransform::Synthesize({{"2023-08-14", "14 Aug 2023"}});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t->Apply("2024-01-02"), "2 Jan 2024");
}

TEST(ColumnTransform, SynthesizesTokenRearrangement) {
  auto t = ColumnTransform::Synthesize({{"Doe, John", "John Doe"},
                                        {"Smith, Jane", "Jane Smith"}});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t->Apply("Curie, Marie"), "Marie Curie");
}

TEST(ColumnTransform, UnlearnableExamplesRejected) {
  EXPECT_FALSE(
      ColumnTransform::Synthesize({{"abc", "completely unrelated zz"}}).ok());
}

TEST(ReformatDateHelper, AllStylesRoundTrip) {
  const char* variants[] = {"2023-08-14", "8/14/2023", "Aug 14 2023",
                            "14 Aug 2023"};
  for (const char* v : variants) {
    auto iso = ReformatDate(v, DateStyle::kIso);
    ASSERT_TRUE(iso.ok()) << v;
    EXPECT_EQ(*iso, "2023-08-14");
  }
}

TEST(PatternValidator, DetectsDrift) {
  auto validator =
      PatternValidator::FromReference({"8/14/2023", "1/2/2024", "12/31/2023"});
  ASSERT_TRUE(validator.ok());
  auto clean = validator->Validate({"3/4/2024", "5/6/2024"});
  EXPECT_FALSE(clean.drifted);
  EXPECT_DOUBLE_EQ(clean.match_rate, 1.0);
  auto drifted = validator->Validate(
      {"2024-03-04", "2024-05-06", "7/8/2024"}, 0.9);
  EXPECT_TRUE(drifted.drifted);
  EXPECT_EQ(drifted.mismatched, 2u);
  EXPECT_EQ(drifted.examples_of_mismatch.size(), 2u);
}

// ---- pipeline recommendation ------------------------------------------------------

TEST(PipelineRecommender, FindsBeneficialPipeline) {
  common::Rng rng(31);
  data::PatientDataOptions options;
  options.num_rows = 240;
  data::Table patients = data::GeneratePatientTable(options, rng);
  // Make raw data hostile: missing values + wild outliers.
  data::InjectMissing(&patients, "bmi", 0.2, rng);
  (*patients.mutable_row(0))[*patients.schema().Find("systolic_bp")] =
      data::Value::Int(99999);

  PipelineRecommender::Options rec_options;
  rec_options.max_depth = 2;
  PipelineRecommender recommender(rec_options);
  auto candidates = recommender.Recommend(patients, "has_heart_disease");
  ASSERT_TRUE(candidates.ok());
  ASSERT_GT(candidates->size(), 1u);
  // The recommendation must not be worse than doing nothing (the empty
  // pipeline is among the candidates).
  double baseline = 0;
  for (const auto& c : *candidates) {
    if (c.ops.empty()) baseline = c.holdout_accuracy;
  }
  EXPECT_GE(candidates->front().holdout_accuracy, baseline);
  // Sorted best-first.
  for (size_t i = 1; i < candidates->size(); ++i) {
    EXPECT_GE((*candidates)[i - 1].holdout_accuracy,
              (*candidates)[i].holdout_accuracy);
  }
}

TEST(PrepOps, ImputeFillsNulls) {
  common::Rng rng(32);
  data::PatientDataOptions options;
  options.num_rows = 50;
  data::Table patients = data::GeneratePatientTable(options, rng);
  data::InjectMissing(&patients, "bmi", 0.3, rng);
  auto imputed = ApplyPrepOp(patients, "has_heart_disease",
                             PrepOp::kImputeMean);
  ASSERT_TRUE(imputed.ok());
  auto values = imputed->ColumnValues("bmi");
  for (const auto& v : *values) EXPECT_FALSE(v.is_null());
}

TEST(PrepOps, StandardizeCentersColumns) {
  common::Rng rng(33);
  data::PatientDataOptions options;
  options.num_rows = 100;
  data::Table patients = data::GeneratePatientTable(options, rng);
  auto standardized =
      ApplyPrepOp(patients, "has_heart_disease", PrepOp::kStandardize);
  ASSERT_TRUE(standardized.ok());
  auto ages = standardized->ColumnValues("age");
  double mean = 0;
  for (const auto& v : *ages) mean += v.AsDouble();
  mean /= double(ages->size());
  EXPECT_NEAR(mean, 0.0, 1e-9);
}

}  // namespace
}  // namespace llmdm::transform
