#!/usr/bin/env bash
# Full verification gate: configure, build and run the test suite from a
# FRESH build directory. Incremental builds have bitten us before — after a
# header ABI change, stale object files link silently and fail at runtime
# (futex hangs, heap corruption) — so this script never reuses a build dir.
#
# Usage: scripts/verify.sh [extra cmake args...]
#   LLMDM_VERIFY_BUILD_DIR  override the build dir (still wiped first)
#   LLMDM_VERIFY_KEEP=1     keep the build dir afterwards (default: keep)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${LLMDM_VERIFY_BUILD_DIR:-${repo_root}/build-verify}"

# Every phase runs through stage(): a failure anywhere (including inside a
# pipeline, via pipefail) lands in the ERR trap below, which names the stage
# that died and the exit code it died with — instead of the bare `set -e`
# exit that leaves the reader scrolling for the first red line.
current_stage="startup"
stage() {
  current_stage="$1"
  echo "== ${current_stage} =="
}
trap 'code=$?; echo "VERIFY FAILED in stage: ${current_stage} (exit ${code})" >&2; exit "${code}"' ERR

stage "clean (${build_dir})"
rm -rf "${build_dir}"

generator=()
if command -v ninja >/dev/null 2>&1; then
  generator=(-G Ninja)
fi

stage "configure"
cmake -B "${build_dir}" -S "${repo_root}" "${generator[@]}" "$@"

stage "build"
cmake --build "${build_dir}" -j "$(nproc)"

stage "test"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"

stage "kernel parity + quantized recall"
"${build_dir}/tests/llmdm_tests" \
  --gtest_filter='Kernels*:QuantizedRecall*' >/dev/null
echo "ok: scalar/SIMD kernels bit-identical; int8+rescore recall >= 0.99"

stage "bench smoke (registry reconciliation)"
"${build_dir}/bench/bench_serve_overload" --benchmark-smoke \
  --metrics-out="${build_dir}/BENCH_serve_smoke.prom" >/dev/null
echo "ok: registry snapshot reconciles and is byte-stable"

stage "bench smoke (multi-tenant QoS isolation)"
"${build_dir}/bench/bench_serve_overload" --qos-smoke \
  --metrics-out="${build_dir}/BENCH_serve_qos_smoke.prom" >/dev/null
echo "ok: hot tenant contained; compliant SLOs hold and exports are byte-stable"

stage "durability crash sweep"
sweep_dir="$(mktemp -d "${build_dir}/crash-sweep.XXXXXX")"
"${build_dir}/tests/llmdm_durability_harness" --mode=sweep --unit=cache \
  --dir="${sweep_dir}" >/dev/null
"${build_dir}/tests/llmdm_durability_harness" --mode=sweep --unit=prompts \
  --dir="${sweep_dir}" >/dev/null
rm -rf "${sweep_dir}"
echo "ok: recovery is a clean prefix at every truncation offset"

echo "VERIFY PASSED (${build_dir})"
