#!/usr/bin/env bash
# Full verification gate: configure, build and run the test suite from a
# FRESH build directory. Incremental builds have bitten us before — after a
# header ABI change, stale object files link silently and fail at runtime
# (futex hangs, heap corruption) — so this script never reuses a build dir.
#
# Usage: scripts/verify.sh [extra cmake args...]
#   LLMDM_VERIFY_BUILD_DIR  override the build dir (still wiped first)
#   LLMDM_VERIFY_KEEP=1     keep the build dir afterwards (default: keep)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${LLMDM_VERIFY_BUILD_DIR:-${repo_root}/build-verify}"

# Every phase runs through stage(): a failure anywhere (including inside a
# pipeline, via pipefail) lands in the ERR trap below, which names the stage
# that died and the exit code it died with — instead of the bare `set -e`
# exit that leaves the reader scrolling for the first red line.
current_stage="startup"
stage() {
  current_stage="$1"
  echo "== ${current_stage} =="
}
trap 'code=$?; echo "VERIFY FAILED in stage: ${current_stage} (exit ${code})" >&2; exit "${code}"' ERR

stage "clean (${build_dir})"
rm -rf "${build_dir}"

generator=()
if command -v ninja >/dev/null 2>&1; then
  generator=(-G Ninja)
fi

stage "configure"
cmake -B "${build_dir}" -S "${repo_root}" "${generator[@]}" "$@"

stage "build"
cmake --build "${build_dir}" -j "$(nproc)"

stage "test"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"

stage "kernel parity + quantized recall"
"${build_dir}/tests/llmdm_tests" \
  --gtest_filter='Kernels*:QuantizedRecall*' >/dev/null
echo "ok: scalar/SIMD kernels bit-identical; int8+rescore recall >= 0.99"

stage "bench smoke (registry reconciliation)"
"${build_dir}/bench/bench_serve_overload" --benchmark-smoke \
  --metrics-out="${build_dir}/BENCH_serve_smoke.prom" >/dev/null
echo "ok: registry snapshot reconciles and is byte-stable"

stage "bench smoke (multi-tenant QoS isolation)"
"${build_dir}/bench/bench_serve_overload" --qos-smoke \
  --metrics-out="${build_dir}/BENCH_serve_qos_smoke.prom" >/dev/null
echo "ok: hot tenant contained; compliant SLOs hold and exports are byte-stable"

stage "bench smoke (continuous batching)"
"${build_dir}/bench/bench_serve_overload" --batch-smoke \
  --metrics-out="${build_dir}/BENCH_batch_smoke.prom" >/dev/null
echo "ok: batching saves spend without changing answers, byte-stable across workers"

stage "net loopback smoke (wire protocol end to end)"
# Start the real server binary on an ephemeral-ish port, drive it with the
# loadgen over loopback, then SIGTERM it and require a clean graceful drain
# (exit 0). The loadgen's own exit status enforces every request is answered.
net_port=$((20000 + RANDOM % 20000))
# shed-policy=none: the loadgen requires every request answered, and its
# virtual-time burst would overwhelm any bounded queue by design.
"${build_dir}/tools/llmdm_server" --port="${net_port}" --shed-policy=none \
  --metrics-out="${build_dir}/llmdm_server_smoke.prom" &
net_server_pid=$!
for _ in $(seq 1 50); do
  if "${build_dir}/bench/bench_net_loadgen" --benchmark-smoke \
      --port="${net_port}" --out="${build_dir}/BENCH_net_verify.json" \
      >/dev/null 2>&1; then
    net_ok=1
    break
  fi
  net_ok=0
  sleep 0.1
done
[ "${net_ok}" = 1 ]
kill -TERM "${net_server_pid}"
wait "${net_server_pid}"
grep -q llmdm_net_requests_rx_total "${build_dir}/llmdm_server_smoke.prom"
echo "ok: llmdm_server answered a loopback load and drained cleanly on SIGTERM"

stage "durability crash sweep"
sweep_dir="$(mktemp -d "${build_dir}/crash-sweep.XXXXXX")"
"${build_dir}/tests/llmdm_durability_harness" --mode=sweep --unit=cache \
  --dir="${sweep_dir}" >/dev/null
"${build_dir}/tests/llmdm_durability_harness" --mode=sweep --unit=prompts \
  --dir="${sweep_dir}" >/dev/null
rm -rf "${sweep_dir}"
echo "ok: recovery is a clean prefix at every truncation offset"

echo "VERIFY PASSED (${build_dir})"
