#!/usr/bin/env bash
# Full verification gate: configure, build and run the test suite from a
# FRESH build directory. Incremental builds have bitten us before — after a
# header ABI change, stale object files link silently and fail at runtime
# (futex hangs, heap corruption) — so this script never reuses a build dir.
#
# Usage: scripts/verify.sh [extra cmake args...]
#   LLMDM_VERIFY_BUILD_DIR  override the build dir (still wiped first)
#   LLMDM_VERIFY_KEEP=1     keep the build dir afterwards (default: keep)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${LLMDM_VERIFY_BUILD_DIR:-${repo_root}/build-verify}"

rm -rf "${build_dir}"

generator=()
if command -v ninja >/dev/null 2>&1; then
  generator=(-G Ninja)
fi

echo "== configure (${build_dir}) =="
cmake -B "${build_dir}" -S "${repo_root}" "${generator[@]}" "$@"

echo "== build =="
cmake --build "${build_dir}" -j "$(nproc)"

echo "== test =="
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"

echo "== bench smoke (registry reconciliation) =="
"${build_dir}/bench/bench_serve_overload" --benchmark-smoke \
  --metrics-out="${build_dir}/BENCH_serve_smoke.prom" >/dev/null
echo "ok: registry snapshot reconciles and is byte-stable"

echo "VERIFY PASSED (${build_dir})"
